//! `loadgen` — hammer an `unclean serve` daemon and report sustained
//! lookups/sec plus latency percentiles.
//!
//! Two modes:
//!
//! * `loadgen --addr 127.0.0.1:7053` targets an already-running daemon.
//! * `loadgen --blocklist list.txt` self-hosts a daemon in-process on an
//!   ephemeral port, drives it, and shuts it down — the one-command
//!   smoke benchmark CI runs.
//!
//! ```text
//! loadgen --blocklist list.txt --clients 4 --duration-secs 5 \
//!         --batch 100 --binary --min-throughput 100000
//! ```
//!
//! Each client thread holds one persistent HTTP/1.1 keep-alive
//! connection and issues `POST /batch` requests of `--batch` IPs
//! (`--batch 1` switches to `GET /lookup` point queries; `--binary`
//! switches to the `POST /batch-bin` fixed-width framing).
//! `--no-keepalive` restores the HTTP/1.0 connect-per-request baseline.
//! Throughput is counted in *lookups* (IPs answered), latency per
//! *request*. With `--min-throughput N`, exits nonzero when the
//! sustained rate falls short — the CI acceptance gate.
//!
//! By default clients run closed-loop (next request as soon as the
//! previous answer lands). `--rate N` switches to an open-loop
//! schedule: requests are due at fixed intervals summing to N req/s
//! across all clients, and latency is measured from the *scheduled*
//! send time, so queueing delay from a saturated server shows up
//! instead of being silently absorbed (coordinated omission).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unclean_stats::quantile::quantile_sorted;

struct Args {
    addr: Option<String>,
    blocklist: Option<String>,
    forecast: Option<String>,
    clients: usize,
    duration: Duration,
    batch: usize,
    endpoint: String,
    forecast_share: f64,
    binary: bool,
    no_keepalive: bool,
    rate: f64,
    reconnect_every: u64,
    min_throughput: Option<f64>,
    max_p999_micros: Option<f64>,
    healthz_poll: bool,
    max_staleness_secs: Option<u64>,
    json: Option<String>,
    trace_sample: u64,
}

const USAGE: &str = "\
loadgen — load-generate against an unclean-serve daemon

USAGE:
  loadgen (--addr HOST:PORT | --blocklist FILE) [--forecast FILE]
          [--clients 4] [--duration-secs 5] [--batch 100]
          [--binary] [--no-keepalive] [--rate N] [--reconnect-every N]
          [--endpoint /lookup|/forecast] [--forecast-share 0.5]
          [--min-throughput N] [--max-p999-micros N]
          [--healthz-poll] [--max-staleness-secs N]
          [--json PATH] [--trace-sample N]

Clients hold persistent HTTP/1.1 keep-alive connections by default.
--batch 1 uses GET /lookup point queries; larger batches use POST /batch.
--binary switches batches to the POST /batch-bin fixed-width framing
(u32-BE count + count x u32-BE addresses each way).
--no-keepalive restores the HTTP/1.0 connect-per-request baseline.
--rate N runs open-loop at N requests/sec total (split across clients),
measuring latency from each request's scheduled start so a saturated
server shows queueing delay instead of hiding it.
--reconnect-every N drops and redials each connection after N requests
(connection-churn stress; 0 = never).
--endpoint /forecast mixes GET /forecast?ip= point queries into the
stream: each request is a forecast query with probability
--forecast-share (default 0.5), otherwise the usual lookup/batch
request. --forecast FILE boots the self-hosted daemon with a forecast
artifact (needs --blocklist); without it /forecast answers 404 and the
mix fails fast.
--min-throughput N exits nonzero below N lookups/sec (the CI gate).
--max-p999-micros N exits nonzero when p999 request latency exceeds N
microseconds (the CI tail-latency gate).
--healthz-poll samples GET /healthz during the run and reports the peak
generation age; with --max-staleness-secs N it exits nonzero when any
sample exceeds N seconds or reports degraded (the freshness gate).
--json PATH writes a machine-readable report (the BENCH_serve.json rows).
--trace-sample N head-samples 1-in-N requests for stage tracing on the
self-hosted daemon (needs --blocklist; 0 = tracing off) — the knob the
tracing-overhead experiment sweeps.";

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |flag: &str| -> Option<&str> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .map(|s| s.as_str())
    };
    let num = |flag: &str, default: f64| -> Result<f64, String> {
        match value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{flag} got unparseable value {v:?}")),
        }
    };
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Err(String::new());
    }
    let args = Args {
        addr: value("--addr").map(String::from),
        blocklist: value("--blocklist").map(String::from),
        forecast: value("--forecast").map(String::from),
        clients: num("--clients", 4.0)?.max(1.0) as usize,
        duration: Duration::from_secs_f64(num("--duration-secs", 5.0)?.max(0.1)),
        batch: num("--batch", 100.0)?.max(1.0) as usize,
        endpoint: value("--endpoint").unwrap_or("/lookup").to_string(),
        forecast_share: num("--forecast-share", 0.5)?.clamp(0.0, 1.0),
        binary: argv.iter().any(|a| a == "--binary"),
        no_keepalive: argv.iter().any(|a| a == "--no-keepalive"),
        rate: num("--rate", 0.0)?.max(0.0),
        reconnect_every: num("--reconnect-every", 0.0)?.max(0.0) as u64,
        min_throughput: value("--min-throughput")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--min-throughput got unparseable value {v:?}"))
            })
            .transpose()?,
        max_p999_micros: value("--max-p999-micros")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--max-p999-micros got unparseable value {v:?}"))
            })
            .transpose()?,
        healthz_poll: argv.iter().any(|a| a == "--healthz-poll"),
        max_staleness_secs: value("--max-staleness-secs")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--max-staleness-secs got unparseable value {v:?}"))
            })
            .transpose()?,
        json: value("--json").map(String::from),
        trace_sample: num("--trace-sample", 0.0)?.max(0.0) as u64,
    };
    if args.max_staleness_secs.is_some() && !args.healthz_poll {
        return Err("--max-staleness-secs needs --healthz-poll".into());
    }
    if args.trace_sample > 0 && args.blocklist.is_none() {
        return Err(
            "--trace-sample needs --blocklist (it configures the self-hosted daemon)".into(),
        );
    }
    if args.forecast.is_some() && args.blocklist.is_none() {
        return Err("--forecast needs --blocklist (it configures the self-hosted daemon)".into());
    }
    if args.endpoint != "/lookup" && args.endpoint != "/forecast" {
        return Err(format!(
            "--endpoint must be /lookup or /forecast, got {:?}",
            args.endpoint
        ));
    }
    if args.binary && args.endpoint == "/forecast" {
        return Err(
            "--binary drives /batch-bin only; it cannot mix with --endpoint /forecast".into(),
        );
    }
    if args.addr.is_none() && args.blocklist.is_none() {
        return Err("need --addr HOST:PORT or --blocklist FILE".into());
    }
    Ok(args)
}

/// Find the end of the response head (`\r\n\r\n`).
fn head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse a response head into (status, content-length, close-hinted).
/// Header names are matched case-insensitively — the server echoes
/// whatever framing it likes.
fn parse_head(head: &str) -> Result<(u16, usize, bool), String> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
            } else if name.eq_ignore_ascii_case("connection") && value.eq_ignore_ascii_case("close")
            {
                close = true;
            }
        }
    }
    Ok((status, content_length, close))
}

/// A load-generating HTTP client: one persistent keep-alive connection
/// reused across requests (redialed on demand), or connect-per-request
/// when `keepalive` is off. Responses are framed by `Content-Length`,
/// so pipelined reuse never depends on EOF.
struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
    keepalive: bool,
    /// Drop and redial after this many requests on one connection
    /// (0 = never).
    reconnect_every: u64,
    served_on_conn: u64,
    connects: u64,
    buf: Vec<u8>,
}

impl HttpClient {
    fn new(addr: &str, keepalive: bool, reconnect_every: u64) -> Self {
        HttpClient {
            addr: addr.to_string(),
            stream: None,
            keepalive,
            reconnect_every,
            served_on_conn: 0,
            connects: 0,
            buf: Vec::with_capacity(16 * 1024),
        }
    }

    /// Send one request and return the response body. A reused
    /// connection may have been closed server-side (idle sweep,
    /// per-connection request cap) — retry exactly once on a fresh
    /// dial before reporting failure.
    fn request(&mut self, req: &[u8]) -> Result<Vec<u8>, String> {
        let reused = self.stream.is_some();
        match self.try_request(req) {
            Err(_) if reused => {
                self.stream = None;
                self.try_request(req)
            }
            other => other,
        }
    }

    fn try_request(&mut self, req: &[u8]) -> Result<Vec<u8>, String> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| format!("connect {}: {e}", self.addr))?;
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .map_err(|e| e.to_string())?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
            self.connects += 1;
            self.served_on_conn = 0;
        }
        let stream = self.stream.as_mut().expect("just connected");
        stream.write_all(req).map_err(|e| format!("write: {e}"))?;

        self.buf.clear();
        let mut chunk = [0u8; 16 * 1024];
        let head_len = loop {
            if let Some(pos) = head_end(&self.buf) {
                break pos;
            }
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err(format!("torn response: {} head bytes", self.buf.len()));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_len]).into_owned();
        let (status, content_length, close_hinted) = parse_head(&head)?;
        let total = head_len + 4 + content_length;
        while self.buf.len() < total {
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err(format!(
                    "torn response body: {} of {} bytes",
                    self.buf.len() - head_len - 4,
                    content_length
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        if status != 200 {
            return Err(format!(
                "non-200 response: {}",
                head.lines().next().unwrap_or("")
            ));
        }
        self.served_on_conn += 1;
        let churn = self.reconnect_every > 0 && self.served_on_conn >= self.reconnect_every;
        if !self.keepalive || close_hinted || churn {
            self.stream = None;
        }
        Ok(self.buf[head_len + 4..total].to_vec())
    }
}

/// Deterministic per-thread IP stream (xorshift); spans the whole v4
/// space so batches mix hits and misses.
struct IpStream(u32);

impl IpStream {
    fn next_ip(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

/// What the staleness poller saw across the run.
#[derive(Default)]
struct HealthzTally {
    samples: u64,
    max_age_secs: u64,
    /// Worst status observed, ranked ok < stale < degraded.
    worst: String,
    degraded_samples: u64,
    error: Option<String>,
}

/// One throwaway HTTP/1.0 exchange (used for /quit and /healthz, where
/// connection reuse buys nothing); returns the body. Any status code is
/// accepted — degraded healthz answers 503 by design.
fn oneshot(addr: &str, request: &[u8]) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream.write_all(request).map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    text.split_once("\r\n\r\n")
        .map(|(_, body)| body.trim().to_string())
        .ok_or_else(|| format!("torn response: {text:?}"))
}

/// Sample `/healthz` every 500ms until told to stop, tracking the peak
/// `age_secs` and the worst status word.
fn healthz_loop(addr: &str, stop: &AtomicBool) -> HealthzTally {
    let mut tally = HealthzTally {
        worst: "ok".to_string(),
        ..HealthzTally::default()
    };
    let rank = |s: &str| match s {
        "ok" => 0,
        "stale" => 1,
        _ => 2,
    };
    loop {
        match oneshot(addr, b"GET /healthz HTTP/1.0\r\n\r\n") {
            Ok(body) => {
                // Body shape: "{status} generation=G age_secs=A".
                let status = body.split_whitespace().next().unwrap_or("").to_string();
                let age = body
                    .split_whitespace()
                    .find_map(|w| w.strip_prefix("age_secs="))
                    .and_then(|v| v.parse::<u64>().ok());
                match age {
                    Some(age) => {
                        tally.samples += 1;
                        tally.max_age_secs = tally.max_age_secs.max(age);
                        if status == "degraded" {
                            tally.degraded_samples += 1;
                        }
                        if rank(&status) > rank(&tally.worst) {
                            tally.worst = status;
                        }
                    }
                    None => {
                        tally.error = Some(format!("healthz body lacks age_secs: {body:?}"));
                        break;
                    }
                }
            }
            Err(e) => {
                tally.error = Some(e);
                break;
            }
        }
        // Sleep in short slices so shutdown is prompt.
        for _ in 0..25 {
            if stop.load(Ordering::Relaxed) {
                return tally;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        if stop.load(Ordering::Relaxed) {
            return tally;
        }
    }
    tally
}

struct ClientTally {
    lookups: u64,
    requests: u64,
    forecast_requests: u64,
    connects: u64,
    latencies_micros: Vec<f64>,
    error: Option<String>,
}

/// Per-client workload knobs, shared by every client thread.
#[derive(Clone, Copy)]
struct Workload {
    batch: usize,
    forecast_share: f64,
    binary: bool,
    keepalive: bool,
    reconnect_every: u64,
    /// Open-loop schedule: requests/sec for THIS client (0 = closed
    /// loop, fire as fast as answers come back).
    rate_per_client: f64,
}

/// Dotted-quad an IP for the text endpoints.
fn quad(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        ip >> 24,
        (ip >> 16) & 255,
        (ip >> 8) & 255,
        ip & 255
    )
}

/// Build the next request. Returns (bytes, ips answered, is-forecast).
fn build_request(w: &Workload, ips: &mut IpStream) -> (Vec<u8>, u64, bool) {
    let version = if w.keepalive { "HTTP/1.1" } else { "HTTP/1.0" };
    // Deterministic per-request coin flip for the /forecast mix,
    // drawn from the same xorshift stream as the addresses.
    let forecast_turn =
        w.forecast_share > 0.0 && (ips.next_ip() as f64) < w.forecast_share * u32::MAX as f64;
    if forecast_turn {
        let ip = ips.next_ip();
        return (
            format!("GET /forecast?ip={} {version}\r\n\r\n", quad(ip)).into_bytes(),
            1,
            true,
        );
    }
    if w.binary {
        let mut body = Vec::with_capacity(4 + 4 * w.batch);
        body.extend_from_slice(&(w.batch as u32).to_be_bytes());
        for _ in 0..w.batch {
            body.extend_from_slice(&ips.next_ip().to_be_bytes());
        }
        let mut req = format!(
            "POST /batch-bin {version}\r\nContent-Type: application/octet-stream\r\n\
             Content-Length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        req.extend_from_slice(&body);
        return (req, w.batch as u64, false);
    }
    if w.batch <= 1 {
        let ip = ips.next_ip();
        return (
            format!("GET /lookup?ip={} {version}\r\n\r\n", quad(ip)).into_bytes(),
            1,
            false,
        );
    }
    let mut body = String::with_capacity(w.batch * 16);
    for _ in 0..w.batch {
        body.push_str(&quad(ips.next_ip()));
        body.push('\n');
    }
    (
        format!(
            "POST /batch {version}\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes(),
        w.batch as u64,
        false,
    )
}

/// Sanity-check a /batch-bin response frame: generation + count + one
/// verdict byte per address.
fn check_binary_response(body: &[u8], batch: usize) -> Result<(), String> {
    if body.len() < 8 {
        return Err(format!(
            "batch-bin response too short: {} bytes",
            body.len()
        ));
    }
    let count = u32::from_be_bytes([body[4], body[5], body[6], body[7]]) as usize;
    if count != batch || body.len() != 8 + count {
        return Err(format!(
            "batch-bin frame mismatch: sent {batch}, response claims {count} in {} bytes",
            body.len()
        ));
    }
    Ok(())
}

fn client_loop(addr: &str, w: Workload, seed: u32, stop: &AtomicBool) -> ClientTally {
    let mut ips = IpStream(seed | 1);
    let mut client = HttpClient::new(addr, w.keepalive, w.reconnect_every);
    let mut tally = ClientTally {
        lookups: 0,
        requests: 0,
        forecast_requests: 0,
        connects: 0,
        latencies_micros: Vec::new(),
        error: None,
    };
    let interval =
        (w.rate_per_client > 0.0).then(|| Duration::from_secs_f64(1.0 / w.rate_per_client));
    let mut next_due = Instant::now();
    'run: while !stop.load(Ordering::Relaxed) {
        // Open loop: wait for the scheduled slot (in short slices so
        // shutdown is prompt), then time from the SCHEDULED start so
        // server backlog shows up as latency. Closed loop: now is the
        // schedule.
        let scheduled = match interval {
            Some(dt) => {
                loop {
                    let now = Instant::now();
                    if now >= next_due {
                        break;
                    }
                    std::thread::sleep((next_due - now).min(Duration::from_millis(20)));
                    if stop.load(Ordering::Relaxed) {
                        break 'run;
                    }
                }
                let s = next_due;
                next_due += dt;
                s
            }
            None => Instant::now(),
        };
        let (request, ips_in_request, forecast_turn) = build_request(&w, &mut ips);
        match client.request(&request) {
            Ok(body) => {
                if w.binary && !forecast_turn {
                    if let Err(e) = check_binary_response(&body, w.batch) {
                        tally.error = Some(e);
                        break;
                    }
                }
                tally
                    .latencies_micros
                    .push(scheduled.elapsed().as_micros() as f64);
                tally.requests += 1;
                tally.lookups += ips_in_request;
                if forecast_turn {
                    tally.forecast_requests += 1;
                }
            }
            Err(e) => {
                tally.error = Some(e);
                break;
            }
        }
    }
    tally.connects = client.connects;
    tally
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Self-host when asked: an in-process daemon on an ephemeral port.
    let hosted = match &args.blocklist {
        Some(list) => {
            let mut config = unclean_serve::ServeConfig::new(list);
            config.threads = args.clients.max(4);
            config.trace_sample = args.trace_sample;
            config.forecast = args.forecast.as_ref().map(std::path::PathBuf::from);
            match unclean_serve::Server::start(config, unclean_telemetry::Registry::full()) {
                Ok(server) => Some(server),
                Err(e) => {
                    eprintln!("error: cannot self-host from {list}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let addr = match (&hosted, &args.addr) {
        (Some(server), _) => server.local_addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => unreachable!("parse_args enforces one of the two"),
    };

    let forecast_share = if args.endpoint == "/forecast" {
        args.forecast_share
    } else {
        0.0
    };
    let workload = Workload {
        batch: args.batch,
        forecast_share,
        binary: args.binary,
        keepalive: !args.no_keepalive,
        reconnect_every: args.reconnect_every,
        rate_per_client: args.rate / args.clients as f64,
    };
    println!(
        "loadgen: {} client(s) x {}s against http://{addr} ({} ips/request, {}{}{}{})",
        args.clients,
        args.duration.as_secs_f64(),
        args.batch,
        if workload.keepalive {
            "keep-alive"
        } else {
            "connect-per-request"
        },
        if args.binary {
            ", /batch-bin binary"
        } else {
            ""
        },
        if args.rate > 0.0 {
            format!(", open-loop {} req/s", args.rate)
        } else {
            String::new()
        },
        if forecast_share > 0.0 {
            format!(", {:.0}% /forecast mix", forecast_share * 100.0)
        } else {
            String::new()
        }
    );

    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..args.clients)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || client_loop(&addr, workload, 0x9e37 + i as u32, &stop))
        })
        .collect();
    let poller = args.healthz_poll.then(|| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || healthz_loop(&addr, &stop))
    });
    std::thread::sleep(args.duration);
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ClientTally> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let health = poller.map(|p| p.join().expect("healthz poller"));
    let elapsed = t0.elapsed().as_secs_f64();

    if let Some(server) = hosted {
        let registry = server.registry().clone();
        // Graceful stop of the self-hosted daemon.
        let _ = oneshot(&addr, b"POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        server.wait();
        let dropped = registry.counter_value("conns.dropped");
        if dropped > 0 {
            eprintln!("warning: daemon dropped {dropped} connection(s) under load");
        }
    }

    for tally in &tallies {
        if let Some(e) = &tally.error {
            eprintln!("error: client failed mid-run: {e}");
            return ExitCode::FAILURE;
        }
    }

    let lookups: u64 = tallies.iter().map(|t| t.lookups).sum();
    let requests: u64 = tallies.iter().map(|t| t.requests).sum();
    let forecast_requests: u64 = tallies.iter().map(|t| t.forecast_requests).sum();
    let connects: u64 = tallies.iter().map(|t| t.connects).sum();
    let reconnects = connects.saturating_sub(args.clients as u64);
    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_micros.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let throughput = lookups as f64 / elapsed;

    println!("  lookups:    {lookups} ({requests} requests) in {elapsed:.2}s");
    if forecast_requests > 0 {
        println!(
            "  mix:        {forecast_requests} /forecast requests ({:.1}% of requests)",
            100.0 * forecast_requests as f64 / requests.max(1) as f64
        );
    }
    println!("  throughput: {throughput:.0} lookups/sec");
    println!("  conns:      {connects} connect(s), {reconnects} reconnect(s)");
    if latencies.is_empty() {
        println!("  latency:    no completed requests");
    } else {
        println!(
            "  latency:    p50 {:.0}us  p90 {:.0}us  p99 {:.0}us  p999 {:.0}us  max {:.0}us (per request)",
            quantile_sorted(&latencies, 0.50),
            quantile_sorted(&latencies, 0.90),
            quantile_sorted(&latencies, 0.99),
            quantile_sorted(&latencies, 0.999),
            latencies.last().copied().unwrap_or(0.0),
        );
    }

    if let Some(health) = &health {
        if let Some(e) = &health.error {
            eprintln!("error: healthz poller failed mid-run: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "  staleness:  {} healthz sample(s), peak age {}s, worst status {} \
             ({} degraded)",
            health.samples, health.max_age_secs, health.worst, health.degraded_samples
        );
    }

    let q = |p: f64| -> f64 {
        if latencies.is_empty() {
            0.0
        } else {
            quantile_sorted(&latencies, p)
        }
    };

    if let Some(path) = &args.json {
        let report = serde_json::json!({
            "benchmark": "serve-loadgen",
            "addr": addr.as_str(),
            "self_hosted": args.blocklist.is_some(),
            "clients": args.clients,
            "batch": args.batch,
            "endpoint": args.endpoint.as_str(),
            "keepalive": !args.no_keepalive,
            "binary": args.binary,
            "rate_target_rps": args.rate,
            "reconnect_every": args.reconnect_every,
            "forecast_share": forecast_share,
            "forecast_requests": forecast_requests,
            "trace_sample": args.trace_sample,
            "duration_secs": args.duration.as_secs_f64(),
            "elapsed_secs": elapsed,
            "lookups": lookups,
            "requests": requests,
            "connects": connects,
            "reconnects": reconnects,
            "throughput_lookups_per_sec": throughput,
            "latency_micros": {
                "p50": q(0.50),
                "p90": q(0.90),
                "p99": q(0.99),
                "p999": q(0.999),
                "max": latencies.last().copied().unwrap_or(0.0),
            },
        });
        let body = serde_json::to_string(&report).unwrap_or_default();
        if let Err(e) = std::fs::write(path, format!("{body}\n")) {
            eprintln!("error: cannot write --json {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  json:       wrote {path}");
    }

    if let Some(floor) = args.min_throughput {
        if throughput < floor {
            eprintln!("error: throughput {throughput:.0} < required {floor:.0} lookups/sec");
            return ExitCode::FAILURE;
        }
        println!("  gate:       >= {floor:.0} lookups/sec OK");
    }
    if let Some(bound) = args.max_p999_micros {
        if latencies.is_empty() {
            eprintln!("error: p999 gate got zero completed requests");
            return ExitCode::FAILURE;
        }
        let p999 = q(0.999);
        if p999 > bound {
            eprintln!("error: p999 latency {p999:.0}us > bound {bound:.0}us");
            return ExitCode::FAILURE;
        }
        println!("  gate:       p999 <= {bound:.0}us OK");
    }
    if let Some(bound) = args.max_staleness_secs {
        let health = health.as_ref().expect("parse_args ties the flags together");
        if health.samples == 0 {
            eprintln!("error: staleness gate got zero healthz samples");
            return ExitCode::FAILURE;
        }
        if health.max_age_secs > bound || health.degraded_samples > 0 {
            eprintln!(
                "error: staleness gate: peak generation age {}s (bound {}s), {} degraded sample(s)",
                health.max_age_secs, bound, health.degraded_samples
            );
            return ExitCode::FAILURE;
        }
        println!("  gate:       generation age <= {bound}s OK");
    }
    ExitCode::SUCCESS
}
