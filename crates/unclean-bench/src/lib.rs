//! # unclean-bench
//!
//! The experiment harness: one module (and one binary) per table and
//! figure in the paper's evaluation, plus Criterion performance benches.
//!
//! Every experiment consumes an [`ExperimentContext`] — a generated
//! scenario plus its report inventory — prints the same rows/series the
//! paper reports, and returns a JSON value that `run_all` collects into
//! `results/*.json` for EXPERIMENTS.md.
//!
//! | module | reproduces |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — report inventory |
//! | [`experiments::fig1`] | Figure 1 — scanning vs botnet report timeline |
//! | [`experiments::fig2`] | Figure 2 — naive vs empirical density estimates |
//! | [`experiments::fig3`] | Figure 3 — comparative density of the four classes |
//! | [`experiments::fig4`] | Figure 4 — bot-test predictive capacity |
//! | [`experiments::fig5`] | Figure 5 — phishing self-prediction |
//! | [`experiments::table2`] | Table 2 — candidate partition |
//! | [`experiments::table3`] | Table 3 — blocking sweep TP/FP/pop/unknown |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

use serde::Serialize;
use unclean_detect::{build_reports, PipelineConfig, ReportSet};
use unclean_netmodel::{Scenario, ScenarioConfig};

/// Options every experiment binary accepts.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Scenario scale relative to the paper's sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Control-ensemble trials (the paper uses 1000).
    pub trials: usize,
    /// Directory for JSON results (`None` = print only).
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            scale: 0.02,
            seed: 20061001,
            trials: 1000,
            out_dir: Some("results".into()),
        }
    }
}

impl BenchOpts {
    /// Parse process arguments (`--scale`, `--seed`, `--trials`, `--out`,
    /// `--no-out`).
    pub fn from_args() -> BenchOpts {
        let mut opts = BenchOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = value(i).parse().expect("--scale takes a float");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = value(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--trials" => {
                    opts.trials = value(i).parse().expect("--trials takes an integer");
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = Some(value(i).into());
                    i += 2;
                }
                "--no-out" => {
                    opts.out_dir = None;
                    i += 1;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale 0.02] [--seed N] [--trials 1000] [--out results] [--no-out]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }
}

/// A generated scenario plus the report inventory: what every experiment
/// consumes.
pub struct ExperimentContext {
    /// The options used.
    pub opts: BenchOpts,
    /// The scenario.
    pub scenario: Scenario,
    /// The Table 1 / Table 2 report inventory.
    pub reports: ReportSet,
}

impl ExperimentContext {
    /// Generate a context (this runs the full pipeline; seconds to minutes
    /// depending on scale).
    pub fn generate(opts: BenchOpts) -> ExperimentContext {
        eprintln!(
            "[bench] generating scenario: scale {} seed {} …",
            opts.scale, opts.seed
        );
        let t0 = std::time::Instant::now();
        let scenario = Scenario::generate(ScenarioConfig::at_scale(opts.scale, opts.seed));
        eprintln!(
            "[bench] world: {} hosts / {} blocks ({:.1?}); running detectors …",
            scenario.world.population.total_hosts(),
            scenario.world.population.block_count(),
            t0.elapsed()
        );
        let reports = build_reports(&scenario, &PipelineConfig::paper());
        eprintln!("[bench] pipeline complete ({:.1?})", t0.elapsed());
        ExperimentContext { opts, scenario, reports }
    }

    /// Persist one experiment's JSON result (no-op when `--no-out`).
    pub fn write_result<T: Serialize>(&self, name: &str, value: &T) {
        let Some(dir) = &self.opts.out_dir else {
            return;
        };
        std::fs::create_dir_all(dir).expect("create results directory");
        let path = dir.join(format!("{name}.json"));
        let file = std::fs::File::create(&path).expect("create result file");
        serde_json::to_writer_pretty(file, value).expect("serialize result");
        eprintln!("[bench] wrote {}", path.display());
    }
}

/// Fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Horizontal rule matching a table's widths.
pub fn rule(widths: &[usize]) -> String {
    widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("--")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts() {
        let o = BenchOpts::default();
        assert!(o.scale > 0.0);
        assert_eq!(o.trials, 1000);
        assert!(o.out_dir.is_some());
    }

    #[test]
    fn table_helpers() {
        assert_eq!(row(&["7".into()], &[3]), "  7");
        assert_eq!(rule(&[3, 2]).len(), 7);
    }
}
