//! # unclean-bench
//!
//! The experiment harness: one module (and one binary) per table and
//! figure in the paper's evaluation, plus Criterion performance benches.
//!
//! Every experiment consumes an [`ExperimentContext`] — a generated
//! scenario plus its report inventory — prints the same rows/series the
//! paper reports, and returns a JSON value that `run_all` collects into
//! `results/*.json` for EXPERIMENTS.md.
//!
//! | module | reproduces |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — report inventory |
//! | [`experiments::fig1`] | Figure 1 — scanning vs botnet report timeline |
//! | [`experiments::fig2`] | Figure 2 — naive vs empirical density estimates |
//! | [`experiments::fig3`] | Figure 3 — comparative density of the four classes |
//! | [`experiments::fig4`] | Figure 4 — bot-test predictive capacity |
//! | [`experiments::fig5`] | Figure 5 — phishing self-prediction |
//! | [`experiments::table2`] | Table 2 — candidate partition |
//! | [`experiments::table3`] | Table 3 — blocking sweep TP/FP/pop/unknown |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

pub use runner::RunError;
pub use unclean_telemetry::TelemetryLevel;

use serde::Serialize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use unclean_detect::{build_reports_with, PipelineConfig, ReportSet};
use unclean_netmodel::{Scenario, ScenarioConfig};
use unclean_telemetry::{Registry, Snapshot};

/// The scale factor `--scale smoke` aliases to: small enough for CI,
/// large enough that every report class is non-degenerate.
pub const SMOKE_SCALE: f64 = 0.002;

/// Process peak RSS in kB — the `VmHWM` high-water mark from
/// `/proc/self/status`. Monotonic for the life of the process; `None`
/// off Linux or when procfs is unreadable.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Options every experiment binary accepts.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Scenario scale relative to the paper's sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Control-ensemble trials (the paper uses 1000).
    pub trials: usize,
    /// Directory for JSON results (`None` = print only).
    pub out_dir: Option<std::path::PathBuf>,
    /// Telemetry verbosity (`--telemetry=off|summary|full`).
    pub telemetry: TelemetryLevel,
    /// Worker threads for every parallel stage — the detector sweeps, the
    /// trial ensembles, and the experiment scheduler (0 = one per core,
    /// 1 = fully serial). Results are identical at any thread count.
    pub threads: usize,
}

impl Default for BenchOpts {
    fn default() -> BenchOpts {
        BenchOpts {
            scale: 0.02,
            seed: 20061001,
            trials: 1000,
            out_dir: Some("results".into()),
            telemetry: TelemetryLevel::Summary,
            threads: 0,
        }
    }
}

impl BenchOpts {
    /// Parse the shared flags (`--scale`, `--seed`, `--trials`, `--out`,
    /// `--no-out`, `--telemetry`) out of `args`, returning the options
    /// plus any unrecognized arguments for the caller to interpret (the
    /// `run_all` supervisor layers its own flags on top). `--help` still
    /// exits 0.
    pub fn parse_known(args: &[String]) -> Result<(BenchOpts, Vec<String>), RunError> {
        let mut opts = BenchOpts::default();
        if let Ok(v) = std::env::var("UNCLEAN_THREADS") {
            opts.threads = v
                .parse()
                .map_err(|_| RunError::Usage("UNCLEAN_THREADS takes an integer".into()))?;
        }
        let mut extra = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| -> Result<&String, RunError> {
                args.get(i + 1)
                    .ok_or_else(|| RunError::Usage(format!("missing value for {}", args[i])))
            };
            match args[i].as_str() {
                "--scale" => {
                    let v = value(i)?;
                    opts.scale = if v == "smoke" {
                        SMOKE_SCALE
                    } else {
                        v.parse().map_err(|_| {
                            RunError::Usage("--scale takes a float or `smoke`".into())
                        })?
                    };
                    i += 2;
                }
                "--telemetry" => {
                    opts.telemetry = value(i)?.parse().map_err(RunError::Usage)?;
                    i += 2;
                }
                flag if flag.starts_with("--telemetry=") => {
                    let v = &flag["--telemetry=".len()..];
                    opts.telemetry = v.parse().map_err(RunError::Usage)?;
                    i += 1;
                }
                "--seed" => {
                    opts.seed = value(i)?
                        .parse()
                        .map_err(|_| RunError::Usage("--seed takes an integer".into()))?;
                    i += 2;
                }
                "--threads" => {
                    opts.threads = value(i)?
                        .parse()
                        .map_err(|_| RunError::Usage("--threads takes an integer".into()))?;
                    i += 2;
                }
                "--trials" => {
                    opts.trials = value(i)?
                        .parse()
                        .map_err(|_| RunError::Usage("--trials takes an integer".into()))?;
                    i += 2;
                }
                "--out" => {
                    opts.out_dir = Some(value(i)?.into());
                    i += 2;
                }
                "--no-out" => {
                    opts.out_dir = None;
                    i += 1;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale 0.02|smoke] [--seed N] [--trials 1000] [--out results] [--no-out]\n\
                         \x20      [--telemetry off|summary|full] [--threads N]\n\
                         --threads 0 (or the UNCLEAN_THREADS env var) means one worker per core;\n\
                         results are identical at any thread count.\n\
                         run_all also takes: [--resume] [--retries N] [--deadline SECS] [--only id1,id2]"
                    );
                    std::process::exit(0);
                }
                other => {
                    extra.push(other.to_string());
                    i += 1;
                }
            }
        }
        Ok((opts, extra))
    }

    /// Parse process arguments; any argument `parse_known` doesn't
    /// recognize is a usage error (exit code 2 at the binary boundary).
    pub fn from_args() -> Result<BenchOpts, RunError> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let (opts, extra) = BenchOpts::parse_known(&args)?;
        if let Some(unknown) = extra.first() {
            return Err(RunError::Usage(format!(
                "unknown argument {unknown}; try --help"
            )));
        }
        Ok(opts)
    }
}

/// A generated scenario plus the report inventory: what every experiment
/// consumes. Shared read-only between concurrently scheduled experiments;
/// per-attempt mutable state lives in each experiment's
/// [`ExperimentSlot`].
pub struct ExperimentContext {
    /// The options used.
    pub opts: BenchOpts,
    /// Resolved worker-thread count (≥ 1): `opts.threads` with 0 replaced
    /// by the available core count. Governs the detector sweeps, the
    /// trial ensembles, and the experiment scheduler alike.
    pub threads: usize,
    /// The scenario.
    pub scenario: Scenario,
    /// The Table 1 / Table 2 report inventory.
    pub reports: ReportSet,
    /// Run-level telemetry registry: scenario generation, the detector
    /// pipeline, and the archive/flow-store audit all record here.
    pub registry: Registry,
    /// Snapshot of [`ExperimentContext::registry`] taken right after
    /// generation — the shared context each experiment's telemetry is
    /// merged with in the manifest.
    pub shared_context: Snapshot,
}

impl ExperimentContext {
    /// Generate a context (this runs the full pipeline; seconds to minutes
    /// depending on scale).
    pub fn generate(opts: BenchOpts) -> ExperimentContext {
        let threads = crossbeam::executor::resolve_threads(opts.threads);
        eprintln!(
            "[bench] generating scenario: scale {} seed {} threads {} …",
            opts.scale, opts.seed, threads
        );
        let registry = Registry::new(opts.telemetry);
        // Declare the audit counters up front so a clean run exports an
        // explicit zero rather than omitting the series.
        registry.counter("ingest.quarantined_lines");
        registry.counter("store.flows_dropped");
        registry.gauge("bench.scale").set(opts.scale);
        registry.gauge("bench.trials").set(opts.trials as f64);
        let t0 = std::time::Instant::now();
        let mut scenario_config = ScenarioConfig::at_scale(opts.scale, opts.seed);
        scenario_config.threads = opts.threads;
        let scenario = Scenario::generate_recorded(scenario_config, &registry);
        eprintln!(
            "[bench] world: {} hosts / {} blocks ({:.1?}); running detectors …",
            scenario.world.population.total_hosts(),
            scenario.world.population.block_count(),
            t0.elapsed()
        );
        let reports = build_reports_with(&scenario, &self::pipeline_config(threads), &registry);
        eprintln!("[bench] pipeline complete ({:.1?})", t0.elapsed());
        let shared_context = registry.snapshot();
        ExperimentContext {
            opts,
            threads,
            scenario,
            reports,
            registry,
            shared_context,
        }
    }

    /// The paper pipeline configuration at this context's thread count.
    pub fn pipeline_config(&self) -> PipelineConfig {
        self::pipeline_config(self.threads)
    }
}

fn pipeline_config(threads: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::paper();
    cfg.threads = threads;
    cfg
}

/// Per-experiment mutable state: the current supervised attempt, its
/// telemetry registry, and the output files it has written. Each
/// concurrently scheduled experiment gets its own slot wrapping the
/// shared [`ExperimentContext`] (which it derefs to), so one experiment's
/// retries never perturb another's seed or telemetry.
pub struct ExperimentSlot {
    ctx: Arc<ExperimentContext>,
    /// Current supervised attempt (0 on the first try; retries bump it so
    /// [`ExperimentSlot::experiment_seed`] is perturbed).
    pub attempt: AtomicU64,
    /// Per-attempt registry, reset by [`ExperimentSlot::begin_attempt`]
    /// so a retried experiment doesn't double-count its aborted tries.
    attempt_registry: Mutex<Registry>,
    /// Output files written during the current attempt, with content
    /// hashes — drained into the manifest by the runner.
    written: Mutex<Vec<runner::OutputFile>>,
}

impl std::ops::Deref for ExperimentSlot {
    type Target = ExperimentContext;

    fn deref(&self) -> &ExperimentContext {
        &self.ctx
    }
}

impl ExperimentSlot {
    /// A fresh slot over the shared context.
    pub fn new(ctx: Arc<ExperimentContext>) -> ExperimentSlot {
        ExperimentSlot {
            attempt: AtomicU64::new(0),
            attempt_registry: Mutex::new(Registry::new(ctx.opts.telemetry)),
            written: Mutex::new(Vec::new()),
            ctx,
        }
    }

    /// Reset per-attempt state (the runner calls this before each try).
    pub fn begin_attempt(&self, attempt: u64) {
        self.attempt.store(attempt, Ordering::SeqCst);
        self.written.lock().expect("written lock").clear();
        *self.attempt_registry.lock().expect("registry lock") = Registry::new(self.opts.telemetry);
    }

    /// The registry experiments should record into: a cheap clone of the
    /// current attempt's registry (fresh per supervised attempt).
    pub fn attempt_registry(&self) -> Registry {
        self.attempt_registry.lock().expect("registry lock").clone()
    }

    /// Snapshot the current attempt's telemetry (the runner attaches this
    /// to the experiment's manifest record).
    pub fn take_attempt_snapshot(&self) -> Snapshot {
        self.attempt_registry
            .lock()
            .expect("registry lock")
            .snapshot()
    }

    /// The seed experiments should derive their local [`unclean_stats::SeedTree`]
    /// from. Equal to the scenario seed on the first attempt; retries
    /// perturb it (splitmix64 over seed ⊕ attempt) so a statistically
    /// unlucky draw isn't replayed verbatim — the *scenario* seed, and
    /// hence the shared generated world, is never changed.
    pub fn experiment_seed(&self) -> u64 {
        let attempt = self.attempt.load(Ordering::SeqCst);
        if attempt == 0 {
            return self.opts.seed;
        }
        let mut z = self
            .opts
            .seed
            .wrapping_add(attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Drain the output files recorded since `begin_attempt`.
    pub fn take_written(&self) -> Vec<runner::OutputFile> {
        std::mem::take(&mut *self.written.lock().expect("written lock"))
    }

    /// Persist one experiment's JSON result atomically (`NAME.json.tmp` →
    /// fsync → rename; no-op when `--no-out`), recording the file and its
    /// content hash for the run manifest.
    pub fn write_result<T: Serialize>(&self, name: &str, value: &T) -> Result<(), RunError> {
        let Some(dir) = &self.opts.out_dir else {
            return Ok(());
        };
        let file = format!("{name}.json");
        let path = dir.join(&file);
        let hash = runner::atomic_write_json(&path, value)?;
        self.written
            .lock()
            .expect("written lock")
            .push(runner::OutputFile { file, hash });
        eprintln!("[bench] wrote {}", path.display());
        Ok(())
    }
}

/// Fixed-width table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Horizontal rule matching a table's widths.
pub fn rule(widths: &[usize]) -> String {
    widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("--")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts() {
        let o = BenchOpts::default();
        assert!(o.scale > 0.0);
        assert_eq!(o.trials, 1000);
        assert!(o.out_dir.is_some());
    }

    #[test]
    fn table_helpers() {
        assert_eq!(row(&["7".into()], &[3]), "  7");
        assert_eq!(rule(&[3, 2]).len(), 7);
    }
}
