//! Figure 3: comparative density of unclean blocks against control draws,
//! for each of the four classes — bots (i), phishing (ii), spamming (iii)
//! and scanning (iv). Each panel compares `|C_n(R_class)|` against the
//! boxplot of 1000 equal-cardinality control subsets; the unclean curve
//! must sit at or below the control's at every prefix length (Eq. 3).

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_stats::SeedTree;

/// Run the Figure 3 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Figure 3: comparative density of the unclean classes ===");
    let control = ctx.reports.control.addresses();
    let analysis = DensityAnalysis::with_config(DensityConfig {
        trials: ctx.opts.trials,
        threads: ctx.threads,
        ..DensityConfig::default()
    });
    let seeds = SeedTree::new(ctx.experiment_seed()).child("fig3");
    let registry = ctx.attempt_registry();

    let panels = [
        ("(i)", &ctx.reports.bot),
        ("(ii)", &ctx.reports.phish),
        ("(iii)", &ctx.reports.spam),
        ("(iv)", &ctx.reports.scan),
    ];
    let mut json_panels = Vec::new();
    for (panel, report) in panels {
        let res = analysis.run_recorded(report, control, &[], &seeds, &registry);
        println!(
            "\n-- {panel} R_{} ({} addresses) — Eq. 3 holds: {} --",
            report.tag(),
            report.len(),
            res.hypothesis_holds()
        );
        let widths = [3, 12, 26, 8];
        println!(
            "{}",
            row(
                &[
                    "n".into(),
                    "observed".into(),
                    "control (med [min,max])".into(),
                    "ratio".into()
                ],
                &widths
            )
        );
        println!("{}", rule(&widths));
        let mut rows = Vec::new();
        for (i, &n) in res.xs.iter().enumerate() {
            let b = &res.control_boxes[i].1;
            let ratio = res.density_ratio()[i];
            if n % 2 == 0 {
                println!(
                    "{}",
                    row(
                        &[
                            n.to_string(),
                            res.observed[i].to_string(),
                            format!("{:.0} [{:.0}, {:.0}]", b.median, b.min, b.max),
                            format!("{ratio:.2}"),
                        ],
                        &widths
                    )
                );
            }
            rows.push(json!({
                "n": n,
                "observed": res.observed[i],
                "control_median": b.median,
                "control_min": b.min,
                "control_max": b.max,
                "density_ratio": ratio,
            }));
        }
        json_panels.push(json!({
            "panel": panel,
            "tag": report.tag(),
            "cardinality": report.len(),
            "holds": res.hypothesis_holds(),
            "holds_strict": res.hypothesis_holds_strict(),
            "rows": rows,
        }));
    }

    let result = json!({
        "experiment": "fig3",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "trials": ctx.opts.trials,
        "panels": json_panels,
    });
    ctx.write_result("fig3", &result)?;
    Ok(result)
}
