//! Figure 5: comparative predictive capacity of phishing reports.
//!
//! `R_phish-test` (early phishing history) against the same present
//! phishing sub-report that `R_bot-test` failed to predict in Figure
//! 4(ii). The paper: "this figure shows strong evidence for temporal
//! uncleanliness in phishing" — phishing predicts itself even though
//! botnet history cannot predict it.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_stats::{SeedTree, Verdict};

/// Run the Figure 5 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Figure 5: phishing self-prediction ===\n");
    let control = ctx.reports.control.addresses();
    let analysis = TemporalAnalysis::with_config(TemporalConfig {
        trials: ctx.opts.trials,
        threads: ctx.threads,
        ..TemporalConfig::default()
    });
    let seeds = SeedTree::new(ctx.experiment_seed()).child("fig5");

    println!(
        "predictor: R_{} — {} addresses ({})",
        ctx.reports.phish_test.tag(),
        ctx.reports.phish_test.len(),
        ctx.reports.phish_test.period()
    );
    println!(
        "target   : R_{} — {} addresses ({})\n",
        ctx.reports.phish_window.tag(),
        ctx.reports.phish_window.len(),
        ctx.reports.phish_window.period()
    );

    let res = analysis.run_recorded(
        &ctx.reports.phish_test,
        &ctx.reports.phish_window,
        control,
        &seeds,
        &ctx.attempt_registry(),
    );
    let widths = [3, 9, 24, 9];
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "observed".into(),
                "control (med [min,max])".into(),
                "verdict".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let fives = res.control.five_numbers();
    let mut rows = Vec::new();
    for (i, &n) in res.xs.iter().enumerate() {
        let b = &fives[i].1;
        let verdict = match res.verdicts()[i] {
            Verdict::Better => "BETTER",
            Verdict::Worse => "worse",
            Verdict::Indistinguishable => "—",
        };
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    res.observed[i].to_string(),
                    format!("{:.1} [{:.0}, {:.0}]", b.median, b.min, b.max),
                    verdict.into(),
                ],
                &widths
            )
        );
        rows.push(json!({
            "n": n,
            "observed": res.observed[i],
            "control_median": b.median,
            "verdict": verdict,
        }));
    }
    println!(
        "\nEq. 5 holds: {} | predictive band: {:?}",
        res.hypothesis_holds(),
        res.predictive_band()
    );
    println!("(compare Figure 4(ii), where R_bot-test failed on the same target)");

    let result = json!({
        "experiment": "fig5",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "trials": ctx.opts.trials,
        "phish_test_size": ctx.reports.phish_test.len(),
        "phish_present_size": ctx.reports.phish_window.len(),
        "holds": res.hypothesis_holds(),
        "predictive_band": res.predictive_band(),
        "rows": rows,
    });
    ctx.write_result("fig5", &result)?;
    Ok(result)
}
