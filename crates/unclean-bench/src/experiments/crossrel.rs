//! Cross-relationship analysis (the paper's abstract claim): bots, spam
//! and scanning share addresses and /24s far beyond chance, while phishing
//! is unrelated to all three. Prints the pairwise overlap matrix with a
//! random-draw baseline for every pair.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_stats::SeedTree;

/// Expected address-level overlap of two random reports of the given sizes
/// drawn from the control pool, by simulation (cheap closed forms misstate
/// this because the control is clustered).
fn baseline_overlap(
    control: &IpSet,
    size_a: usize,
    size_b: usize,
    seeds: &SeedTree,
    trials: usize,
) -> f64 {
    let mut total = 0usize;
    for t in 0..trials {
        let mut rng = seeds.stream_idx(t as u64);
        let a = control
            .sample(&mut rng, size_a.min(control.len()))
            .expect("bounded");
        let b = control
            .sample(&mut rng, size_b.min(control.len()))
            .expect("bounded");
        total += a.intersect(&b).len();
    }
    total as f64 / trials as f64
}

/// Run the cross-relationship experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Cross-relationship: pairwise indicator overlap ===\n");
    let reports = [
        &ctx.reports.bot,
        &ctx.reports.spam,
        &ctx.reports.scan,
        &ctx.reports.phish,
    ];
    let matrix = OverlapMatrix::compute(&reports);
    let control = ctx.reports.control.addresses();
    let seeds = SeedTree::new(ctx.experiment_seed()).child("crossrel");

    let widths = [6, 6, 10, 10, 12, 10, 9];
    println!(
        "{}",
        row(
            &[
                "a".into(),
                "b".into(),
                "∩ addrs".into(),
                "chance".into(),
                "lift".into(),
                "∩ /24s".into(),
                "contain".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut cells = Vec::new();
    for cell in &matrix.cells {
        let size_a = reports
            .iter()
            .find(|r| r.tag() == cell.a)
            .expect("present")
            .len();
        let size_b = reports
            .iter()
            .find(|r| r.tag() == cell.b)
            .expect("present")
            .len();
        let chance = baseline_overlap(control, size_a, size_b, &seeds, 20);
        let lift = if chance > 0.0 {
            cell.addresses as f64 / chance
        } else {
            f64::INFINITY
        };
        println!(
            "{}",
            row(
                &[
                    cell.a.clone(),
                    cell.b.clone(),
                    cell.addresses.to_string(),
                    format!("{chance:.1}"),
                    if lift.is_finite() {
                        format!("×{lift:.0}")
                    } else {
                        "∞".into()
                    },
                    cell.blocks24.to_string(),
                    format!("{:.2}", cell.containment),
                ],
                &widths
            )
        );
        cells.push(json!({
            "a": cell.a, "b": cell.b,
            "addresses": cell.addresses,
            "chance": chance,
            "lift": if lift.is_finite() { lift } else { -1.0 },
            "blocks24": cell.blocks24,
            "jaccard": cell.jaccard,
            "containment": cell.containment,
        }));
    }

    let bs = matrix
        .cell(ctx.reports.bot.tag(), ctx.reports.spam.tag())
        .expect("bot/spam pair present");
    let bp = matrix
        .cell(ctx.reports.bot.tag(), ctx.reports.phish.tag())
        .expect("bot/phish pair present");
    println!(
        "\nbot∩spam containment {:.0}% vs bot∩phish {:.0}% — the botnet ecosystem",
        bs.containment * 100.0,
        bp.containment * 100.0
    );
    println!("overlaps internally and not with phishing (abstract's claim).");

    let result = json!({
        "experiment": "crossrel",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "cells": cells,
    });
    ctx.write_result("crossrel", &result)?;
    Ok(result)
}
