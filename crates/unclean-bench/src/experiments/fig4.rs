//! Figure 4: comparative predictive capacity of the five-month-old
//! `R_bot-test` against the present unclean reports — bots (i), phishing
//! (ii), spamming (iii), scanning (iv).
//!
//! The paper's findings, which the series here reproduce in shape:
//! bot-test beats 1000 random control draws (95% criterion) for bots,
//! spamming and scanning over a band of prefix lengths, and fails entirely
//! for phishing.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_stats::{SeedTree, Verdict};

/// Run the Figure 4 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Figure 4: predictive capacity of R_bot-test ===");
    println!(
        "predictor: {} addresses from {} (five months before the window)",
        ctx.reports.bot_test.len(),
        ctx.reports.bot_test.period()
    );
    let control = ctx.reports.control.addresses();
    let analysis = TemporalAnalysis::with_config(TemporalConfig {
        trials: ctx.opts.trials,
        threads: ctx.threads,
        ..TemporalConfig::default()
    });
    let seeds = SeedTree::new(ctx.experiment_seed()).child("fig4");
    let registry = ctx.attempt_registry();

    let panels = [
        ("(i)", "bots", &ctx.reports.bot),
        ("(ii)", "phishing", &ctx.reports.phish_window),
        ("(iii)", "spamming", &ctx.reports.spam),
        ("(iv)", "scanning", &ctx.reports.scan),
    ];
    let mut json_panels = Vec::new();
    for (panel, name, present) in panels {
        let res = analysis.run_recorded(&ctx.reports.bot_test, present, control, &seeds, &registry);
        println!(
            "\n-- {panel} vs R_{} ({} addresses) — Eq. 5 holds: {} | band: {:?} --",
            present.tag(),
            present.len(),
            res.hypothesis_holds(),
            res.predictive_band()
        );
        let widths = [3, 9, 24, 9];
        println!(
            "{}",
            row(
                &[
                    "n".into(),
                    "observed".into(),
                    "control (med [min,max])".into(),
                    "verdict".into()
                ],
                &widths
            )
        );
        println!("{}", rule(&widths));
        let mut rows = Vec::new();
        for (i, &n) in res.xs.iter().enumerate() {
            let fives = res.control.five_numbers();
            let b = &fives[i].1;
            let verdict = match res.verdicts()[i] {
                Verdict::Better => "BETTER",
                Verdict::Worse => "worse",
                Verdict::Indistinguishable => "—",
            };
            if n % 2 == 0 {
                println!(
                    "{}",
                    row(
                        &[
                            n.to_string(),
                            res.observed[i].to_string(),
                            format!("{:.1} [{:.0}, {:.0}]", b.median, b.min, b.max),
                            verdict.into(),
                        ],
                        &widths
                    )
                );
            }
            rows.push(json!({
                "n": n,
                "observed": res.observed[i],
                "control_median": b.median,
                "control_min": b.min,
                "control_max": b.max,
                "verdict": verdict,
            }));
        }
        json_panels.push(json!({
            "panel": panel,
            "name": name,
            "present_tag": present.tag(),
            "present_size": present.len(),
            "holds": res.hypothesis_holds(),
            "predictive_band": res.predictive_band(),
            "rows": rows,
        }));
    }

    println!("\npaper comparison: bots/spam/scan predicted over a prefix band,");
    println!("phishing not predicted at any length (the multidimensionality result).");

    let result = json!({
        "experiment": "fig4",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "trials": ctx.opts.trials,
        "bot_test_size": ctx.reports.bot_test.len(),
        "panels": json_panels,
    });
    ctx.write_result("fig4", &result)?;
    Ok(result)
}
