//! Table 1: the report inventory — tags, types, classes, validity dates
//! and sizes, compared against the paper's numbers scaled by the run's
//! scale factor.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::Report;
use unclean_netmodel::paper_sizes;

/// Run the Table 1 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Table 1: report inventory ===\n");
    let scale = ctx.opts.scale;
    let rows: Vec<(&Report, usize)> = vec![
        (&ctx.reports.bot, paper_sizes::BOT),
        (&ctx.reports.phish, paper_sizes::PHISH),
        (&ctx.reports.scan, paper_sizes::SCAN),
        (&ctx.reports.spam, paper_sizes::SPAM),
        (&ctx.reports.bot_test, paper_sizes::BOT_TEST),
        (&ctx.reports.control, paper_sizes::CONTROL),
    ];
    let widths = [18, 9, 9, 24, 10, 12, 7];
    println!(
        "{}",
        row(
            &[
                "tag".into(),
                "type".into(),
                "class".into(),
                "valid dates".into(),
                "size".into(),
                "paper×scale".into(),
                "ratio".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut json_rows = Vec::new();
    for (report, paper_full) in &rows {
        let expected = if report.tag().starts_with("bot-test") {
            *paper_full // bot-test stays at its absolute size
        } else {
            (*paper_full as f64 * scale).round() as usize
        };
        let ratio = report.len() as f64 / expected.max(1) as f64;
        println!(
            "{}",
            row(
                &[
                    report.tag().into(),
                    report.provenance().to_string(),
                    report.class().to_string(),
                    report.period().to_string(),
                    report.len().to_string(),
                    expected.to_string(),
                    format!("{ratio:.2}"),
                ],
                &widths
            )
        );
        json_rows.push(json!({
            "tag": report.tag(),
            "type": report.provenance().to_string(),
            "class": report.class().to_string(),
            "period": report.period().to_string(),
            "size": report.len(),
            "paper_size_scaled": expected,
            "ratio": ratio,
        }));
    }
    println!(
        "\nunion R_unclean: {} addresses (constituents sum to {}; the overlap is Table 2's point)",
        ctx.reports.unclean.len(),
        rows.iter().take(4).map(|(r, _)| r.len()).sum::<usize>()
    );

    let registry = ctx.attempt_registry();
    registry
        .counter("bench.inventory_reports")
        .add(rows.len() as u64);
    registry
        .counter("bench.inventory_addresses")
        .add(rows.iter().map(|(r, _)| r.len() as u64).sum());

    let result = json!({
        "experiment": "table1",
        "scale": scale,
        "seed": ctx.opts.seed,
        "rows": json_rows,
        "unclean_union": ctx.reports.unclean.len(),
    });
    ctx.write_result("table1", &result)?;
    Ok(result)
}
