//! Table 2: the reports used for the prediction (blocking) test — the
//! `R_unclean` union, the candidate traffic from `C_24(R_bot-test)`, and
//! its partition into hostile / unknown / innocent.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_detect::build_candidates_with;

/// Compute the candidate partition (shared with Table 3).
pub fn partition(ctx: &ExperimentSlot) -> (Vec<Candidate>, Partition) {
    let registry = ctx.attempt_registry();
    let candidates = build_candidates_with(
        &ctx.scenario,
        &ctx.reports.bot_test,
        24,
        &ctx.pipeline_config(),
        &registry,
    );
    let partition = Partition::new(&candidates, ctx.reports.unclean.addresses());
    registry
        .counter("bench.candidates")
        .add(candidates.len() as u64);
    (candidates, partition)
}

/// Run the Table 2 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Table 2: reports used for the prediction test ===\n");
    let (candidates, part) = partition(ctx);
    let window = ctx.scenario.dates.unclean_window;

    let widths = [10, 9, 24, 9];
    println!(
        "{}",
        row(
            &[
                "tag".into(),
                "type".into(),
                "valid dates".into(),
                "size".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let rows: Vec<(&str, &str, usize)> = vec![
        ("unclean", "Provided", ctx.reports.unclean.len()),
        ("candidate", "Observed", candidates.len()),
        ("hostile", "Observed", part.hostile.len()),
        ("unknown", "Observed", part.unknown.len()),
        ("innocent", "Observed", part.innocent.len()),
    ];
    for (tag, ty, size) in &rows {
        println!(
            "{}",
            row(
                &[
                    (*tag).into(),
                    (*ty).into(),
                    window.to_string(),
                    size.to_string()
                ],
                &widths
            )
        );
    }

    println!("\npaper shape: hostile ≫ innocent (287 vs 35), unknown a large middle");
    println!(
        "ours: hostile/innocent = {:.1}, unknown/candidate = {:.2}",
        part.hostile.len() as f64 / part.innocent.len().max(1) as f64,
        part.unknown.len() as f64 / candidates.len().max(1) as f64
    );

    let result = json!({
        "experiment": "table2",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "window": window.to_string(),
        "unclean": ctx.reports.unclean.len(),
        "candidate": candidates.len(),
        "hostile": part.hostile.len(),
        "unknown": part.unknown.len(),
        "innocent": part.innocent.len(),
        "paper": { "unclean": 1_158_103, "candidate": 1030, "hostile": 287, "unknown": 708, "innocent": 35 },
    });
    ctx.write_result("table2", &result)?;
    Ok(result)
}
