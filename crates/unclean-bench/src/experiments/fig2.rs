//! Figure 2: comparison of density estimation techniques.
//!
//! Plots `|C_n(·)|` for n ∈ [16, 32] for (a) the naive estimate (uniform
//! over IANA-allocated /8s), (b) the empirical estimate (random subsets of
//! the control report), and (c) the actual bot report — all at the bot
//! report's cardinality. The paper's observation: the naive estimate is
//! "considerably higher", roughly doubling per bit, while the empirical
//! estimate and the bot report bend far below it.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_netmodel::allocated_slash8s;
use unclean_stats::SeedTree;

/// Run the Figure 2 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Figure 2: density estimation techniques ===\n");
    let bot = &ctx.reports.bot;
    let control = ctx.reports.control.addresses();
    let seeds = SeedTree::new(ctx.experiment_seed()).child("fig2");
    let trials = ctx.opts.trials;
    let registry = ctx.attempt_registry();

    let empirical = DensityAnalysis::with_config(DensityConfig {
        trials,
        estimator: Estimator::Empirical,
        threads: ctx.threads,
        ..DensityConfig::default()
    })
    .run_recorded(bot, control, &[], &seeds.child("empirical"), &registry);
    let naive = DensityAnalysis::with_config(DensityConfig {
        trials: trials.min(100), // the naive sampler is slower; 100 is plenty
        estimator: Estimator::Naive,
        threads: ctx.threads,
        ..DensityConfig::default()
    })
    .run_recorded(
        bot,
        control,
        &allocated_slash8s(),
        &seeds.child("naive"),
        &registry,
    );

    let widths = [3, 12, 24, 24];
    println!("bot report: {} addresses\n", bot.len());
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "bot |C_n|".into(),
                "empirical (med [min,max])".into(),
                "naive (med [min,max])".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for (i, &n) in empirical.xs.iter().enumerate() {
        let e = &empirical.control_boxes[i].1;
        let v = &naive.control_boxes[i].1;
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    empirical.observed[i].to_string(),
                    format!("{:.0} [{:.0}, {:.0}]", e.median, e.min, e.max),
                    format!("{:.0} [{:.0}, {:.0}]", v.median, v.min, v.max),
                ],
                &widths
            )
        );
        rows.push(json!({
            "n": n,
            "bot": empirical.observed[i],
            "empirical_median": e.median,
            "empirical_min": e.min,
            "empirical_max": e.max,
            "naive_median": v.median,
        }));
    }

    // The paper's headline ratios.
    let idx24 = empirical
        .xs
        .iter()
        .position(|&x| x == 24)
        .expect("24 in range");
    let naive_over_empirical =
        naive.control_boxes[idx24].1.median / empirical.control_boxes[idx24].1.median;
    let empirical_over_bot =
        empirical.control_boxes[idx24].1.median / empirical.observed[idx24] as f64;
    println!("\nat /24: naive is ×{naive_over_empirical:.1} the empirical estimate;");
    println!("the empirical estimate is ×{empirical_over_bot:.1} the actual bot density.");

    let result = json!({
        "experiment": "fig2",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "cardinality": bot.len(),
        "rows": rows,
        "naive_over_empirical_at_24": naive_over_empirical,
        "empirical_over_bot_at_24": empirical_over_bot,
    });
    ctx.write_result("fig2", &result)?;
    Ok(result)
}
