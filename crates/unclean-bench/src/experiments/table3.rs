//! Table 3: observed true- and false-positive counts for the virtual
//! blocking sweep over n ∈ [24, 32], plus the derived precision and the
//! §6.2 sparseness numbers (blocks spanned vs addresses that actually
//! communicated).

use crate::experiments::table2;
use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;

/// The paper's Table 3, for side-by-side printing.
const PAPER_ROWS: [(u8, u64, u64, u64, u64); 9] = [
    (24, 287, 35, 322, 708),
    (25, 172, 22, 194, 344),
    (26, 81, 1, 82, 200),
    (27, 38, 1, 39, 105),
    (28, 18, 0, 18, 60),
    (29, 7, 0, 7, 29),
    (30, 1, 0, 1, 14),
    (31, 1, 0, 1, 7),
    (32, 1, 0, 1, 0),
];

/// Run the Table 3 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Table 3: observed true and false positive counts ===\n");
    let (_candidates, part) = table2::partition(ctx);
    let table = {
        let _span = ctx.attempt_registry().span("blocking_sweep");
        BlockingAnalysis::default().run(ctx.reports.bot_test.addresses(), &part)
    };

    let widths = [3, 7, 7, 8, 9, 6, 22];
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "TP(n)".into(),
                "FP(n)".into(),
                "pop(n)".into(),
                "unknown".into(),
                "prec".into(),
                "paper (TP/FP/pop/unk)".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for (r, paper) in table.rows.iter().zip(PAPER_ROWS) {
        println!(
            "{}",
            row(
                &[
                    r.n.to_string(),
                    r.tp.to_string(),
                    r.fp.to_string(),
                    r.pop.to_string(),
                    r.unknown.to_string(),
                    format!("{:.2}", r.precision()),
                    format!("{}/{}/{}/{}", paper.1, paper.2, paper.3, paper.4),
                ],
                &widths
            )
        );
        rows.push(json!({
            "n": r.n, "tp": r.tp, "fp": r.fp, "pop": r.pop, "unknown": r.unknown,
            "precision": r.precision(),
            "precision_unknown_hostile": r.precision_assuming_unknown_hostile(),
            "paper_tp": paper.1, "paper_fp": paper.2, "paper_pop": paper.3, "paper_unknown": paper.4,
        }));
    }

    let r24 = table.row(24).expect("row 24");
    let (_, blocks24) = table.blocks_per_n[0];
    let (_, span24) = table.span_per_n[0];
    let roc = table.roc(part.hostile.len() as u64, part.innocent.len() as u64);

    // Bootstrap CI on the /24 precision: resample the scored candidates.
    let outcomes: Vec<bool> = std::iter::repeat_n(true, r24.tp as usize)
        .chain(std::iter::repeat_n(false, r24.fp as usize))
        .collect();
    let ci = unclean_stats::bootstrap_proportion_ci(
        &outcomes,
        1000,
        0.95,
        &unclean_stats::SeedTree::new(ctx.experiment_seed()).child("table3-ci"),
    );
    println!("\nheadlines:");
    println!(
        "  precision at /24: {:.0}% (95% CI [{:.0}%, {:.0}%]; paper: 90%); counting unknowns hostile: {:.0}% (paper: 97%)",
        r24.precision() * 100.0,
        ci.lo * 100.0,
        ci.hi * 100.0,
        r24.precision_assuming_unknown_hostile() * 100.0
    );
    println!(
        "  sparseness: {} /24s span {} addresses; {} communicated ({:.1}%; paper: <2%)",
        blocks24,
        span24,
        part.total(),
        100.0 * part.total() as f64 / span24 as f64
    );

    let result = json!({
        "experiment": "table3",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "rows": rows,
        "precision_at_24": r24.precision(),
        "precision_at_24_ci": [ci.lo, ci.hi],
        "precision_at_24_unknown_hostile": r24.precision_assuming_unknown_hostile(),
        "blocks_24": blocks24,
        "span_24": span24,
        "communicating": part.total(),
        "auc": roc.auc(),
    });
    ctx.write_result("table3", &result)?;
    Ok(result)
}
