//! One module per paper table/figure. Each exposes
//! `run(&ExperimentSlot) -> Result<serde_json::Value, RunError>`: it
//! prints the human-readable rows/series and returns the machine-readable
//! result (persistence failures propagate; assertion failures panic and
//! are caught by the supervisor in [`crate::runner`]).

pub mod ablations;
pub mod crossrel;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod table1;
pub mod table2;
pub mod table3;

use crate::{ExperimentSlot, RunError};
use serde_json::Value;

/// The signature every experiment implements.
pub type Runner = fn(&ExperimentSlot) -> Result<Value, RunError>;

/// Every experiment, in paper order: (id, description, runner).
pub type Experiment = (&'static str, &'static str, Runner);

/// The full experiment registry.
pub fn all() -> Vec<Experiment> {
    vec![
        ("table1", "report inventory", table1::run),
        ("fig1", "scanning vs botnet report timeline", fig1::run),
        ("fig2", "naive vs empirical density estimates", fig2::run),
        (
            "fig3",
            "comparative density of the four unclean classes",
            fig3::run,
        ),
        (
            "fig4",
            "predictive capacity of the bot-test report",
            fig4::run,
        ),
        ("fig5", "phishing self-prediction", fig5::run),
        ("table2", "candidate partition", table2::run),
        ("table3", "blocking sweep TP/FP/pop/unknown", table3::run),
        ("crossrel", "cross-indicator overlap matrix", crossrel::run),
        (
            "ablations",
            "aging / detector / aggregation ablations",
            ablations::run,
        ),
    ]
}
