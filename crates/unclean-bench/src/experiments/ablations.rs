//! Ablation studies beyond the paper's evaluation, probing the design
//! choices DESIGN.md calls out:
//!
//! * **Report aging** — how does the bot report's predictive power decay
//!   with age? The paper only tests one gap (five months) and argues
//!   fresher reports must do better; we sweep the gap.
//! * **Detector choice** — the deployed hourly fan-out detector vs the TRW
//!   sequential-hypothesis baseline: report size and overlap.
//! * **Aggregation level** — Figure 1's /24 overlap gain, swept over
//!   prefix lengths: how much extra scanning does each level of
//!   aggregation attribute to the botnet, and when does it dissolve into
//!   noise?

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::prelude::*;
use unclean_detect::{BotMonitor, FanoutConfig, HourlyFanoutDetector, TrwConfig, TrwDetector};
use unclean_flowgen::{FlowGenerator, GeneratorConfig};
use unclean_stats::SeedTree;

/// Ablation A: predictive power vs report age.
///
/// Takes channel snapshots at increasing distances before the unclean
/// window and measures each one's predictive band and /24 advantage over
/// control draws against the present bot report.
pub fn report_aging(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation A: prediction vs report age ===\n");
    let scenario = &ctx.scenario;
    let window_start = scenario.dates.unclean_window.start;
    let analysis = TemporalAnalysis::with_config(TemporalConfig {
        trials: ctx.opts.trials.min(250),
        threads: ctx.threads,
        ..TemporalConfig::default()
    });
    let seeds = SeedTree::new(ctx.experiment_seed()).child("ablation-aging");
    let control = ctx.reports.control.addresses();

    let widths = [10, 9, 12, 12, 12];
    println!(
        "{}",
        row(
            &[
                "age_days".into(),
                "size".into(),
                "band".into(),
                "obs@24".into(),
                "ctl_med@24".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for age in [7i32, 30, 90, 150, 240] {
        let day = window_start - age;
        // The busiest channel's roster at that day plays the "old report".
        let snapshot =
            BotMonitor::channel_snapshot(&scenario.infections, scenario.bot_test_channel, day);
        if snapshot.len() < 10 {
            println!("{age:>10}  (channel roster too small at this date; skipped)");
            continue;
        }
        let past = Report::new(
            format!("bot-age-{age}"),
            ReportClass::Bots,
            Provenance::Provided,
            DateRange::single(day),
            snapshot,
        );
        let res = analysis.run(&past, &ctx.reports.bot, control, &seeds);
        let idx24 = res.xs.iter().position(|&x| x == 24).expect("24 in range");
        let ctl_med = res.control.five_numbers()[idx24].1.median;
        println!(
            "{}",
            row(
                &[
                    age.to_string(),
                    past.len().to_string(),
                    format!("{:?}", res.predictive_band()),
                    res.observed[idx24].to_string(),
                    format!("{ctl_med:.1}"),
                ],
                &widths
            )
        );
        rows.push(json!({
            "age_days": age,
            "size": past.len(),
            "band": res.predictive_band(),
            "holds": res.hypothesis_holds(),
            "observed_at_24": res.observed[idx24],
            "control_median_at_24": ctl_med,
        }));
    }
    println!("\neven multi-month-old rosters keep predicting (temporal persistence);");
    println!("fresher rosters have larger absolute overlap.");

    let result = json!({
        "experiment": "ablation_aging",
        "scale": ctx.opts.scale,
        "rows": rows,
    });
    ctx.write_result("ablation_aging", &result)?;
    Ok(result)
}

/// Ablation B: hourly fan-out detector vs the TRW baseline on one day of
/// border traffic.
pub fn detector_comparison(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation B: fan-out detector vs TRW ===\n");
    let scenario = &ctx.scenario;
    let model = scenario.activity();
    let generator = FlowGenerator::new(
        &scenario.observed,
        GeneratorConfig::default(),
        scenario.seeds.child("flowgen"),
    );
    let mut fanout = HourlyFanoutDetector::new(FanoutConfig::default());
    let mut trw = TrwDetector::new(TrwConfig::default());
    let day = scenario.dates.unclean_window.start;
    let mut flows = 0u64;
    generator.flows_on(&model, day, true, |f| {
        flows += 1;
        fanout.observe(&f);
        trw.observe(&f);
    });

    let fan = fanout.detected();
    let t = trw.detected();
    let both = fan.intersect(&t);
    println!("flows examined      : {flows}");
    println!("fan-out detections  : {}", fan.len());
    println!("TRW detections      : {}", t.len());
    println!("agreement           : {}", both.len());
    println!(
        "TRW-only (incl. slow scanners the fan-out threshold misses): {}",
        t.difference(&fan).len()
    );
    println!("fan-out-only        : {}", fan.difference(&t).len());

    let result = json!({
        "experiment": "ablation_detectors",
        "flows": flows,
        "fanout": fan.len(),
        "trw": t.len(),
        "agreement": both.len(),
        "trw_only": t.difference(&fan).len(),
        "fanout_only": fan.difference(&t).len(),
    });
    ctx.write_result("ablation_detectors", &result)?;
    Ok(result)
}

/// Ablation C: the Figure 1 overlap gain, swept over aggregation levels.
pub fn aggregation_sweep(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation C: bot/scan overlap vs aggregation level ===\n");
    let scenario = &ctx.scenario;
    let day = scenario.dates.fig1_report_day;
    let bot_report = BotMonitor::channel_snapshot(&scenario.infections, scenario.fig1_channel, day);
    let scanners = unclean_detect::daily_scanners(
        scenario,
        DateRange::single(day),
        false,
        &ctx.pipeline_config(),
    )
    .remove(0)
    .1;

    let widths = [3, 10, 12, 16];
    println!(
        "scanners on {day}: {} | bot report: {}\n",
        scanners.len(),
        bot_report.len()
    );
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "overlap".into(),
                "bot blocks".into(),
                "span (addrs)".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for n in [32u8, 28, 24, 20, 16] {
        let blocks = BlockSet::of(&bot_report, n);
        let overlap = scanners.iter().filter(|&ip| blocks.contains(ip)).count();
        println!(
            "{}",
            row(
                &[
                    n.to_string(),
                    overlap.to_string(),
                    blocks.len().to_string(),
                    blocks.address_span().to_string(),
                ],
                &widths
            )
        );
        rows.push(json!({
            "n": n,
            "overlap": overlap,
            "bot_blocks": blocks.len(),
            "span": blocks.address_span(),
        }));
    }
    println!("\ncoarser aggregation attributes more scanners to the botnet, at the");
    println!("price of an exploding address span — /24 is the paper's sweet spot.");

    let result = json!({
        "experiment": "ablation_aggregation",
        "rows": rows,
    });
    ctx.write_result("ablation_aggregation", &result)?;
    Ok(result)
}

/// Ablation D: how strong must the hygiene–hazard coupling be before
/// spatial uncleanliness disappears? Regenerates small scenarios with the
/// hazard exponent swept from "compromise ignores hygiene" (0) upward and
/// tests Eq. 3 on each bot report.
pub fn concentration_sweep(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation D: hygiene–hazard coupling strength ===\n");
    use unclean_detect::build_reports;
    use unclean_netmodel::{Scenario, ScenarioConfig};

    let widths = [9, 8, 10, 12, 9];
    println!(
        "{}",
        row(
            &[
                "exponent".into(),
                "|bot|".into(),
                "|C24 bot|".into(),
                "ctl med@24".into(),
                "Eq3".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for exponent in [0.0, 1.0, 2.0, 4.0] {
        let mut cfg = ScenarioConfig::at_scale(0.002, ctx.experiment_seed());
        cfg.compromise.hygiene_exponent = exponent;
        let scenario = Scenario::generate(cfg);
        let reports = build_reports(&scenario, &ctx.pipeline_config());
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 200,
            threads: ctx.threads,
            ..DensityConfig::default()
        });
        let res = analysis.run(
            &reports.bot,
            reports.control.addresses(),
            &[],
            &SeedTree::new(ctx.experiment_seed()).child("ablation-conc"),
        );
        let idx24 = res.xs.iter().position(|&x| x == 24).expect("in range");
        println!(
            "{}",
            row(
                &[
                    format!("{exponent:.1}"),
                    reports.bot.len().to_string(),
                    res.observed[idx24].to_string(),
                    format!("{:.0}", res.control_boxes[idx24].1.median),
                    res.hypothesis_holds().to_string(),
                ],
                &widths
            )
        );
        rows.push(json!({
            "exponent": exponent,
            "bot_size": reports.bot.len(),
            "observed_at_24": res.observed[idx24],
            "control_median_at_24": res.control_boxes[idx24].1.median,
            "eq3_holds": res.hypothesis_holds(),
        }));
    }
    println!("\nwith no coupling (exponent 0) compromise scatters like the control");
    println!("and Eq. 3 collapses; clustering strengthens monotonically with it.");

    let result = json!({ "experiment": "ablation_concentration", "rows": rows });
    ctx.write_result("ablation_concentration", &result)?;
    Ok(result)
}

/// Ablation E: homogeneous CIDR blocks vs network-aware clusters — the
/// partitioning choice §4.1 makes by assumption. Measures the spatial
/// signal (occupied partitions, unclean vs equal-size control draws) under
/// both partitionings and reports the cluster-population dispersion the
/// paper warns about.
pub fn clustering_comparison(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation E: fixed /24 blocks vs network-aware clusters ===\n");
    let control = ctx.reports.control.addresses();
    let clusters = NetworkClusters::build(control, &ClusterConfig::default());
    println!(
        "clusters: {} (population dispersion ×{:.0}; the paper's \"several\norders of magnitude\" objection)",
        clusters.len(),
        clusters.population_dispersion()
    );

    let mut rng = SeedTree::new(ctx.experiment_seed()).stream("ablation-clusters");
    let widths = [8, 9, 12, 12, 14, 14];
    println!(
        "\n{}",
        row(
            &[
                "report".into(),
                "size".into(),
                "/24 blocks".into(),
                "ctl /24".into(),
                "clusters".into(),
                "ctl clusters".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    let mut rows = Vec::new();
    for report in ctx.reports.unclean_reports() {
        let sample = control
            .sample(&mut rng, report.len())
            .expect("control larger");
        let blocks = report.block_counts().at(24);
        let ctl_blocks = BlockCounts::of(&sample).at(24);
        let occ = clusters.occupied_by(report.addresses());
        let ctl_occ = clusters.occupied_by(&sample);
        println!(
            "{}",
            row(
                &[
                    report.tag().into(),
                    report.len().to_string(),
                    blocks.to_string(),
                    ctl_blocks.to_string(),
                    occ.to_string(),
                    ctl_occ.to_string(),
                ],
                &widths
            )
        );
        rows.push(json!({
            "tag": report.tag(),
            "size": report.len(),
            "blocks24": blocks,
            "control_blocks24": ctl_blocks,
            "clusters": occ,
            "control_clusters": ctl_occ,
        }));
    }
    println!("\nboth partitionings show the clustering signal; fixed /24s keep the");
    println!("population-comparability assumption the clusters give up.");

    let result = json!({
        "experiment": "ablation_clustering",
        "cluster_count": clusters.len(),
        "dispersion": clusters.population_dispersion(),
        "rows": rows,
    });
    ctx.write_result("ablation_clustering", &result)?;
    Ok(result)
}

/// Ablation F: the ground-truth persistence curve — the survival function
/// `S(Δ) = P(/24 unclean at t+Δ | unclean at t)` that the temporal
/// uncleanliness hypothesis rides on, measured directly from the
/// simulation's infection history.
pub fn persistence_curve(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Ablation F: /24 uncleanliness survival ===\n");
    use unclean_netmodel::UncleanTimelines;
    let timelines = UncleanTimelines::build(&ctx.scenario.infections);
    let window = DateRange::new(Day(0), ctx.scenario.dates.unclean_window.start);
    let lags = [7u32, 14, 30, 60, 90, 150];
    let curve = timelines.survival(window, 7, &lags);
    println!("ever-unclean /24s: {}\n", timelines.len());
    println!("  Δ (days)   S(Δ)");
    println!("  --------   -----");
    for (lag, s) in &curve {
        println!("  {lag:>8}   {s:.3}");
    }
    println!("\nS(150) is the quantity §5 exploits: five months on, a meaningful");
    println!("fraction of once-unclean /24s still hold compromised hosts.");
    let result = json!({
        "experiment": "ablation_persistence",
        "ever_unclean_blocks": timelines.len(),
        "curve": curve,
    });
    ctx.write_result("ablation_persistence", &result)?;
    Ok(result)
}

/// Run all ablations.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    let a = report_aging(ctx)?;
    let b = detector_comparison(ctx)?;
    let c = aggregation_sweep(ctx)?;
    let d = concentration_sweep(ctx)?;
    let e = clustering_comparison(ctx)?;
    let f = persistence_curve(ctx)?;
    Ok(json!({
        "aging": a, "detectors": b, "aggregation": c,
        "concentration": d, "clustering": e, "persistence": f,
    }))
}
