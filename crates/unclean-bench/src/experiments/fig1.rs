//! Figure 1: the relationship between scanning and botnet population.
//!
//! Upper series: unique hosts scanning the observed network per day,
//! January–April. Lower series: how many of the reported botnet's
//! addresses were seen scanning each day — by exact address and by /24
//! block. The paper's observations: the campaign swells for about a month
//! before the report and drops after it, the bot/scan intersection peaks
//! around 35%, and the /24 view finds more scanners than the address view.

use crate::{row, rule, ExperimentSlot, RunError};
use serde_json::{json, Value};
use unclean_core::BlockSet;
use unclean_detect::{daily_scanners_with, BotMonitor};

/// Run the Figure 1 experiment.
pub fn run(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    println!("\n=== Figure 1: scanning vs botnet report ===\n");
    let scenario = &ctx.scenario;
    let dates = scenario.dates;

    let bot_report = BotMonitor::channel_snapshot(
        &scenario.infections,
        scenario.fig1_channel,
        dates.fig1_report_day,
    );
    let bot_blocks = BlockSet::of(&bot_report, 24);
    println!(
        "bot report: channel {} on {} — {} addresses, {} /24s\n",
        scenario.fig1_channel,
        dates.fig1_report_day,
        bot_report.len(),
        bot_blocks.len()
    );

    let series = daily_scanners_with(
        scenario,
        dates.fig1_span,
        false,
        &ctx.pipeline_config(),
        &ctx.attempt_registry(),
    );
    let widths = [12, 9, 10, 9];
    println!(
        "{}",
        row(
            &[
                "day".into(),
                "scanners".into(),
                "bot∩addr".into(),
                "bot∩/24".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));

    let mut days = Vec::new();
    let mut scanners = Vec::new();
    let mut addr_overlap = Vec::new();
    let mut block_overlap = Vec::new();
    for (day, set) in &series {
        let a = set.intersect(&bot_report).len();
        let b = set.iter().filter(|&ip| bot_blocks.contains(ip)).count();
        days.push(day.to_string());
        scanners.push(set.len());
        addr_overlap.push(a);
        block_overlap.push(b);
        if (day.0 - dates.fig1_span.start.0) % 7 == 0 || *day == dates.fig1_report_day {
            let marker = if *day == dates.fig1_report_day {
                "  ← report"
            } else {
                ""
            };
            println!(
                "{}{}",
                row(
                    &[
                        day.to_string(),
                        set.len().to_string(),
                        a.to_string(),
                        b.to_string()
                    ],
                    &widths
                ),
                marker
            );
        }
    }

    // Shape checks the paper's prose makes.
    let report_idx = (dates.fig1_report_day.0 - dates.fig1_span.start.0) as usize;
    let peak = *scanners.iter().max().expect("non-empty");
    let peak_idx = scanners.iter().position(|&v| v == peak).expect("present");
    let pre = scanners[..14].iter().sum::<usize>() as f64 / 14.0;
    let post: f64 = scanners[report_idx + 28..].iter().sum::<usize>() as f64
        / (scanners.len() - report_idx - 28) as f64;
    let peak_overlap_frac = addr_overlap[peak_idx] as f64 / scanners[peak_idx].max(1) as f64;
    let mean_gain: f64 = {
        let pairs: Vec<f64> = addr_overlap
            .iter()
            .zip(&block_overlap)
            .filter(|(a, _)| **a > 0)
            .map(|(a, b)| *b as f64 / *a as f64)
            .collect();
        pairs.iter().sum::<f64>() / pairs.len().max(1) as f64
    };

    println!("\nshape summary:");
    println!("  pre-campaign baseline : {pre:.0} scanners/day");
    println!("  campaign peak         : {peak} scanners/day (day index {peak_idx})");
    println!("  post-report (4w later): {post:.0} scanners/day");
    println!(
        "  bot∩scan at the peak  : {:.0}% of scanners (paper: up to 35%)",
        peak_overlap_frac * 100.0
    );
    println!("  /24-view gain         : ×{mean_gain:.2} scanners vs the address view");

    let result = json!({
        "experiment": "fig1",
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "bot_report_size": bot_report.len(),
        "bot_report_blocks24": bot_blocks.len(),
        "days": days,
        "scanners_per_day": scanners,
        "bot_overlap_addr": addr_overlap,
        "bot_overlap_block24": block_overlap,
        "report_day_index": report_idx,
        "pre_campaign_mean": pre,
        "peak": peak,
        "post_report_mean": post,
        "peak_overlap_fraction": peak_overlap_frac,
        "block_view_gain": mean_gain,
    });
    ctx.write_result("fig1", &result)?;
    Ok(result)
}
