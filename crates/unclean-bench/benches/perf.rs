//! Criterion performance benches for the hot paths every experiment
//! leans on: block counting, set algebra, sampling, prediction curves, the
//! NetFlow codec, and flow generation. These are engineering benches (the
//! paper-reproduction experiments live in `src/bin/`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unclean_core::blocks::block_count_naive;
use unclean_core::prelude::*;
use unclean_flowgen::{
    decode_datagram, encode_datagram, record::EPOCH_UNIX_SECS, Flow, FlowGenerator,
    GeneratorConfig, V5Header,
};
use unclean_netmodel::{ActivityEvent, ActivityKind, ObservedNetwork};
use unclean_stats::SeedTree;

/// A pseudo-random but clustered address set of the given size.
fn clustered_set(n: usize) -> IpSet {
    let mut raw = Vec::with_capacity(n);
    let mut x = 0x2545_f491u32;
    for i in 0..n {
        // ~8 addresses per /24, /24s clustered into /16 runs.
        x = x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u32);
        let block = (x >> 12) % (n as u32 / 8 + 1);
        let host = x % 256;
        raw.push((4u32 << 24) | (block << 8) | host);
    }
    IpSet::from_raw(raw)
}

fn bench_block_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("block_counts");
    for size in [10_000usize, 100_000, 1_000_000] {
        let set = clustered_set(size);
        g.throughput(Throughput::Elements(size as u64));
        g.bench_with_input(
            BenchmarkId::new("all_prefixes_one_pass", size),
            &set,
            |b, s| b.iter(|| BlockCounts::of(black_box(s))),
        );
    }
    // The naive (hash-set) baseline at one prefix length, for contrast.
    let set = clustered_set(100_000);
    g.bench_function("naive_hashset_at_24", |b| {
        b.iter(|| block_count_naive(black_box(&set), 24))
    });
    g.finish();
}

fn bench_ipset_algebra(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipset");
    let a = clustered_set(500_000);
    let b2 = clustered_set(400_000);
    g.throughput(Throughput::Elements(900_000));
    g.bench_function("union_500k_400k", |bch| b_iter_union(bch, &a, &b2));
    g.bench_function("intersect_500k_400k", |bch| {
        bch.iter(|| black_box(&a).intersect(black_box(&b2)))
    });
    g.bench_function("difference_500k_400k", |bch| {
        bch.iter(|| black_box(&a).difference(black_box(&b2)))
    });
    let mut rng = SeedTree::new(1).stream("bench");
    g.bench_function("sample_50k_of_500k", |bch| {
        bch.iter(|| black_box(&a).sample(&mut rng, 50_000).expect("k <= n"))
    });
    g.finish();
}

fn b_iter_union(bch: &mut criterion::Bencher<'_>, a: &IpSet, b: &IpSet) {
    bch.iter(|| black_box(a).union(black_box(b)))
}

fn bench_prediction(c: &mut Criterion) {
    let mut g = c.benchmark_group("prediction");
    let past = clustered_set(200);
    let present = clustered_set(200_000);
    g.bench_function("curve_16_32_200_vs_200k", |b| {
        b.iter(|| prediction_curve(black_box(&past), black_box(&present), PrefixRange::PAPER))
    });
    let bs_past = BlockSet::of(&past, 24);
    let bs_present = BlockSet::of(&present, 24);
    g.bench_function("blockset_intersect_at_24", |b| {
        b.iter(|| black_box(&bs_past).intersect_count(black_box(&bs_present)))
    });
    g.finish();
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("trie");
    let set = clustered_set(50_000);
    g.bench_function("build_50k", |b| {
        b.iter(|| PrefixTrie::from_set(black_box(&set)))
    });
    let trie = PrefixTrie::from_set(&set);
    g.bench_function("aggregate_50k", |b| b.iter(|| black_box(&trie).aggregate()));
    g.finish();
}

fn bench_netflow_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("netflow_v5");
    let flows: Vec<Flow> = (0..30)
        .map(|i| Flow {
            src: Ip(0x0a00_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: 40_000,
            dst_port: 80,
            proto: 6,
            packets: 10,
            octets: 900,
            flags: 0x1b,
            start_secs: 86_400 * 273 + i as i64,
            duration_secs: 5,
        })
        .collect();
    let records: Vec<_> = flows
        .iter()
        .map(|f| f.to_v5(EPOCH_UNIX_SECS + 86_400 * 270))
        .collect();
    let header = V5Header {
        count: 30,
        sys_uptime_ms: 0,
        unix_secs: EPOCH_UNIX_SECS,
        unix_nsecs: 0,
        flow_sequence: 0,
        engine_type: 0,
        engine_id: 0,
        sampling_interval: 0,
    };
    g.throughput(Throughput::Elements(30));
    g.bench_function("encode_datagram_30", |b| {
        b.iter(|| encode_datagram(black_box(&header), black_box(&records)))
    });
    let wire = encode_datagram(&header, &records);
    g.bench_function("decode_datagram_30", |b| {
        b.iter(|| decode_datagram(black_box(&wire)).expect("valid"))
    });
    g.finish();
}

fn bench_flow_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowgen");
    let observed = ObservedNetwork::paper_default();
    let generator = FlowGenerator::new(&observed, GeneratorConfig::default(), SeedTree::new(7));
    let scan = ActivityEvent {
        day: Day(273),
        src: Ip(0x0901_0203),
        kind: ActivityKind::Scan { targets: 180 },
    };
    g.throughput(Throughput::Elements(180));
    g.bench_function("expand_scan_180_targets", |b| {
        b.iter(|| {
            let mut n = 0u32;
            generator.expand(black_box(&scan), |f| n = n.wrapping_add(f.packets));
            n
        })
    });
    let spam = ActivityEvent {
        day: Day(273),
        src: Ip(0x0901_0203),
        kind: ActivityKind::Spam { messages: 35 },
    };
    g.bench_function("expand_spam_35_messages", |b| {
        b.iter(|| {
            let mut n = 0u32;
            generator.expand(black_box(&spam), |f| n = n.wrapping_add(f.octets));
            n
        })
    });
    g.finish();
}

/// A Table-3-scale scored block set (a few thousand blocks, /16../28
/// mixed), like the `C_n(bot-test)` blocklists the daemon serves.
fn table3_scale_blocks() -> Vec<(Cidr, f64)> {
    let mut blocks = Vec::with_capacity(5_000);
    let mut x = 0x1234_5678u32;
    for i in 0..5_000u32 {
        x = x.wrapping_mul(0x9e37_79b9).wrapping_add(i);
        let len = 16 + (x % 13) as u8;
        blocks.push((Cidr::of(Ip(x), len), f64::from(x % 100) / 10.0));
    }
    blocks
}

/// Pointer trie vs frozen (flattened) trie on the serving hot path:
/// longest-prefix-match lookups over a Table-3-scale block set with a
/// ~50/50 hit/miss probe mix.
fn bench_lpm(c: &mut Criterion) {
    use unclean_core::frozen::{CidrTrie, FrozenTrie};
    let blocks = table3_scale_blocks();
    let pointer = CidrTrie::from_scored(blocks.iter().copied());
    let frozen = FrozenTrie::freeze(&pointer);
    let probes: Vec<Ip> = {
        let mut probes = Vec::with_capacity(10_000);
        let mut x = 0xdead_beefu32;
        for (i, (cidr, _)) in blocks.iter().take(5_000).enumerate() {
            x = x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u32);
            // Alternate an address inside the block and a random one.
            let host_bits = !unclean_core::cidr::mask(cidr.len());
            probes.push(Ip(cidr.first().raw() | (x & host_bits)));
            probes.push(Ip(x));
        }
        probes
    };
    let mut g = c.benchmark_group("lpm");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("pointer_trie", blocks.len()),
        &probes,
        |b, probes| {
            b.iter(|| {
                let mut hits = 0usize;
                for &ip in probes.iter() {
                    hits += usize::from(pointer.lookup(black_box(ip)).is_some());
                }
                hits
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("frozen_trie", blocks.len()),
        &probes,
        |b, probes| {
            b.iter(|| {
                let mut hits = 0usize;
                for &ip in probes.iter() {
                    hits += usize::from(frozen.lookup(black_box(ip)).is_some());
                }
                hits
            })
        },
    );
    g.finish();
}

fn bench_density_trial(c: &mut Criterion) {
    let mut g = c.benchmark_group("density");
    g.sample_size(20);
    let control = clustered_set(1_000_000);
    let mut rng = SeedTree::new(2).stream("bench-density");
    g.bench_function("one_control_trial_100k", |b| {
        b.iter(|| {
            let sample = control.sample(&mut rng, 100_000).expect("k <= n");
            density_curve(&sample, PrefixRange::PAPER)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_block_counts,
    bench_ipset_algebra,
    bench_prediction,
    bench_trie,
    bench_lpm,
    bench_netflow_codec,
    bench_flow_generation,
    bench_density_trial,
);
criterion_main!(benches);
