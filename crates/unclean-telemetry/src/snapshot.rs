//! Frozen registry state: plain serde-able data with merge semantics.
//!
//! A [`Snapshot`] is what a [`Registry`](crate::Registry) looks like at a
//! point in time. Snapshots are ordinary values: they serialize into the
//! bench manifest, merge (`⊕`) so per-experiment registries roll up into
//! one run-level account, and render as a human-readable stage tree.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One nonzero log2 bucket: `count` values were `<= le` but above the
/// previous bucket's bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Inclusive upper bound of the bucket (`u64::MAX` for the top one).
    pub le: u64,
    /// Number of recorded values that landed in this bucket.
    pub count: u64,
}

/// Frozen state of one log2 histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Sparse nonzero buckets, ascending by `le`.
    pub buckets: Vec<HistBucket>,
}

impl HistogramSnapshot {
    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucketwise sum with `other`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        let mut by_le: BTreeMap<u64, u64> = self.buckets.iter().map(|b| (b.le, b.count)).collect();
        for b in &other.buckets {
            *by_le.entry(b.le).or_insert(0) += b.count;
        }
        self.buckets = by_le
            .into_iter()
            .map(|(le, count)| HistBucket { le, count })
            .collect();
    }
}

/// Aggregated statistics for one node of the stage timing tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanStat {
    /// Number of spans recorded at this path.
    pub count: u64,
    /// Total wall-clock seconds across all invocations.
    pub total_secs: f64,
    /// Shortest single invocation, in seconds.
    pub min_secs: f64,
    /// Longest single invocation, in seconds.
    pub max_secs: f64,
    /// `key=value` fields attached via [`Span::field`](crate::Span::field)
    /// (last writer wins per key).
    pub fields: BTreeMap<String, String>,
}

impl SpanStat {
    /// Mean seconds per invocation (0.0 when empty).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// A registry frozen at a point in time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Monotone event counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-value gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Log2 histograms by name (empty below `TelemetryLevel::Full`).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Stage timing tree keyed by `parent/child` path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// Whether the snapshot holds no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Merge `other` into `self` (`self ⊕= other`): counters and
    /// histogram buckets sum; span nodes add counts/totals and take
    /// min/max extremes; gauges and span fields take `other`'s value on
    /// collision (latest wins).
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (path, stat) in &other.spans {
            let agg = self.spans.entry(path.clone()).or_default();
            if agg.count == 0 {
                *agg = stat.clone();
            } else {
                agg.min_secs = agg.min_secs.min(stat.min_secs);
                agg.max_secs = agg.max_secs.max(stat.max_secs);
                agg.count += stat.count;
                agg.total_secs += stat.total_secs;
                for (k, v) in &stat.fields {
                    agg.fields.insert(k.clone(), v.clone());
                }
            }
        }
    }

    /// A copy with every series renamed under `prefix`: counters,
    /// gauges and histograms become `prefix.name`, span paths become
    /// `prefix/path`. Used to roll per-experiment registries into the
    /// run-level snapshot without colliding or double counting.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (format!("{prefix}.{k}"), v.clone()))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(k, v)| (format!("{prefix}/{k}"), v.clone()))
                .collect(),
        }
    }

    /// Total wall-clock seconds across root-level spans (paths without a
    /// `/`). The denominator for event rates in [`Snapshot::render_tree`].
    pub fn root_wall_secs(&self) -> f64 {
        self.spans
            .iter()
            .filter(|(path, _)| !path.contains('/'))
            .map(|(_, stat)| stat.total_secs)
            .sum()
    }

    /// Render a human-readable report: the stage tree (indented by path
    /// depth, with per-invocation means) followed by counters with
    /// event rates against total root wall time, gauges, and histogram
    /// summaries.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("stages\n");
            let name_width = self
                .spans
                .keys()
                .map(|p| display_width(p))
                .max()
                .unwrap_or(0);
            for (path, stat) in &self.spans {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let indent = "  ".repeat(depth + 1);
                let label = format!("{indent}{leaf}");
                let pad = name_width + 4usize.saturating_sub(label.len().min(4));
                let mut line = format!(
                    "{label:<pad$}  {total:>10.3}s  x{count:<6} mean {mean}",
                    total = stat.total_secs,
                    count = stat.count,
                    mean = fmt_secs(stat.mean_secs()),
                );
                if !stat.fields.is_empty() {
                    let fields: Vec<String> = stat
                        .fields
                        .iter()
                        .map(|(k, v)| format!("{k}={v}"))
                        .collect();
                    line.push_str(&format!("  [{}]", fields.join(" ")));
                }
                out.push_str(&line);
                out.push('\n');
            }
        }
        let wall = self.root_wall_secs();
        if !self.counters.is_empty() {
            out.push_str("counters\n");
            let width = self.counters.keys().map(String::len).max().unwrap_or(0);
            for (name, v) in &self.counters {
                if wall > 0.0 {
                    out.push_str(&format!(
                        "  {name:<width$}  {v:>12}  ({rate:.1}/s)\n",
                        rate = *v as f64 / wall
                    ));
                } else {
                    out.push_str(&format!("  {name:<width$}  {v:>12}\n"));
                }
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges\n");
            let width = self.gauges.keys().map(String::len).max().unwrap_or(0);
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<width$}  {v:>12.4}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms\n");
            let width = self.histograms.keys().map(String::len).max().unwrap_or(0);
            for (name, h) in &self.histograms {
                out.push_str(&format!(
                    "  {name:<width$}  n={count} sum={sum} mean={mean:.2}\n",
                    count = h.count,
                    sum = h.sum,
                    mean = h.mean(),
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(empty snapshot)\n");
        }
        out
    }
}

fn display_width(path: &str) -> usize {
    let depth = path.matches('/').count();
    let leaf = path.rsplit('/').next().unwrap_or(path);
    2 * (depth + 1) + leaf.len()
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.3}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(pairs: &[(u64, u64)], count: u64, sum: u64) -> HistogramSnapshot {
        HistogramSnapshot {
            count,
            sum,
            buckets: pairs
                .iter()
                .map(|&(le, count)| HistBucket { le, count })
                .collect(),
        }
    }

    #[test]
    fn merge_sums_counters_and_histogram_buckets() {
        let mut a = Snapshot::default();
        a.counters.insert("flows".into(), 10);
        a.counters.insert("only_a".into(), 1);
        a.gauges.insert("scale".into(), 0.5);
        a.histograms
            .insert("sizes".into(), hist(&[(1, 2), (3, 1)], 3, 7));

        let mut b = Snapshot::default();
        b.counters.insert("flows".into(), 5);
        b.counters.insert("only_b".into(), 2);
        b.gauges.insert("scale".into(), 2.0);
        b.histograms
            .insert("sizes".into(), hist(&[(3, 4), (7, 1)], 5, 30));

        a.merge(&b);
        assert_eq!(a.counters["flows"], 15);
        assert_eq!(a.counters["only_a"], 1);
        assert_eq!(a.counters["only_b"], 2);
        assert_eq!(a.gauges["scale"], 2.0, "gauges: latest wins");
        let merged = &a.histograms["sizes"];
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum, 37);
        assert_eq!(
            merged.buckets,
            vec![
                HistBucket { le: 1, count: 2 },
                HistBucket { le: 3, count: 5 },
                HistBucket { le: 7, count: 1 },
            ],
            "bucketwise sum keyed by le"
        );
    }

    #[test]
    fn merge_spans_takes_extremes_and_adds_totals() {
        let mut a = Snapshot::default();
        a.spans.insert(
            "run/detect".into(),
            SpanStat {
                count: 2,
                total_secs: 3.0,
                min_secs: 1.0,
                max_secs: 2.0,
                fields: BTreeMap::from([("day".to_string(), "1".to_string())]),
            },
        );
        let mut b = Snapshot::default();
        b.spans.insert(
            "run/detect".into(),
            SpanStat {
                count: 1,
                total_secs: 0.5,
                min_secs: 0.5,
                max_secs: 0.5,
                fields: BTreeMap::from([("day".to_string(), "2".to_string())]),
            },
        );
        b.spans.insert(
            "run/score".into(),
            SpanStat {
                count: 1,
                total_secs: 4.0,
                min_secs: 4.0,
                max_secs: 4.0,
                fields: BTreeMap::new(),
            },
        );
        a.merge(&b);
        let detect = &a.spans["run/detect"];
        assert_eq!(detect.count, 3);
        assert_eq!(detect.total_secs, 3.5);
        assert_eq!(detect.min_secs, 0.5);
        assert_eq!(detect.max_secs, 2.0);
        assert_eq!(detect.fields["day"], "2");
        assert_eq!(a.spans["run/score"].count, 1, "new paths copied over");
    }

    #[test]
    fn merge_identity_and_double() {
        let mut a = Snapshot::default();
        a.counters.insert("x".into(), 7);
        let orig = a.clone();
        a.merge(&Snapshot::default());
        assert_eq!(a, orig, "empty is the merge identity");
        let mut doubled = orig.clone();
        doubled.merge(&orig);
        assert_eq!(doubled.counters["x"], 14);
    }

    #[test]
    fn prefixed_renames_every_family() {
        let mut s = Snapshot::default();
        s.counters.insert("flows".into(), 3);
        s.gauges.insert("scale".into(), 1.5);
        s.histograms.insert("sizes".into(), hist(&[(1, 1)], 1, 1));
        s.spans.insert("detect".into(), SpanStat::default());
        let p = s.prefixed("table1");
        assert_eq!(p.counters["table1.flows"], 3);
        assert_eq!(p.gauges["table1.scale"], 1.5);
        assert!(p.histograms.contains_key("table1.sizes"));
        assert!(p.spans.contains_key("table1/detect"));
        assert!(p.counters.len() == 1 && !p.counters.contains_key("flows"));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut s = Snapshot::default();
        s.counters.insert("flows".into(), 42);
        s.gauges.insert("scale".into(), 0.25);
        s.histograms
            .insert("sizes".into(), hist(&[(1, 1), (u64::MAX, 2)], 3, 9));
        s.spans.insert(
            "run/detect".into(),
            SpanStat {
                count: 2,
                total_secs: 1.25,
                min_secs: 0.25,
                max_secs: 1.0,
                fields: BTreeMap::from([("day".to_string(), "7".to_string())]),
            },
        );
        let text = serde_json::to_string(&s).expect("serialize");
        let back: Snapshot = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, s);
    }

    #[test]
    fn render_tree_lists_stages_and_rates() {
        let mut s = Snapshot::default();
        s.spans.insert(
            "run".into(),
            SpanStat {
                count: 1,
                total_secs: 2.0,
                min_secs: 2.0,
                max_secs: 2.0,
                fields: BTreeMap::new(),
            },
        );
        s.spans.insert(
            "run/detect".into(),
            SpanStat {
                count: 4,
                total_secs: 1.0,
                min_secs: 0.1,
                max_secs: 0.5,
                fields: BTreeMap::from([("days".to_string(), "4".to_string())]),
            },
        );
        s.counters.insert("flows".into(), 100);
        let text = s.render_tree();
        assert!(text.contains("stages"), "has a stages section:\n{text}");
        assert!(text.contains("detect"), "child stage listed:\n{text}");
        assert!(text.contains("[days=4]"), "fields shown:\n{text}");
        assert!(
            text.contains("(50.0/s)"),
            "rate = 100 events / 2s root wall:\n{text}"
        );
        assert_eq!(Snapshot::default().render_tree(), "(empty snapshot)\n");
    }
}
