//! Prometheus text exposition: render a [`Snapshot`] to the classic
//! `text/plain; version=0.0.4` format, and parse/validate such text back
//! into samples.
//!
//! The parser exists so the bench runner's `results/metrics.prom` output
//! is validated by machine rather than by eye: CI renders, re-parses, and
//! checks counter values round-trip exactly (counters are written as
//! integers, so no f64 precision is lost up to `u64::MAX`).

use crate::snapshot::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Map an internal series name (dots, slashes, dashes) onto the
/// Prometheus metric-name charset `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if ok {
            if i == 0 && ch.is_ascii_digit() {
                out.push('_');
            }
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render the standard process-identity block both daemons append to
/// their `/metrics` exposition: a `{ns}_build_info` gauge whose
/// `version`/`git_sha` labels identify the running build (value always
/// 1, the conventional info-metric shape) and the conventional
/// `process_start_time_seconds` gauge (Unix seconds, fractional).
pub fn build_info(ns: &str, version: &str, git_sha: &str, start_unix_secs: f64) -> String {
    let ns = sanitize(ns);
    let mut out = String::new();
    let _ = writeln!(out, "# HELP {ns}_build_info Build identity of this binary.");
    let _ = writeln!(out, "# TYPE {ns}_build_info gauge");
    let _ = writeln!(
        out,
        "{ns}_build_info{{version=\"{}\",git_sha=\"{}\"}} 1",
        escape_label(version),
        escape_label(git_sha)
    );
    let _ = writeln!(
        out,
        "# HELP process_start_time_seconds Unix time the process started."
    );
    let _ = writeln!(out, "# TYPE process_start_time_seconds gauge");
    let _ = writeln!(out, "process_start_time_seconds {start_unix_secs}");
    out
}

/// Render a snapshot as Prometheus text exposition. Every metric name is
/// prefixed with `{ns}_`; internal series names are sanitized into the
/// metric-name charset. Counters render as integers; histograms render
/// with cumulative `_bucket{le=...}` plus `_sum`/`_count`; span stats
/// render as `{ns}_stage_duration_seconds{stage="path"}` totals and
/// `{ns}_stage_invocations{stage="path"}` counts.
pub fn render(snap: &Snapshot, ns: &str) -> String {
    let ns = sanitize(ns);
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Event counter `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric} {v}");
    }
    for (name, v) in &snap.gauges {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        let _ = writeln!(out, "{metric} {v}");
    }
    for (name, hist) in &snap.histograms {
        let metric = format!("{ns}_{}", sanitize(name));
        let _ = writeln!(out, "# HELP {metric} Log2 histogram `{name}`.");
        let _ = writeln!(out, "# TYPE {metric} histogram");
        let mut cumulative = 0u64;
        for bucket in &hist.buckets {
            cumulative += bucket.count;
            if bucket.le == u64::MAX {
                continue; // folded into the +Inf bucket below
            }
            let _ = writeln!(
                out,
                "{metric}_bucket{{le=\"{le}\"}} {cumulative}",
                le = bucket.le
            );
        }
        let _ = writeln!(out, "{metric}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{metric}_sum {}", hist.sum);
        let _ = writeln!(out, "{metric}_count {}", hist.count);
    }
    if !snap.spans.is_empty() {
        let duration = format!("{ns}_stage_duration_seconds");
        let _ = writeln!(
            out,
            "# HELP {duration} Total wall-clock seconds per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE {duration} counter");
        for (path, stat) in &snap.spans {
            let _ = writeln!(
                out,
                "{duration}{{stage=\"{}\"}} {}",
                escape_label(path),
                stat.total_secs
            );
        }
        let invocations = format!("{ns}_stage_invocations");
        let _ = writeln!(
            out,
            "# HELP {invocations} Number of recorded spans per pipeline stage."
        );
        let _ = writeln!(out, "# TYPE {invocations} counter");
        for (path, stat) in &snap.spans {
            let _ = writeln!(
                out,
                "{invocations}{{stage=\"{}\"}} {}",
                escape_label(path),
                stat.count
            );
        }
    }
    out
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
    /// The unparsed value text (exact for integer counters).
    pub raw_value: String,
}

/// A parsed exposition: samples plus declared metric types.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    /// All sample lines, in source order.
    pub samples: Vec<Sample>,
    /// `# TYPE` declarations by metric name.
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// The first sample named `name` (any labels).
    pub fn find(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// The exact integer value of an unlabelled counter sample, if its
    /// raw text parses as `u64`.
    pub fn counter_u64(&self, name: &str) -> Option<u64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .and_then(|s| s.raw_value.parse().ok())
    }

    /// The value of the sample with `name` and exactly one label
    /// `key=value`.
    pub fn labelled(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == 1
                    && s.labels[0].0 == key
                    && s.labels[0].1 == value
            })
            .map(|s| s.value)
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse()
            .map_err(|_| format!("invalid sample value {other:?}")),
    }
}

/// Parse label text of the form `key="value",key2="value2"` (the part
/// between `{` and `}`), honouring `\\`, `\"` and `\n` escapes.
fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {text:?}"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_label_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("label value not quoted in {text:?}")),
        }
        let mut value = String::new();
        let mut end = None;
        let mut escaped = false;
        for (i, ch) in chars {
            if escaped {
                match ch {
                    '\\' => value.push('\\'),
                    '"' => value.push('"'),
                    'n' => value.push('\n'),
                    other => return Err(format!("bad escape '\\{other}' in {text:?}")),
                }
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                end = Some(i);
                break;
            } else {
                value.push(ch);
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {text:?}"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
            if rest.is_empty() {
                return Err(format!("trailing comma in labels {text:?}"));
            }
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in {text:?}"));
        }
    }
    Ok(labels)
}

/// Parse and validate Prometheus text exposition. Returns an error (with
/// a line number) on malformed comments, metric names outside the legal
/// charset, bad label syntax, or unparsable values.
pub fn parse(text: &str) -> Result<Exposition, String> {
    let mut exposition = Exposition::default();
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(decl) = comment.strip_prefix("TYPE ") {
                let mut parts = decl.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: invalid metric name {name:?}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {lineno}: unknown metric type {kind:?}"));
                }
                exposition.types.insert(name.to_string(), kind.to_string());
            } else if !comment.starts_with("HELP ") && !comment.is_empty() {
                // Bare comments are legal; nothing to validate.
            }
            continue;
        }
        let (name_part, labels, value_part) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {lineno}: '{{' without '}}'"))?;
                if close < open {
                    return Err(format!("line {lineno}: '}}' before '{{'"));
                }
                (
                    &line[..open],
                    parse_labels(&line[open + 1..close])
                        .map_err(|e| format!("line {lineno}: {e}"))?,
                    line[close + 1..].trim(),
                )
            }
            None => {
                let mut parts = line.splitn(2, char::is_whitespace);
                let name = parts.next().unwrap_or("");
                let rest = parts.next().unwrap_or("").trim();
                (name, Vec::new(), rest)
            }
        };
        let name = name_part.trim();
        if !valid_metric_name(name) {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        // An optional trailing timestamp (integer milliseconds) is legal.
        let mut value_fields = value_part.split_whitespace();
        let value_text = value_fields
            .next()
            .ok_or_else(|| format!("line {lineno}: sample without a value"))?;
        if let Some(ts) = value_fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {lineno}: invalid timestamp {ts:?}"))?;
        }
        if value_fields.next().is_some() {
            return Err(format!("line {lineno}: trailing junk after value"));
        }
        let value = parse_value(value_text).map_err(|e| format!("line {lineno}: {e}"))?;
        exposition.samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
            raw_value: value_text.to_string(),
        });
    }
    Ok(exposition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistBucket, HistogramSnapshot, SpanStat};
    use proptest::prelude::*;

    #[test]
    fn sanitize_maps_into_legal_charset() {
        assert_eq!(
            sanitize("flowgen.flows_generated"),
            "flowgen_flows_generated"
        );
        assert_eq!(sanitize("table-1/run stage"), "table_1_run_stage");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert!(valid_metric_name(&sanitize("9lives")));
        assert_eq!(sanitize(""), "_");
    }

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::default();
        s.counters.insert("flowgen.flows_generated".into(), 1234);
        s.counters.insert("store.flows_dropped".into(), 0);
        s.gauges.insert("bench.scale".into(), 0.002);
        s.histograms.insert(
            "core.block_sizes".into(),
            HistogramSnapshot {
                count: 4,
                sum: 19,
                buckets: vec![
                    HistBucket { le: 1, count: 1 },
                    HistBucket { le: 7, count: 2 },
                    HistBucket {
                        le: u64::MAX,
                        count: 1,
                    },
                ],
            },
        );
        s.spans.insert(
            "pipeline/detect".into(),
            SpanStat {
                count: 3,
                total_secs: 0.75,
                min_secs: 0.1,
                max_secs: 0.5,
                fields: Default::default(),
            },
        );
        s
    }

    #[test]
    fn render_output_parses_and_is_typed() {
        let text = render(&sample_snapshot(), "unclean");
        let exp = parse(&text).expect("render output must parse");
        assert_eq!(
            exp.counter_u64("unclean_flowgen_flows_generated"),
            Some(1234)
        );
        assert_eq!(exp.counter_u64("unclean_store_flows_dropped"), Some(0));
        assert_eq!(
            exp.types["unclean_flowgen_flows_generated"], "counter",
            "counters declare their type"
        );
        assert_eq!(exp.types["unclean_bench_scale"], "gauge");
        assert_eq!(exp.types["unclean_core_block_sizes"], "histogram");
        assert_eq!(
            exp.labelled("unclean_stage_duration_seconds", "stage", "pipeline/detect"),
            Some(0.75)
        );
        assert_eq!(
            exp.labelled("unclean_stage_invocations", "stage", "pipeline/detect"),
            Some(3.0)
        );
    }

    #[test]
    fn histogram_buckets_render_cumulative_with_inf() {
        let text = render(&sample_snapshot(), "unclean");
        let exp = parse(&text).expect("parse");
        let hist = "unclean_core_block_sizes";
        assert_eq!(
            exp.labelled(&format!("{hist}_bucket"), "le", "1"),
            Some(1.0)
        );
        assert_eq!(
            exp.labelled(&format!("{hist}_bucket"), "le", "7"),
            Some(3.0),
            "cumulative across buckets"
        );
        assert_eq!(
            exp.labelled(&format!("{hist}_bucket"), "le", "+Inf"),
            Some(4.0),
            "+Inf bucket equals total count"
        );
        assert_eq!(exp.counter_u64(&format!("{hist}_sum")), Some(19));
        assert_eq!(exp.counter_u64(&format!("{hist}_count")), Some(4));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse("9bad_name 1").is_err(), "digit-leading name");
        assert!(parse("ok{le=\"1\" 3").is_err(), "unterminated labels");
        assert!(parse("ok{le=1} 3").is_err(), "unquoted label value");
        assert!(parse("ok notanumber").is_err(), "bad value");
        assert!(parse("ok 1 2 3").is_err(), "trailing junk");
        assert!(parse("# TYPE ok sideways").is_err(), "unknown type");
        assert!(parse("ok 1 1700000000000\n# random comment\nok2 2").is_ok());
    }

    #[test]
    fn label_escapes_round_trip() {
        let text = "m{path=\"a\\\\b \\\"q\\\" \\n\"} 1\n";
        let exp = parse(text).expect("escaped labels parse");
        assert_eq!(exp.samples[0].labels[0].1, "a\\b \"q\" \n");
        // And our renderer produces escapes the parser understands.
        let rendered = format!("m{{path=\"{}\"}} 1\n", escape_label("a\\b \"q\" \n"));
        let back = parse(&rendered).expect("rendered escapes parse");
        assert_eq!(back.samples[0].labels[0].1, "a\\b \"q\" \n");
    }

    proptest! {
        #[test]
        fn counter_values_round_trip_through_text(
            values in proptest::collection::vec(any::<u64>(), 1..20),
        ) {
            let mut snap = Snapshot::default();
            for (i, v) in values.iter().enumerate() {
                snap.counters.insert(format!("series_{i}.events"), *v);
            }
            let text = render(&snap, "unclean");
            let exp = parse(&text).expect("rendered text parses");
            for (i, v) in values.iter().enumerate() {
                prop_assert_eq!(
                    exp.counter_u64(&format!("unclean_series_{}_events", i)),
                    Some(*v)
                );
            }
        }
    }
}
