//! The registry and its instrument handles.
//!
//! A [`Registry`] is a cheaply-cloneable handle onto shared instrument
//! storage (an `Arc` internally); a *disabled* registry holds nothing and
//! hands out no-op instruments. Instruments are resolved by name once
//! (one mutex acquisition) and then recorded through lock-free atomics,
//! so hot paths cache the handle and pay a relaxed `fetch_add` per event.

use crate::snapshot::{HistBucket, HistogramSnapshot, Snapshot, SpanStat};
use crate::TelemetryLevel;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 buckets: index 0 holds zero, index `k` (1..=64) holds
/// values `v` with `2^(k-1) <= v < 2^k`.
pub(crate) const BUCKETS: usize = 65;

/// Bucket index for a recorded value.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `idx` (`u64::MAX` for the top bucket).
pub(crate) fn bucket_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    fields: BTreeMap<String, String>,
}

#[derive(Debug, Default)]
struct Inner {
    level_full: bool,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>, // f64 bit patterns
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    trace: Mutex<Option<Arc<crate::trace::TraceRing>>>,
}

/// An explicitly-threaded metrics registry. Clone freely — clones share
/// storage. A registry built at [`TelemetryLevel::Off`] records nothing.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
    level: TelemetryLevel,
}

impl Registry {
    /// A registry recording at the given level.
    pub fn new(level: TelemetryLevel) -> Registry {
        match level {
            TelemetryLevel::Off => Registry::off(),
            _ => Registry {
                inner: Some(Arc::new(Inner {
                    level_full: level == TelemetryLevel::Full,
                    ..Inner::default()
                })),
                level,
            },
        }
    }

    /// A disabled registry: every instrument it hands out is a no-op.
    pub fn off() -> Registry {
        Registry {
            inner: None,
            level: TelemetryLevel::Off,
        }
    }

    /// Shorthand for `Registry::new(TelemetryLevel::Full)`.
    pub fn full() -> Registry {
        Registry::new(TelemetryLevel::Full)
    }

    /// The recording level.
    pub fn level(&self) -> TelemetryLevel {
        self.level
    }

    /// Whether anything is recorded at all.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The counter named `name`, creating it (at zero) if absent.
    /// Declaring a counter makes it appear in snapshots even when never
    /// incremented — deliberate, so "this never happened" is visible.
    pub fn counter(&self, name: &str) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::disabled();
        };
        let mut counters = inner.counters.lock().expect("counter map");
        let cell = counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// The counter named `name`, or a private standalone cell when this
    /// registry is disabled — for components that must keep their own
    /// accounting (e.g. the archive reader's loss counters) regardless of
    /// whether a registry is listening.
    pub fn counter_or_standalone(&self, name: &str) -> Counter {
        if self.enabled() {
            self.counter(name)
        } else {
            Counter::standalone()
        }
    }

    /// Install a bounded trace-event ring of at least `capacity` events
    /// (see [`crate::trace::TraceRing`]) on this registry, replacing any
    /// previous ring. Its exact recorded/evicted totals mirror onto the
    /// `trace.events_recorded` / `trace.events_dropped` counters so the
    /// exposition and CI `--assert-zero` gates see them. Returns `None`
    /// on a disabled registry.
    pub fn install_trace(&self, capacity: usize) -> Option<Arc<crate::trace::TraceRing>> {
        let inner = self.inner.as_ref()?;
        let ring = Arc::new(crate::trace::TraceRing::new(
            capacity,
            self.counter("trace.events_recorded"),
            self.counter("trace.events_dropped"),
        ));
        *inner.trace.lock().expect("trace ring slot") = Some(Arc::clone(&ring));
        Some(ring)
    }

    /// The installed trace-event ring, if any.
    pub fn trace(&self) -> Option<Arc<crate::trace::TraceRing>> {
        let inner = self.inner.as_ref()?;
        inner.trace.lock().expect("trace ring slot").clone()
    }

    /// Record a trace event onto the installed ring; a no-op when no
    /// ring is installed (so pipeline stages can emit unconditionally).
    /// Hot paths should cache [`Registry::trace`] instead of paying this
    /// lookup per event.
    pub fn trace_event(&self, event: crate::trace::TraceEvent) {
        if let Some(ring) = self.trace() {
            ring.record(event);
        }
    }

    /// The gauge named `name`, creating it (at zero) if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge { cell: None };
        };
        let mut gauges = inner.gauges.lock().expect("gauge map");
        let cell = gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge {
            cell: Some(Arc::clone(cell)),
        }
    }

    /// The log2 histogram named `name`. A no-op below
    /// [`TelemetryLevel::Full`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let Some(inner) = &self.inner else {
            return Histogram { core: None };
        };
        if !inner.level_full {
            return Histogram { core: None };
        }
        let mut histograms = inner.histograms.lock().expect("histogram map");
        let core = histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::default()));
        Histogram {
            core: Some(Arc::clone(core)),
        }
    }

    /// Open a root-level stage span. Dropping the span records its
    /// wall-clock duration under `name` in the stage tree.
    pub fn span(&self, name: impl Into<String>) -> Span {
        Span {
            inner: self.inner.clone(),
            path: name.into(),
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// The current value of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        inner
            .counters
            .lock()
            .expect("counter map")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// The current value of a gauge (0.0 when absent or disabled) — the
    /// counterpart of [`Registry::counter_value`] for watchdog-style
    /// gauges such as the serving generation's age.
    pub fn gauge_value(&self, name: &str) -> f64 {
        let Some(inner) = &self.inner else { return 0.0 };
        inner
            .gauges
            .lock()
            .expect("gauge map")
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }

    /// Freeze the registry into a serde-able [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("counter map")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("gauge map")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .expect("histogram map")
            .iter()
            .map(|(k, core)| {
                let buckets = core
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let count = b.load(Ordering::Relaxed);
                        (count > 0).then(|| HistBucket {
                            le: bucket_bound(i),
                            count,
                        })
                    })
                    .collect();
                (
                    k.clone(),
                    HistogramSnapshot {
                        count: core.count.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                        buckets,
                    },
                )
            })
            .collect();
        let spans = inner
            .spans
            .lock()
            .expect("span tree")
            .iter()
            .map(|(path, agg)| {
                (
                    path.clone(),
                    SpanStat {
                        count: agg.count,
                        total_secs: agg.total_ns as f64 / 1e9,
                        min_secs: agg.min_ns as f64 / 1e9,
                        max_secs: agg.max_ns as f64 / 1e9,
                        fields: agg.fields.clone(),
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        }
    }
}

/// A monotone event counter. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op counter (what disabled registries hand out, and the
    /// `Default`).
    pub fn disabled() -> Counter {
        Counter { cell: None }
    }

    /// A live counter not attached to any registry — private accounting
    /// for components that must count regardless of telemetry level.
    pub fn standalone() -> Counter {
        Counter {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A last-value gauge holding an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map(|c| f64::from_bits(c.load(Ordering::Relaxed)))
            .unwrap_or(0.0)
    }
}

/// A log2-bucketed histogram of `u64` values.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// Record one value.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.core {
            core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// An RAII stage timer. Created from [`Registry::span`] (a root stage) or
/// [`Span::child`] (a nested stage, joined with `/` in the tree). The
/// wall-clock duration is recorded when the span drops; spans with the
/// same path — sequential or parallel — aggregate into one tree node.
#[derive(Debug)]
pub struct Span {
    inner: Option<Arc<Inner>>,
    path: String,
    start: Instant,
    fields: Vec<(String, String)>,
}

impl Span {
    /// Open a child span: its path is `parent/name`.
    pub fn child(&self, name: &str) -> Span {
        Span {
            inner: self.inner.clone(),
            path: format!("{}/{}", self.path, name),
            start: Instant::now(),
            fields: Vec::new(),
        }
    }

    /// Attach a `key=value` field, recorded on the tree node at drop
    /// (last writer wins per key).
    pub fn field(&mut self, key: &str, value: impl std::fmt::Display) {
        if self.inner.is_some() {
            self.fields.push((key.to_string(), value.to_string()));
        }
    }

    /// The span's path in the stage tree.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = &self.inner else { return };
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut spans = inner.spans.lock().expect("span tree");
        let agg = spans.entry(std::mem::take(&mut self.path)).or_default();
        if agg.count == 0 {
            agg.min_ns = elapsed_ns;
            agg.max_ns = elapsed_ns;
        } else {
            agg.min_ns = agg.min_ns.min(elapsed_ns);
            agg.max_ns = agg.max_ns.max(elapsed_ns);
        }
        agg.count += 1;
        agg.total_ns = agg.total_ns.saturating_add(elapsed_ns);
        for (k, v) in self.fields.drain(..) {
            agg.fields.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new(TelemetryLevel::Summary);
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("x"), 3);
        assert_eq!(r.counter_value("missing"), 0);
    }

    #[test]
    fn declared_counter_appears_at_zero() {
        let r = Registry::new(TelemetryLevel::Summary);
        let _ = r.counter("never.incremented");
        assert_eq!(r.snapshot().counters["never.incremented"], 0);
    }

    #[test]
    fn disabled_registry_is_a_noop() {
        let r = Registry::off();
        assert!(!r.enabled());
        let c = r.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        r.gauge("g").set(1.0);
        r.histogram("h").record(7);
        drop(r.span("s"));
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn standalone_counter_counts_without_a_registry() {
        let c = Counter::standalone();
        c.add(4);
        assert_eq!(c.get(), 4);
        let r = Registry::off();
        let via = r.counter_or_standalone("x");
        via.inc();
        assert_eq!(via.get(), 1, "falls back to a live private cell");
        let live = Registry::new(TelemetryLevel::Summary);
        let bound = live.counter_or_standalone("x");
        bound.inc();
        assert_eq!(live.counter_value("x"), 1, "binds to the registry");
    }

    #[test]
    fn histograms_gated_to_full() {
        let summary = Registry::new(TelemetryLevel::Summary);
        summary.histogram("h").record(9);
        assert!(summary.snapshot().histograms.is_empty());

        let full = Registry::full();
        let h = full.histogram("h");
        h.record(0);
        h.record(1);
        h.record(9);
        let snap = full.snapshot();
        let hs = &snap.histograms["h"];
        assert_eq!(hs.count, 3);
        assert_eq!(hs.sum, 10);
    }

    #[test]
    fn bucket_boundaries_are_exact_log2() {
        // Bucket 0: zero. Bucket k: [2^(k-1), 2^k).
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        for k in 1..=63usize {
            let lo = 1u64 << (k - 1);
            let hi = (1u64 << k) - 1;
            assert_eq!(bucket_index(lo), k, "low edge of bucket {k}");
            assert_eq!(bucket_index(hi), k, "high edge of bucket {k}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        // Bounds are the inclusive top of each bucket.
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 5, 1023, 1024, 1025, u64::MAX - 1] {
            assert!(v <= bucket_bound(bucket_index(v)), "v={v} within bound");
            if bucket_index(v) > 0 {
                assert!(
                    v > bucket_bound(bucket_index(v) - 1),
                    "v={v} above previous bound"
                );
            }
        }
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let r = Registry::new(TelemetryLevel::Summary);
        {
            let outer = r.span("pipeline");
            {
                let mut inner = outer.child("detect");
                inner.field("day", 273);
            }
            let _second = outer.child("detect");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["pipeline"].count, 1);
        let detect = &snap.spans["pipeline/detect"];
        assert_eq!(detect.count, 2, "same-path spans aggregate");
        assert_eq!(detect.fields["day"], "273");
        assert!(snap.spans["pipeline"].total_secs >= detect.min_secs);
    }

    #[test]
    fn parallel_spans_aggregate_into_one_node() {
        let r = Registry::new(TelemetryLevel::Summary);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let _span = r.span("worker");
                    r.counter("work").inc();
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker thread");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["worker"].count, 8);
        assert_eq!(snap.counters["work"], 8);
        assert!(snap.spans["worker"].min_secs <= snap.spans["worker"].max_secs);
    }
}
