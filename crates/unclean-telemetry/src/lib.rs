//! # unclean-telemetry
//!
//! The observability substrate of the uncleanliness workspace: a
//! zero-heavy-dependency, **global-free** metrics layer that every other
//! crate threads explicitly. Nothing here touches process-wide state —
//! a [`Registry`] is a value you construct, hand to the stages you want
//! measured, and snapshot when you are done. Code that is handed a
//! disabled registry pays one branch per recording and allocates nothing.
//!
//! Three instrument families:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic cells for monotone event
//!   counts (flows generated, records dropped) and last-value readings;
//! * [`Histogram`] — log2-bucketed value distributions (flow sizes,
//!   per-trial block counts), mergeable bucket-by-bucket;
//! * [`Span`] — RAII wall-time timers that aggregate into a per-stage
//!   timing *tree* keyed by `parent/child` paths, with optional
//!   `key=value` fields.
//!
//! A [`Snapshot`] freezes a registry into plain serde-able data.
//! Snapshots merge (`⊕`) so per-experiment registries roll up into one
//! run-level account, and they export to Prometheus text exposition
//! format ([`prom::render`]) whose output [`prom::parse`] validates and
//! round-trips.
//!
//! ```
//! use unclean_telemetry::{Registry, TelemetryLevel};
//!
//! let registry = Registry::new(TelemetryLevel::Full);
//! let flows = registry.counter("flowgen.flows_generated");
//! {
//!     let _span = registry.span("generate");
//!     flows.add(42);
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["flowgen.flows_generated"], 42);
//! assert!(snap.spans["generate"].total_secs >= 0.0);
//! let text = unclean_telemetry::prom::render(&snap, "unclean");
//! unclean_telemetry::prom::parse(&text).expect("valid exposition");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry, Span};
pub use snapshot::{HistBucket, HistogramSnapshot, Snapshot, SpanStat};
pub use trace::{
    chrome_trace_json, HistorySample, MetricsHistory, TraceEvent, TraceKind, TraceRing,
};

/// How much the pipeline records.
///
/// * `Off` — every instrument is a no-op; snapshots are empty.
/// * `Summary` — counters, gauges and spans; histograms disabled. This is
///   the production default: overhead is a relaxed atomic add per event.
/// * `Full` — everything, including histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TelemetryLevel {
    /// Record nothing.
    Off,
    /// Counters, gauges and stage spans (the default).
    #[default]
    Summary,
    /// Everything, including log2 histograms.
    Full,
}

impl std::fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Summary => "summary",
            TelemetryLevel::Full => "full",
        })
    }
}

impl std::str::FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<TelemetryLevel, String> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "summary" => Ok(TelemetryLevel::Summary),
            "full" => Ok(TelemetryLevel::Full),
            other => Err(format!(
                "unknown telemetry level {other:?} (expected off|summary|full)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_and_displays() {
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Summary,
            TelemetryLevel::Full,
        ] {
            assert_eq!(level.to_string().parse::<TelemetryLevel>(), Ok(level));
        }
        assert!("verbose".parse::<TelemetryLevel>().is_err());
        assert!(TelemetryLevel::Summary < TelemetryLevel::Full);
        assert_eq!(TelemetryLevel::default(), TelemetryLevel::Summary);
    }
}
