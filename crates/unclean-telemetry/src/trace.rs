//! Structured trace events and the bounded flight-recorder rings.
//!
//! Two complementary recorders live here:
//!
//! * [`TraceRing`] — a bounded, mutex-sharded ring of typed
//!   [`TraceEvent`]s carrying causal identifiers (flow sequence ranges
//!   and blocklist generation numbers). Producers append lock-cheaply
//!   (one shard mutex per event); when a shard is full the oldest event
//!   is evicted and the eviction is counted *exactly* — both on the
//!   ring's own atomic and on a registry counter so `/metrics` and CI
//!   `--assert-zero` gates see the same number.
//! * [`MetricsHistory`] — a ring of periodic snapshot deltas (counter
//!   rates per second plus raw gauges), fed by a daemon scraper thread
//!   and served as `/metrics/history` for `unclean top`.
//!
//! [`chrome_trace_json`] renders a snapshot's span aggregates plus the
//! event ring as Chrome/Perfetto trace-event JSON (`chrome://tracing`,
//! <https://ui.perfetto.dev>).

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use crate::registry::Counter;
use crate::snapshot::Snapshot;

/// What a trace event marks. The pipeline stages appear in causal
/// order: a served lookup's lineage walks backwards
/// `Lookup → Reload → Publish → Rescore → WalSeal → IngestBatch`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceKind {
    /// A batch of datagrams popped from the ingest ring.
    IngestBatch,
    /// A WAL segment sealed durably to the spool.
    WalSeal,
    /// A rescore sweep over the sealed window.
    Rescore,
    /// A blocklist generation published atomically.
    Publish,
    /// A serving snapshot (re)built from a published blocklist.
    Reload,
    /// A sampled request served (stage nanos in `fields`).
    Lookup,
    /// A forecast model fit over an archive or scenario window.
    ForecastFit,
    /// A forecast artifact published atomically.
    ForecastPublish,
    /// Anything else (free-form marker).
    Mark,
}

impl TraceKind {
    /// Stable lowercase name (also the serde encoding).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::IngestBatch => "ingest_batch",
            TraceKind::WalSeal => "wal_seal",
            TraceKind::Rescore => "rescore",
            TraceKind::Publish => "publish",
            TraceKind::Reload => "reload",
            TraceKind::Lookup => "lookup",
            TraceKind::ForecastFit => "forecast_fit",
            TraceKind::ForecastPublish => "forecast_publish",
            TraceKind::Mark => "mark",
        }
    }
}

/// One typed event. `seq` is assigned by the ring at record time and
/// totally orders events across shards. The optional causal ids tie
/// stages together: `first_seq..end_seq` is the flow-sequence range an
/// event covers (batches, seals, publishes), `generation` is the
/// blocklist generation an event produced or served, and
/// `source_generation` is the upstream ingest generation parsed from a
/// published blocklist header (serve-side events only).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global record order, assigned by the ring.
    #[serde(default)]
    pub seq: u64,
    /// Wall-clock timestamp (Unix milliseconds).
    pub unix_ms: u64,
    /// Which pipeline stage this event marks.
    pub kind: TraceKind,
    /// Duration in nanoseconds; 0 renders as an instant event.
    #[serde(default)]
    pub duration_ns: u64,
    /// Blocklist generation this event produced or served.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub generation: Option<u64>,
    /// Upstream ingest generation (serve-side events only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub source_generation: Option<u64>,
    /// First flow sequence number this event covers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub first_seq: Option<u64>,
    /// Flow sequence number the covered range ends at (exclusive,
    /// matching the WAL's `end_seq` convention).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub end_seq: Option<u64>,
    /// Free-form `key=value` annotations.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    /// A fresh event stamped with the current wall clock.
    pub fn now(kind: TraceKind) -> TraceEvent {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        TraceEvent {
            seq: 0,
            unix_ms,
            kind,
            duration_ns: 0,
            generation: None,
            source_generation: None,
            first_seq: None,
            end_seq: None,
            fields: Vec::new(),
        }
    }

    /// Builder: set the duration.
    pub fn dur_ns(mut self, ns: u64) -> TraceEvent {
        self.duration_ns = ns;
        self
    }

    /// Builder: set the blocklist generation this event produced/served.
    pub fn generation(mut self, generation: u64) -> TraceEvent {
        self.generation = Some(generation);
        self
    }

    /// Builder: set the upstream (ingest) generation.
    pub fn source_generation(mut self, generation: u64) -> TraceEvent {
        self.source_generation = Some(generation);
        self
    }

    /// Builder: set the flow-sequence range this event covers.
    pub fn seq_range(mut self, first_seq: u64, end_seq: u64) -> TraceEvent {
        self.first_seq = Some(first_seq);
        self.end_seq = Some(end_seq);
        self
    }

    /// Builder: attach a free-form field.
    pub fn field(mut self, key: &str, value: impl ToString) -> TraceEvent {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }
}

const TRACE_SHARDS: usize = 8;

/// Bounded, mutex-sharded ring of [`TraceEvent`]s.
///
/// Events are distributed round-robin over [`TRACE_SHARDS`] shards by
/// their global sequence number, so concurrent producers contend on
/// 1/8th of a mutex each. Total capacity is rounded up to a multiple of
/// the shard count. When a shard is full its oldest event is evicted;
/// evictions are counted exactly on both the ring's own atomic and the
/// registry counters handed in at construction.
pub struct TraceRing {
    shards: Vec<Mutex<VecDeque<TraceEvent>>>,
    shard_cap: usize,
    next_seq: AtomicU64,
    recorded_total: AtomicU64,
    dropped_total: AtomicU64,
    recorded_counter: Counter,
    dropped_counter: Counter,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRing {
    /// A ring holding at least `capacity` events (rounded up to a
    /// multiple of the shard count; minimum one per shard). The two
    /// counters mirror the ring's exact recorded/evicted totals onto a
    /// registry so they surface in `/metrics`.
    pub fn new(capacity: usize, recorded_counter: Counter, dropped_counter: Counter) -> TraceRing {
        let shard_cap = capacity.div_ceil(TRACE_SHARDS).max(1);
        TraceRing {
            shards: (0..TRACE_SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(shard_cap)))
                .collect(),
            shard_cap,
            next_seq: AtomicU64::new(0),
            recorded_total: AtomicU64::new(0),
            dropped_total: AtomicU64::new(0),
            recorded_counter,
            dropped_counter,
        }
    }

    /// Total event capacity (shards × per-shard depth).
    pub fn capacity(&self) -> usize {
        self.shard_cap * self.shards.len()
    }

    /// Append an event, assigning its global sequence number. Evicts
    /// the shard's oldest event when full (counted, never blocking).
    pub fn record(&self, mut event: TraceEvent) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let shard = &self.shards[(seq as usize) % self.shards.len()];
        let mut deque = match shard.lock() {
            Ok(deque) => deque,
            Err(poisoned) => poisoned.into_inner(),
        };
        if deque.len() >= self.shard_cap {
            deque.pop_front();
            self.dropped_total.fetch_add(1, Ordering::Relaxed);
            self.dropped_counter.inc();
        }
        deque.push_back(event);
        drop(deque);
        self.recorded_total.fetch_add(1, Ordering::Relaxed);
        self.recorded_counter.inc();
    }

    /// All retained events, ordered by global sequence number.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all = Vec::with_capacity(self.capacity());
        for shard in &self.shards {
            let deque = match shard.lock() {
                Ok(deque) => deque,
                Err(poisoned) => poisoned.into_inner(),
            };
            all.extend(deque.iter().cloned());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Exact number of events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded_total.load(Ordering::Relaxed)
    }

    /// Exact number of events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

/// One flight-recorder sample: counter rates over the interval since
/// the previous sample, plus raw counter totals and gauge values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HistorySample {
    /// Wall-clock timestamp of the observation (Unix milliseconds).
    pub unix_ms: u64,
    /// Seconds since the previous sample (0 for the first).
    pub interval_secs: f64,
    /// Per-second counter deltas over the interval.
    pub rates: BTreeMap<String, f64>,
    /// Raw counter totals at sample time.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at sample time.
    pub gauges: BTreeMap<String, f64>,
}

struct HistoryInner {
    last: Option<(u64, BTreeMap<String, u64>)>,
    ring: VecDeque<HistorySample>,
}

/// Flight recorder: a bounded ring of periodic [`HistorySample`]s.
/// A daemon scraper thread calls [`MetricsHistory::observe`] on a fixed
/// cadence; `/metrics/history` serves [`MetricsHistory::samples`].
pub struct MetricsHistory {
    capacity: usize,
    inner: Mutex<HistoryInner>,
}

impl MetricsHistory {
    /// A recorder retaining the most recent `capacity` samples.
    pub fn new(capacity: usize) -> MetricsHistory {
        MetricsHistory {
            capacity: capacity.max(2),
            inner: Mutex::new(HistoryInner {
                last: None,
                ring: VecDeque::new(),
            }),
        }
    }

    /// Fold a snapshot into the ring, computing per-second counter
    /// rates against the previous observation.
    pub fn observe(&self, unix_ms: u64, snapshot: &Snapshot) {
        let mut inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut rates = BTreeMap::new();
        let mut interval_secs = 0.0;
        if let Some((prev_ms, prev_counters)) = &inner.last {
            interval_secs = (unix_ms.saturating_sub(*prev_ms)) as f64 / 1000.0;
            if interval_secs > 0.0 {
                for (name, value) in &snapshot.counters {
                    let prev = prev_counters.get(name).copied().unwrap_or(0);
                    let delta = value.saturating_sub(prev);
                    rates.insert(name.clone(), delta as f64 / interval_secs);
                }
            }
        }
        let sample = HistorySample {
            unix_ms,
            interval_secs,
            rates,
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
        };
        inner.last = Some((unix_ms, snapshot.counters.clone()));
        if inner.ring.len() >= self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(sample);
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> Vec<HistorySample> {
        let inner = match self.inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        inner.ring.iter().cloned().collect()
    }
}

/// Lane (Chrome `tid`) per event kind so each pipeline stage renders as
/// its own track.
fn kind_lane(kind: TraceKind) -> u64 {
    match kind {
        TraceKind::IngestBatch => 1,
        TraceKind::WalSeal => 2,
        TraceKind::Rescore => 3,
        TraceKind::Publish => 4,
        TraceKind::Reload => 5,
        TraceKind::Lookup => 6,
        TraceKind::ForecastFit => 7,
        TraceKind::ForecastPublish => 8,
        TraceKind::Mark => 9,
    }
}

/// Render a snapshot's span aggregates plus the event ring as Chrome
/// trace-event JSON (the `{"traceEvents": [...]}` object form).
///
/// Events carry real wall-clock timestamps and land on process 1, one
/// lane per [`TraceKind`]. Span aggregates have no per-instance
/// timestamps (they are RAII totals), so they render on process 2 as a
/// synthetic flame view: each root span starts at 0 and children are
/// packed sequentially inside their parent's extent.
pub fn chrome_trace_json(snapshot: &Snapshot, events: &[TraceEvent], process: &str) -> String {
    use serde_json::{json, Map, Value};

    fn metadata(pid: u64, name: String) -> Value {
        let mut args = Map::new();
        args.insert("name".into(), json!(name));
        json!({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0u64,
            "args": Value::Object(args)
        })
    }

    let mut out: Vec<Value> = Vec::with_capacity(events.len() + snapshot.spans.len() + 4);
    out.push(metadata(1, format!("{process} events")));
    out.push(metadata(2, format!("{process} span aggregates")));

    for event in events {
        let ts = event.unix_ms.saturating_mul(1000); // microseconds
        let mut args = Map::new();
        args.insert("seq".into(), json!(event.seq));
        if let Some(generation) = event.generation {
            args.insert("generation".into(), json!(generation));
        }
        if let Some(source) = event.source_generation {
            args.insert("source_generation".into(), json!(source));
        }
        if let Some(first) = event.first_seq {
            args.insert("first_seq".into(), json!(first));
        }
        if let Some(end) = event.end_seq {
            args.insert("end_seq".into(), json!(end));
        }
        for (key, value) in &event.fields {
            args.insert(key.clone(), json!(value.as_str()));
        }
        let lane = kind_lane(event.kind);
        if event.duration_ns > 0 {
            out.push(json!({
                "name": event.kind.name(), "ph": "X", "pid": 1u64, "tid": lane,
                "ts": ts, "dur": (event.duration_ns / 1000).max(1),
                "args": Value::Object(args)
            }));
        } else {
            out.push(json!({
                "name": event.kind.name(), "ph": "i", "s": "t", "pid": 1u64, "tid": lane,
                "ts": ts, "args": Value::Object(args)
            }));
        }
    }

    // Synthetic flame view of the aggregated span tree. BTreeMap order
    // visits parents before children ("a" < "a/b"), so each path's
    // start offset is its parent's start plus what earlier siblings
    // consumed.
    let mut placed: BTreeMap<&str, (f64, f64)> = BTreeMap::new(); // path -> (start_us, consumed_us)
    let mut root_cursor = 0.0f64;
    for (path, stat) in &snapshot.spans {
        let dur_us = (stat.total_secs * 1e6).max(1.0);
        let start = match path.rsplit_once('/') {
            Some((parent, _)) => {
                if let Some((parent_start, consumed)) = placed.get(parent).copied() {
                    placed.insert(parent, (parent_start, consumed + dur_us));
                    parent_start + consumed
                } else {
                    let s = root_cursor;
                    root_cursor += dur_us;
                    s
                }
            }
            None => {
                let s = root_cursor;
                root_cursor += dur_us;
                s
            }
        };
        placed.insert(path, (start, 0.0));
        let mut args = Map::new();
        args.insert("count".into(), json!(stat.count));
        args.insert("mean_secs".into(), json!(stat.mean_secs()));
        for (key, value) in &stat.fields {
            args.insert(key.clone(), json!(value.as_str()));
        }
        out.push(json!({
            "name": path.rsplit('/').next().unwrap_or(path), "ph": "X",
            "pid": 2u64, "tid": 1u64, "ts": start, "dur": dur_us,
            "args": Value::Object(args)
        }));
    }

    serde_json::to_string(&json!({
        "displayTimeUnit": "ms",
        "traceEvents": Value::Array(out),
    }))
    .unwrap_or_else(|_| "{\"traceEvents\":[]}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn ring(capacity: usize) -> TraceRing {
        TraceRing::new(capacity, Counter::standalone(), Counter::standalone())
    }

    #[test]
    fn ring_retains_and_orders_events() {
        let ring = ring(64);
        for i in 0..10u64 {
            ring.record(TraceEvent::now(TraceKind::Mark).field("i", i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 10);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn ring_overflow_accounting_is_exact() {
        let ring = ring(16); // 8 shards x 2
        let capacity = ring.capacity() as u64;
        let total = capacity + 37;
        for _ in 0..total {
            ring.record(TraceEvent::now(TraceKind::Lookup));
        }
        assert_eq!(ring.recorded(), total);
        assert_eq!(ring.dropped(), total - capacity);
        assert_eq!(ring.events().len(), capacity as usize);
        // Survivors are exactly the newest `capacity` sequence numbers.
        let min_seq = ring.events().first().unwrap().seq;
        assert_eq!(min_seq, total - capacity);
    }

    #[test]
    fn ring_overflow_mirrors_registry_counters() {
        let registry = Registry::full();
        let ring = registry.install_trace(8).unwrap();
        let capacity = ring.capacity() as u64;
        for _ in 0..capacity + 5 {
            ring.record(TraceEvent::now(TraceKind::Mark));
        }
        assert_eq!(
            registry.counter_value("trace.events_recorded"),
            capacity + 5
        );
        assert_eq!(registry.counter_value("trace.events_dropped"), 5);
        assert_eq!(ring.dropped(), 5);
    }

    #[test]
    fn ring_overflow_exact_under_concurrency() {
        let ring = std::sync::Arc::new(ring(32));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let ring = ring.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        ring.record(TraceEvent::now(TraceKind::IngestBatch));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(ring.recorded(), 4000);
        assert_eq!(ring.dropped(), 4000 - ring.capacity() as u64);
        assert_eq!(ring.events().len(), ring.capacity());
    }

    #[test]
    fn trace_event_json_round_trips() {
        let event = TraceEvent::now(TraceKind::Publish)
            .generation(7)
            .seq_range(100, 250)
            .dur_ns(1_500_000)
            .field("networks", 42u32);
        let json = serde_json::to_string(&event).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back.kind, TraceKind::Publish);
        assert_eq!(back.generation, Some(7));
        assert_eq!(back.first_seq, Some(100));
        assert_eq!(back.end_seq, Some(250));
        assert_eq!(back.duration_ns, 1_500_000);
        assert_eq!(
            back.fields,
            vec![("networks".to_string(), "42".to_string())]
        );
    }

    #[test]
    fn chrome_trace_schema_round_trips() {
        let registry = Registry::full();
        {
            let root = registry.span("pipeline");
            let _child = root.child("detect");
        }
        let events = vec![
            TraceEvent::now(TraceKind::Publish)
                .generation(3)
                .dur_ns(2_000_000),
            TraceEvent::now(TraceKind::Reload).source_generation(3),
        ];
        let json = chrome_trace_json(&registry.snapshot(), &events, "test");
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let trace_events = value.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name metadata + 2 events + 2 spans.
        assert_eq!(trace_events.len(), 6);
        let named = |entry: &serde_json::Value, key: &str| entry.get(key).cloned();
        for entry in trace_events {
            assert!(named(entry, "name").unwrap().as_str().is_some());
            let ph = named(entry, "ph").unwrap().as_str().unwrap().to_string();
            assert!(named(entry, "pid").unwrap().as_u64().is_some());
            assert!(named(entry, "tid").unwrap().as_u64().is_some());
            if ph != "M" {
                assert!(
                    named(entry, "ts").unwrap().as_f64().is_some(),
                    "non-metadata events carry ts"
                );
            }
            if ph == "X" {
                assert!(
                    named(entry, "dur").unwrap().as_f64().is_some(),
                    "complete events carry dur"
                );
            }
        }
        let by_name = |name: &str| {
            trace_events
                .iter()
                .find(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap()
        };
        // The publish event keeps its generation in args.
        let publish = by_name("publish");
        assert_eq!(
            publish
                .get("args")
                .unwrap()
                .get("generation")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        // Span aggregates land on pid 2 with the child nested inside
        // the root's extent.
        let root = by_name("pipeline");
        let child = by_name("detect");
        assert_eq!(root.get("pid").unwrap().as_u64(), Some(2));
        let root_ts = root.get("ts").unwrap().as_f64().unwrap();
        let child_ts = child.get("ts").unwrap().as_f64().unwrap();
        assert!(child_ts >= root_ts);
    }

    #[test]
    fn history_rates_are_per_second() {
        let registry = Registry::full();
        let hits = registry.counter("serve.lookups");
        let history = MetricsHistory::new(8);
        hits.add(100);
        history.observe(10_000, &registry.snapshot());
        hits.add(50);
        history.observe(12_000, &registry.snapshot());
        let samples = history.samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].interval_secs, 0.0);
        assert!(samples[0].rates.is_empty());
        assert_eq!(samples[1].interval_secs, 2.0);
        assert_eq!(samples[1].rates["serve.lookups"], 25.0);
        assert_eq!(samples[1].counters["serve.lookups"], 150);
    }

    #[test]
    fn history_ring_is_bounded() {
        let registry = Registry::full();
        let history = MetricsHistory::new(4);
        for i in 0..10u64 {
            history.observe(1000 * i, &registry.snapshot());
        }
        let samples = history.samples();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].unix_ms, 6000);
        assert_eq!(samples[3].unix_ms, 9000);
    }
}
