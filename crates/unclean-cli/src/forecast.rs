//! The `unclean forecast` subcommands: train the per-/16 attack-rate
//! forecaster from a v2 indexed flow archive, score it against the
//! persistence baseline, publish the artifact the serving daemon hot
//! reloads, and run remediation what-ifs.
//!
//! `fit` records [`TraceKind::ForecastFit`] / [`TraceKind::ForecastPublish`]
//! events and `forecast.*` counters into a full registry; `--telemetry`
//! exports the snapshot so CI can run
//! `unclean metrics --assert-zero forecast.fit.errors,forecast.publish.errors`
//! over it.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crossbeam::executor::Executor;
use unclean_forecast::{
    evaluate, publish_atomic, DailySeries, ForecastArtifact, ForecastConfig, ForecastModel,
    SimulateConfig,
};
use unclean_telemetry::{Registry, TraceEvent, TraceKind};

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Shared model tunables for `fit` and `eval`.
#[derive(Debug, Clone)]
pub struct ModelOpts {
    pub horizon: u32,
    pub level_half_life: f64,
    pub trend_half_life: f64,
    pub neighbor_weight: f64,
    pub threads: usize,
}

impl ModelOpts {
    fn config(&self) -> ForecastConfig {
        ForecastConfig {
            horizon_days: self.horizon.clamp(1, 365),
            level_half_life: self.level_half_life,
            trend_half_life: self.trend_half_life,
            neighbor_weight: self.neighbor_weight,
            ..ForecastConfig::default()
        }
    }
}

/// `unclean forecast fit --archive <spool.flows> --out <forecast.txt>`.
#[derive(Debug, Clone)]
pub struct FitOpts {
    pub archive: PathBuf,
    pub out: PathBuf,
    pub model: ModelOpts,
    pub generation: u64,
    pub name: String,
    pub telemetry: Option<PathBuf>,
}

/// Read a v2 indexed archive into the per-/16 daily report series.
fn load_series(archive: &Path) -> Result<DailySeries, String> {
    let data =
        std::fs::read(archive).map_err(|e| format!("cannot read {}: {e}", archive.display()))?;
    DailySeries::from_archive(&data, None)
        .map(|(series, _)| series)
        .map_err(|e| format!("{}: {e}", archive.display()))
}

/// Fit the forecaster on an archive and atomically publish the artifact.
pub fn fit(opts: &FitOpts) -> Result<String, String> {
    let registry = Registry::full();
    let ring = registry.install_trace(4096);
    let fits = registry.counter("forecast.fit.count");
    let fit_errors = registry.counter("forecast.fit.errors");
    let publishes = registry.counter("forecast.publish.count");
    let publish_errors = registry.counter("forecast.publish.errors");

    let t_fit = Instant::now();
    let series = load_series(&opts.archive).inspect_err(|_| fit_errors.inc())?;
    let config = opts.model.config();
    let pool = Executor::new(opts.model.threads);
    let model = ForecastModel::fit(&series, &config, &pool);
    fits.inc();
    if let Some(ring) = &ring {
        ring.record(
            TraceEvent::now(TraceKind::ForecastFit)
                .generation(opts.generation)
                .dur_ns(elapsed_ns(t_fit))
                .field("networks", series.networks().len() as u64)
                .field("days", series.days() as u64)
                .field("archive", opts.archive.display().to_string()),
        );
    }

    let t_publish = Instant::now();
    let mut artifact = ForecastArtifact::from_model(&model, &opts.name);
    artifact.generation = Some(opts.generation);
    artifact.published_unix_ms = Some(unix_ms_now());
    let text = artifact.render();
    publish_atomic(&opts.out, text.as_bytes()).map_err(|e| {
        publish_errors.inc();
        format!("cannot publish {}: {e}", opts.out.display())
    })?;
    publishes.inc();
    if let Some(ring) = &ring {
        ring.record(
            TraceEvent::now(TraceKind::ForecastPublish)
                .generation(opts.generation)
                .dur_ns(elapsed_ns(t_publish))
                .field("bytes", text.len() as u64)
                .field("out", opts.out.display().to_string()),
        );
    }
    if let Some(path) = &opts.telemetry {
        let json = serde_json::to_string(&registry.snapshot())
            .map_err(|e| format!("telemetry serialize: {e}"))?;
        std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "fit {} networks over {} day(s) from {}",
        series.networks().len(),
        series.days(),
        opts.archive.display()
    );
    let top = {
        let mut ranked: Vec<_> = model.forecasts.iter().collect();
        ranked.sort_by(|a, b| {
            b.rate_at(config.horizon_days)
                .partial_cmp(&a.rate_at(config.horizon_days))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        ranked
    };
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>10} {:>12}",
        "network", "level", "trend", "half-life(d)"
    );
    for f in top.iter().take(8) {
        let _ = writeln!(
            out,
            "{:<16} {:>10.2} {:>10.3} {:>12.1}",
            format!("{}.{}.0.0/16", f.network >> 8, f.network & 0xFF),
            f.level,
            f.trend,
            f.score_half_life
        );
    }
    let _ = writeln!(
        out,
        "published generation {} ({} bytes, horizon {} days) to {}",
        opts.generation,
        text.len(),
        config.horizon_days,
        opts.out.display()
    );
    Ok(out)
}

/// `unclean forecast eval --archive <spool.flows> [--train-days N]`:
/// held-out scoring against the persistence baseline. `train_days == 0`
/// auto-splits at `days - horizon`.
pub fn eval(
    archive: &Path,
    train_days: usize,
    model: &ModelOpts,
    assert_beats_persistence: bool,
) -> Result<String, String> {
    let series = load_series(archive)?;
    let config = model.config();
    let train = if train_days == 0 {
        series.days().saturating_sub(config.horizon_days as usize)
    } else {
        train_days
    };
    let pool = Executor::new(model.threads);
    let report = evaluate(&series, train, &config, &pool)
        .map_err(|e| format!("{}: {e}", archive.display()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "held-out eval: {} networks, {} train day(s), horizon {} day(s)",
        report.networks, report.train_days, report.horizon_days
    );
    let _ = writeln!(out, "{:<14} {:>12} {:>12}", "", "model", "persistence");
    let _ = writeln!(
        out,
        "{:<14} {:>12.4} {:>12.4}",
        "brier", report.model_brier, report.persistence_brier
    );
    let _ = writeln!(
        out,
        "{:<14} {:>12.4} {:>12.4}",
        "rate MAE", report.model_mae, report.persistence_mae
    );
    let _ = writeln!(
        out,
        "brier skill vs persistence: {:+.1}% ({})",
        report.brier_skill() * 100.0,
        if report.beats_persistence() {
            "model wins"
        } else {
            "persistence wins"
        }
    );
    if assert_beats_persistence && !report.beats_persistence() {
        return Err(format!(
            "--assert-beats-persistence failed: model brier {} >= persistence {}",
            report.model_brier, report.persistence_brier
        ));
    }
    Ok(out)
}

/// `unclean forecast simulate`: the remediation what-if.
pub fn simulate(config: &SimulateConfig) -> Result<String, String> {
    let report = unclean_forecast::simulate::run(config);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "remediation what-if: {} day(s) at scale {}, campaign on day {} \
         ({} worst /16s, compliance {})",
        config.days, config.scale, config.remediate_day, config.targets, config.compliance
    );
    let o = &report.outcome;
    let _ = writeln!(
        out,
        "campaign: {} notified, {} complied; {} infections cleaned, \
         {} averted, {} shortened; mean hygiene {:.3} -> {:.3}",
        o.notified,
        o.complied,
        o.cleaned,
        o.averted,
        o.shortened,
        o.mean_hygiene_before(),
        o.mean_hygiene_after()
    );
    let _ = writeln!(
        out,
        "{:>10} {:>16} {:>16} {:>14} {:>14}",
        "day", "baseline blocks", "treated blocks", "baseline fp", "treated fp"
    );
    for p in &report.periods {
        let _ = writeln!(
            out,
            "{:>10} {:>16} {:>16} {:>14.1} {:>14.1}",
            p.start_day, p.baseline_blocks, p.treated_blocks, p.baseline_fp_cost, p.treated_fp_cost
        );
    }
    let _ = writeln!(
        out,
        "final-period blocklist decay: {:.3}  fp-cost decay: {:.3}",
        report.blocklist_decay, report.fp_cost_decay
    );
    match report.score_half_life_days {
        Some(d) => {
            let _ = writeln!(out, "targeted networks' score half-life: {d} day(s)");
        }
        None => {
            let _ = writeln!(
                out,
                "targeted networks' scores never halved within the span"
            );
        }
    }
    Ok(out)
}

/// `unclean forecast synth --out <spool.flows>`: write a small synthetic
/// v2 indexed archive (hostile border flows by default) so `fit`/`eval`
/// and the CI smoke job have a self-contained input.
#[derive(Debug, Clone)]
pub struct SynthOpts {
    pub out: PathBuf,
    pub scale: f64,
    pub seed: u64,
    pub days: u32,
    pub benign: bool,
}

pub fn synth(opts: &SynthOpts) -> Result<String, String> {
    use unclean_flowgen::{FlowGenerator, GeneratorConfig, IndexedArchiveWriter};
    use unclean_netmodel::{Scenario, ScenarioConfig};

    let scenario = Scenario::generate(ScenarioConfig::at_scale(opts.scale, opts.seed));
    let model = scenario.activity();
    let generator = FlowGenerator::new(
        &scenario.observed,
        GeneratorConfig::default(),
        scenario.seeds.child("flowgen"),
    );
    let boot = unclean_flowgen::record::EPOCH_UNIX_SECS;
    let mut writer = IndexedArchiveWriter::new(Vec::new(), boot);
    let start = scenario.dates.full_span.start;
    let mut flows = 0u64;
    let mut write_error = None;
    for i in 0..opts.days.max(1) {
        let day = unclean_core::Day(start.0 + i as i32);
        generator.flows_on(&model, day, opts.benign, |flow| {
            flows += 1;
            if write_error.is_none() {
                if let Err(e) = writer.push(&flow) {
                    write_error = Some(e.to_string());
                }
            }
        });
    }
    if let Some(e) = write_error {
        return Err(format!("archive write: {e}"));
    }
    let (bytes, index) = writer
        .finish()
        .map_err(|e| format!("archive finish: {e}"))?;
    publish_atomic(&opts.out, &bytes)
        .map_err(|e| format!("cannot write {}: {e}", opts.out.display()))?;
    Ok(format!(
        "synthesized {} flows across {} day segment(s) ({} bytes) to {}\n",
        flows,
        index.segments.len(),
        bytes.len(),
        opts.out.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("unclean-cli-forecast").join(name);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn model_opts() -> ModelOpts {
        ModelOpts {
            horizon: 7,
            level_half_life: 7.0,
            trend_half_life: 14.0,
            neighbor_weight: 0.15,
            threads: 1,
        }
    }

    #[test]
    fn synth_fit_eval_round_trip() {
        let dir = tmp_dir("round-trip");
        let spool = dir.join("spool.flows");
        let out = synth(&SynthOpts {
            out: spool.clone(),
            scale: 0.002,
            seed: 11,
            days: 40,
            benign: false,
        })
        .expect("synth");
        assert!(out.contains("day segment(s)"), "{out}");

        let artifact_path = dir.join("forecast.txt");
        let telemetry_path = dir.join("telemetry.json");
        let out = fit(&FitOpts {
            archive: spool.clone(),
            out: artifact_path.clone(),
            model: model_opts(),
            generation: 5,
            name: "test-forecast".to_string(),
            telemetry: Some(telemetry_path.clone()),
        })
        .expect("fit");
        assert!(out.contains("published generation 5"), "{out}");

        // The artifact parses back, carries the generation stamp, and the
        // telemetry export counts one clean fit + publish.
        let text = std::fs::read_to_string(&artifact_path).expect("artifact");
        let artifact = ForecastArtifact::parse(&text).expect("parses");
        assert_eq!(artifact.generation, Some(5));
        assert!(!artifact.entries.is_empty());
        let snap: unclean_telemetry::Snapshot =
            serde_json::from_str(&std::fs::read_to_string(&telemetry_path).expect("telemetry"))
                .expect("snapshot json");
        assert_eq!(snap.counters.get("forecast.fit.count"), Some(&1));
        assert_eq!(snap.counters.get("forecast.publish.count"), Some(&1));
        assert_eq!(snap.counters.get("forecast.fit.errors"), Some(&0));

        let out = eval(&spool, 0, &model_opts(), false).expect("eval");
        assert!(out.contains("brier skill vs persistence"), "{out}");

        // A missing archive is an error on both paths, and counted.
        let missing = dir.join("absent.flows");
        assert!(eval(&missing, 0, &model_opts(), false).is_err());
        assert!(fit(&FitOpts {
            archive: missing,
            out: artifact_path,
            model: model_opts(),
            generation: 6,
            name: "x".to_string(),
            telemetry: None,
        })
        .is_err());
    }

    #[test]
    fn simulate_smoke_prints_decay() {
        let out = simulate(&SimulateConfig {
            scale: 0.01,
            days: 120,
            remediate_day: 60,
            compliance: 1.0,
            threads: 1,
            ..SimulateConfig::default()
        })
        .expect("simulate");
        assert!(out.contains("blocklist decay"), "{out}");
        assert!(out.contains("complied"), "{out}");
    }
}
