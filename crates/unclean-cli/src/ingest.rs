//! `unclean ingest` — the supervised live-ingest daemon — and `unclean
//! replay`, its wire-side counterpart.
//!
//! The streaming loop the paper's operational claim needs:
//!
//! ```text
//! exporter ──UDP──▶ socket ─▶ bounded ring ─▶ WAL spool ─▶ rescore ─▶ blocklist file
//!                    (V5 decode,  (counted     (fsync'd     (windowed    (atomic rename;
//!                     seq track)   shed)        segments)    detectors)   serve --watch reloads)
//! ```
//!
//! The daemon runs under a supervisor: a crashed or erroring attempt is
//! restarted with exponential backoff (bounded by `--retries` and an
//! optional `--deadline-secs`), and every restart reopens the WAL spool —
//! crash recovery quarantines any torn tail and resumes from the last
//! sealed sequence, so no flow is ever double-counted. SIGTERM, SIGINT,
//! or `POST /quit` on the control port drain the ring, seal the open
//! segment, publish a final generation, and write a final checkpoint
//! before exiting.
//!
//! The control port answers `/healthz` (`ok|stale|degraded` by the age of
//! the last published generation — 503 once degraded, while ingest keeps
//! spooling), `/metrics` (Prometheus text), `/checkpoint` (the WAL
//! position as JSON), and `POST /quit`.
//!
//! `unclean replay` streams flows at a collector over UDP through the
//! seeded fault model (drops, bursts, truncation, record corruption,
//! duplicated datagrams) and prints exact wire accounting, so a chaos run
//! can assert the collector's `ingested + shed + lost + duplicates` books
//! every flow it sent.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};
use unclean_core::blocklist::render_scored_with_meta;
use unclean_core::Ip;
use unclean_detect::{rescore_window, LiveScanConfig};
use unclean_flowgen::record::{proto, tcp_flags, EPOCH_UNIX_SECS};
use unclean_flowgen::{
    encode_datagram, ArchiveFlowSource, ArchiveTelemetry, BatchStatus, FaultConfig, Flow,
    FlowSource, RingTelemetry, ShedPolicy, UdpFlowSource, UdpSourceConfig, V5Header, WalSpool,
    V5_HEADER_LEN, V5_MAX_RECORDS, V5_RECORD_LEN,
};
use unclean_netmodel::randutil::{decides, index_hash};
use unclean_serve::http::{read_request, respond};
use unclean_serve::Health;
use unclean_stats::SeedTree;
use unclean_telemetry::{
    chrome_trace_json, prom, Counter, MetricsHistory, Registry, TraceEvent, TraceKind,
};

/// Compile-time build identity for `unclean_ingest_build_info` (the CI
/// build exports `UNCLEAN_GIT_SHA`; local builds say "unreleased").
const GIT_SHA: &str = match option_env!("UNCLEAN_GIT_SHA") {
    Some(sha) => sha,
    None => "unreleased",
};

/// Flight-recorder depth: at the default 2s interval this is ten minutes
/// of metric history.
const HISTORY_SAMPLES: usize = 300;

/// Set by the SIGTERM/SIGINT handler; the ingest loop polls it and turns
/// the signal into the same graceful drain as `POST /quit`.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Route SIGTERM/SIGINT to the shutdown flag so the daemon drains and
/// seals instead of dying mid-segment.
fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Everything `unclean ingest` needs, parsed once in `main`.
#[derive(Debug, Clone)]
pub struct IngestOpts {
    /// Directory holding the WAL spool (`segments.dat` + `index.wal`).
    pub spool_dir: PathBuf,
    /// Where each rescored blocklist generation is atomically published.
    pub out: PathBuf,
    /// UDP bind address for the V5 export stream.
    pub bind: String,
    /// TCP bind address for the control endpoints.
    pub control: String,
    /// How often the sealed window is rescored and republished.
    pub rescore_ms: u64,
    /// Bounded ring capacity, in flows.
    pub ring_capacity: usize,
    /// What the ring sheds when full.
    pub shed: ShedPolicy,
    /// Network granularity of the published blocklist.
    pub prefix_len: u8,
    /// Networks scoring below this are not published.
    pub min_score: f64,
    /// Rescore worker threads (0 = all cores).
    pub threads: usize,
    /// Restarts the supervisor allows before giving up.
    pub retries: u32,
    /// First restart backoff; doubles per consecutive failure.
    pub backoff_ms: u64,
    /// Give up restarting once the daemon has been up this long in total.
    pub deadline_secs: Option<u64>,
    /// Generation age past which `/healthz` answers `stale`.
    pub stale_after_secs: u64,
    /// Generation age past which `/healthz` answers `degraded` (503).
    pub degraded_after_secs: u64,
    /// Exporter boot anchor for V5 timestamp decode.
    pub boot_unix_secs: u32,
    /// Fault hook: the first N attempts fail right after recovery, to
    /// exercise the supervisor (0 = disabled).
    pub fail_attempts: u32,
    /// Trace-ring capacity in events (0 disables tracing entirely).
    pub trace_events: usize,
    /// Flight-recorder sampling interval in ms (0 disables `/metrics/history`).
    pub history_ms: u64,
}

impl Default for IngestOpts {
    fn default() -> IngestOpts {
        IngestOpts {
            spool_dir: PathBuf::from("spool"),
            out: PathBuf::from("blocklist.txt"),
            bind: "127.0.0.1:9995".to_string(),
            control: "127.0.0.1:7055".to_string(),
            rescore_ms: 2_000,
            ring_capacity: 65_536,
            shed: ShedPolicy::DropOldest,
            prefix_len: 24,
            min_score: 0.0,
            threads: 0,
            retries: 3,
            backoff_ms: 200,
            deadline_secs: None,
            stale_after_secs: 15,
            degraded_after_secs: 60,
            boot_unix_secs: EPOCH_UNIX_SECS,
            fail_attempts: 0,
            trace_events: 4096,
            history_ms: 2_000,
        }
    }
}

fn now_unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// State shared between the ingest loop and the control server: the
/// telemetry registry, the quit latch, and the freshness/checkpoint
/// mirrors the endpoints answer from.
struct ControlShared {
    registry: Registry,
    quit: AtomicBool,
    generation: AtomicU64,
    /// Unix ms of the last published generation; 0 = none yet (age is
    /// then measured from daemon start).
    last_publish_ms: AtomicU64,
    started_ms: u64,
    stale_after: Duration,
    degraded_after: Duration,
    sealed_segments: AtomicU64,
    sealed_flows: AtomicU64,
    unsealed_flows: AtomicU64,
    end_seq: AtomicU64,
    /// Flight recorder (None when `--history-secs 0`); scraped by the
    /// control thread on its poll cadence.
    history: Option<Arc<MetricsHistory>>,
    history_interval: Duration,
}

impl ControlShared {
    fn new(opts: &IngestOpts, registry: Registry) -> ControlShared {
        if opts.trace_events > 0 {
            registry.install_trace(opts.trace_events);
        }
        let history_interval = Duration::from_millis(opts.history_ms);
        let history = (opts.history_ms > 0).then(|| Arc::new(MetricsHistory::new(HISTORY_SAMPLES)));
        ControlShared {
            registry,
            quit: AtomicBool::new(false),
            generation: AtomicU64::new(0),
            last_publish_ms: AtomicU64::new(0),
            started_ms: now_unix_ms(),
            stale_after: Duration::from_secs(opts.stale_after_secs),
            degraded_after: Duration::from_secs(opts.degraded_after_secs),
            sealed_segments: AtomicU64::new(0),
            sealed_flows: AtomicU64::new(0),
            unsealed_flows: AtomicU64::new(0),
            end_seq: AtomicU64::new(0),
            history,
            history_interval,
        }
    }

    fn stopping(&self) -> bool {
        self.quit.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst)
    }

    /// Health by the age of the last published generation; also refreshes
    /// the `rescore.age_secs` gauge so `/metrics` agrees with `/healthz`.
    fn health(&self) -> (Health, u64, u64) {
        let anchor = match self.last_publish_ms.load(Ordering::Relaxed) {
            0 => self.started_ms,
            ms => ms,
        };
        let age = Duration::from_millis(now_unix_ms().saturating_sub(anchor));
        self.registry
            .gauge("rescore.age_secs")
            .set(age.as_secs_f64());
        (
            Health::of(age, Some(self.stale_after), Some(self.degraded_after)),
            self.generation.load(Ordering::Relaxed),
            age.as_secs(),
        )
    }

    fn record_checkpoint(&self, cp: &unclean_flowgen::WalCheckpoint) {
        self.sealed_segments
            .store(cp.sealed_segments as u64, Ordering::Relaxed);
        self.sealed_flows.store(cp.sealed_flows, Ordering::Relaxed);
        self.unsealed_flows
            .store(cp.unsealed_flows, Ordering::Relaxed);
        self.end_seq.store(u64::from(cp.end_seq), Ordering::Relaxed);
    }
}

/// The control listener: a non-blocking accept loop on its own thread,
/// answering health/metrics/checkpoint reads and latching `/quit`.
struct ControlServer {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ControlServer {
    fn start(bind: &str, shared: Arc<ControlShared>) -> Result<ControlServer, String> {
        let listener =
            TcpListener::bind(bind).map_err(|e| format!("cannot bind control {bind}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("control listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("control listener: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ingest-control".to_string())
                .spawn(move || {
                    // The flight recorder rides the accept loop's poll
                    // cadence: no extra thread, one snapshot per interval.
                    let mut next_sample = Instant::now();
                    while !stop.load(Ordering::SeqCst) {
                        if let Some(history) = &shared.history {
                            if Instant::now() >= next_sample {
                                history.observe(now_unix_ms(), &shared.registry.snapshot());
                                next_sample = Instant::now() + shared.history_interval;
                            }
                        }
                        match listener.accept() {
                            Ok((mut stream, _)) => {
                                let _ = stream.set_nonblocking(false);
                                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                                handle_control(&mut stream, &shared);
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(20));
                            }
                            Err(_) => break,
                        }
                    }
                })
                .map_err(|e| format!("control thread: {e}"))?
        };
        Ok(ControlServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_control(stream: &mut TcpStream, shared: &ControlShared) {
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(_) => return,
    };
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let (health, generation, age_secs) = shared.health();
            let body = format!(
                "{} generation={generation} age_secs={age_secs}\n",
                health.as_str()
            );
            let (code, reason) = match health {
                Health::Degraded => (503, "Service Unavailable"),
                Health::Ok | Health::Stale => (200, "OK"),
            };
            respond(stream, code, reason, "text/plain", body.as_bytes())
        }
        ("GET", "/metrics") => {
            shared.health();
            let mut text = prom::render(&shared.registry.snapshot(), "unclean_ingest");
            text.push_str(&prom::build_info(
                "unclean_ingest",
                env!("CARGO_PKG_VERSION"),
                GIT_SHA,
                shared.started_ms as f64 / 1000.0,
            ));
            respond(
                stream,
                200,
                "OK",
                "text/plain; version=0.0.4",
                text.as_bytes(),
            )
        }
        ("GET", "/trace") => {
            let events = shared
                .registry
                .trace()
                .map(|ring| ring.events())
                .unwrap_or_default();
            if request.query_param("format") == Some("events") {
                // Same machine-readable shape as serve's `/trace?format=events`,
                // so one lineage walker reads both daemons.
                let body = serde_json::to_string(&events)
                    .map(|events| format!("{{\"events\":{events}}}"))
                    .unwrap_or_else(|_| "{\"events\":[]}".to_string());
                respond(stream, 200, "OK", "application/json", body.as_bytes())
            } else {
                let body =
                    chrome_trace_json(&shared.registry.snapshot(), &events, "unclean-ingest");
                respond(stream, 200, "OK", "application/json", body.as_bytes())
            }
        }
        ("GET", "/metrics/history") => match &shared.history {
            Some(history) => {
                let samples =
                    serde_json::to_string(&history.samples()).unwrap_or_else(|_| "[]".to_string());
                let body = format!(
                    "{{\"interval_secs\":{},\"samples\":{samples}}}",
                    shared.history_interval.as_secs_f64()
                );
                respond(stream, 200, "OK", "application/json", body.as_bytes())
            }
            None => respond(
                stream,
                404,
                "Not Found",
                "text/plain",
                b"flight recorder disabled\n",
            ),
        },
        ("GET", "/checkpoint") => {
            let body = format!(
                "{{\"generation\":{},\"sealed_segments\":{},\"sealed_flows\":{},\
                 \"unsealed_flows\":{},\"end_seq\":{}}}\n",
                shared.generation.load(Ordering::Relaxed),
                shared.sealed_segments.load(Ordering::Relaxed),
                shared.sealed_flows.load(Ordering::Relaxed),
                shared.unsealed_flows.load(Ordering::Relaxed),
                shared.end_seq.load(Ordering::Relaxed),
            );
            respond(stream, 200, "OK", "application/json", body.as_bytes())
        }
        ("POST", "/quit") => {
            shared.quit.store(true, Ordering::SeqCst);
            respond(stream, 200, "OK", "text/plain", b"draining\n")
        }
        _ => respond(
            stream,
            404,
            "Not Found",
            "text/plain",
            b"unknown control endpoint\n",
        ),
    };
    let _ = outcome;
}

/// Registry counter handles resolved once per attempt (the hot loop must
/// not take the registry lock per batch).
struct IngestCounters {
    flows: Counter,
    datagrams: Counter,
    lost_flows: Counter,
    recovered_flows: Counter,
    sequence_gaps: Counter,
    reordered: Counter,
    duplicates: Counter,
    decode_errors: Counter,
    shed_oldest: Counter,
    shed_newest: Counter,
    spooled: Counter,
}

impl IngestCounters {
    fn new(registry: &Registry) -> IngestCounters {
        IngestCounters {
            flows: registry.counter("ingest.flows"),
            datagrams: registry.counter("ingest.datagrams"),
            lost_flows: registry.counter("ingest.lost_flows"),
            recovered_flows: registry.counter("ingest.recovered_flows"),
            sequence_gaps: registry.counter("ingest.sequence_gaps"),
            reordered: registry.counter("ingest.reordered"),
            duplicates: registry.counter("ingest.duplicates"),
            decode_errors: registry.counter("ingest.decode_errors"),
            shed_oldest: registry.counter("ingest.shed_oldest"),
            shed_newest: registry.counter("ingest.shed_newest"),
            spooled: registry.counter("ingest.spooled"),
        }
    }
}

/// Publishes the monotone source/ring totals into registry counters as
/// deltas, so the counters survive attempt restarts without resetting.
#[derive(Default)]
struct TelemetrySync {
    tele: ArchiveTelemetry,
    ring: RingTelemetry,
    decode_errors: u64,
    spooled: u64,
}

impl TelemetrySync {
    fn publish(
        &mut self,
        source: &UdpFlowSource,
        spool: &WalSpool,
        spooled: u64,
        counters: &IngestCounters,
        shared: &ControlShared,
    ) {
        let tele = source.telemetry();
        let ring = source.ring_telemetry();
        let decode_errors = source.decode_errors();
        counters.flows.add(tele.flows - self.tele.flows);
        counters.datagrams.add(tele.datagrams - self.tele.datagrams);
        counters
            .lost_flows
            .add(tele.lost_flows - self.tele.lost_flows);
        counters
            .recovered_flows
            .add(tele.recovered_flows - self.tele.recovered_flows);
        counters
            .sequence_gaps
            .add(tele.sequence_gaps - self.tele.sequence_gaps);
        counters.reordered.add(tele.reordered - self.tele.reordered);
        counters
            .duplicates
            .add(tele.duplicates - self.tele.duplicates);
        counters
            .decode_errors
            .add(decode_errors - self.decode_errors);
        counters
            .shed_oldest
            .add(ring.shed_oldest - self.ring.shed_oldest);
        counters
            .shed_newest
            .add(ring.shed_newest - self.ring.shed_newest);
        counters.spooled.add(spooled - self.spooled);
        self.tele = tele;
        self.ring = ring;
        self.decode_errors = decode_errors;
        self.spooled = spooled;
        shared.record_checkpoint(&spool.checkpoint());
    }
}

/// Seals the spool, rescores the sealed window, and atomically publishes
/// the blocklist file `serve --watch` is holding. Skips the work when no
/// new flow has been sealed since the last publish — a stalled exporter
/// then shows up as growing generation age, exactly what the staleness
/// watchdogs key on.
struct Publisher {
    out: PathBuf,
    cfg: LiveScanConfig,
    last_sealed_flows: Option<u64>,
}

impl Publisher {
    fn publish(
        &mut self,
        spool: &mut WalSpool,
        shared: &ControlShared,
        force: bool,
    ) -> Result<bool, String> {
        let fail = |e: String| -> String {
            shared.registry.counter("rescore.errors").inc();
            e
        };
        spool
            .seal()
            .map_err(|e| fail(format!("seal before rescore: {e}")))?;
        let checkpoint = spool.checkpoint();
        if !force && self.last_sealed_flows == Some(checkpoint.sealed_flows) {
            return Ok(false);
        }
        let t0 = Instant::now();
        let image = spool
            .sealed_image()
            .map_err(|e| fail(format!("sealed image: {e}")))?;
        let scan = rescore_window(&image, None, &self.cfg, &shared.registry)
            .map_err(|e| fail(format!("rescore: {e}")))?;
        // Stamp the generation *into* the published file before bumping
        // the shared counter: the header a `serve --watch` reload parses
        // must name exactly the generation this process reports, or the
        // cross-process lineage chain breaks at the boundary.
        let generation = shared.generation.load(Ordering::SeqCst) + 1;
        let published_ms = now_unix_ms();
        let text = render_scored_with_meta(
            &scan.blocklist,
            "unclean-ingest",
            &[
                ("generation", generation.to_string()),
                ("published_unix_ms", published_ms.to_string()),
            ],
        );
        atomic_publish(&self.out, text.as_bytes()).map_err(fail)?;
        self.last_sealed_flows = Some(checkpoint.sealed_flows);
        shared.generation.store(generation, Ordering::SeqCst);
        shared.last_publish_ms.store(published_ms, Ordering::SeqCst);
        shared.registry.trace_event(
            TraceEvent::now(TraceKind::Publish)
                .dur_ns(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64)
                .generation(generation)
                .seq_range(0, u64::from(checkpoint.end_seq))
                .field("networks", scan.blocklist.len())
                .field("sealed_flows", checkpoint.sealed_flows)
                .field("out", self.out.display()),
        );
        shared.registry.counter("rescore.count").inc();
        shared
            .registry
            .gauge("rescore.generation")
            .set(generation as f64);
        shared
            .registry
            .gauge("rescore.networks")
            .set(scan.blocklist.len() as f64);
        shared.record_checkpoint(&checkpoint);
        Ok(true)
    }
}

/// Write `bytes` to `path` via a same-directory temp file, fsync, rename —
/// a watcher never observes a half-written blocklist.
fn atomic_publish(path: &Path, bytes: &[u8]) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        file.write_all(bytes)
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        file.sync_all()
            .map_err(|e| format!("cannot sync {}: {e}", tmp.display()))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot publish {}: {e}", path.display()))
}

/// `unclean ingest`: run the supervised live-ingest daemon until SIGTERM,
/// SIGINT, or `POST /quit`. Blocks for the daemon's whole lifetime; bound
/// addresses are printed to stdout immediately so scripts can scrape
/// them, and the returned string is the post-drain summary.
pub fn ingest(opts: &IngestOpts) -> Result<String, String> {
    install_signal_handlers();
    let registry = Registry::full();
    let shared = Arc::new(ControlShared::new(opts, registry.clone()));
    let control = ControlServer::start(&opts.control, Arc::clone(&shared))?;
    println!(
        "unclean-ingest control on http://{} (spool: {}, blocklist out: {})",
        control.addr,
        opts.spool_dir.display(),
        opts.out.display()
    );
    println!("endpoints: /healthz /metrics /metrics/history /trace /checkpoint /quit");
    let _ = std::io::stdout().flush();

    let started = Instant::now();
    let deadline = opts.deadline_secs.map(Duration::from_secs);
    let mut attempt: u32 = 0;
    let mut consecutive_failures: u32 = 0;
    let outcome = loop {
        attempt += 1;
        registry.counter("ingest.attempts").inc();
        let attempt_started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| run_attempt(opts, &shared, attempt)));
        let error = match result {
            Ok(Ok(summary)) => break Ok(format!("{summary} (attempt {attempt})")),
            Ok(Err(e)) => e,
            Err(panic) => format!("panicked: {}", panic_message(&panic)),
        };
        // A long healthy run earns back the retry budget: only
        // *consecutive* quick failures count against --retries.
        if attempt_started.elapsed() >= Duration::from_secs(30) {
            consecutive_failures = 0;
        }
        consecutive_failures += 1;
        registry.counter("ingest.restarts").inc();
        if shared.stopping() {
            break Err(format!("shutdown requested after failure: {error}"));
        }
        if consecutive_failures > opts.retries {
            break Err(format!(
                "giving up after {attempt} attempt(s) ({} consecutive failure(s)): {error}",
                consecutive_failures
            ));
        }
        if let Some(limit) = deadline {
            if started.elapsed() >= limit {
                break Err(format!(
                    "deadline of {}s exceeded after {attempt} attempt(s): {error}",
                    limit.as_secs()
                ));
            }
        }
        let backoff = Duration::from_millis(
            opts.backoff_ms
                .saturating_mul(1u64 << (consecutive_failures - 1).min(6))
                .min(10_000),
        );
        eprintln!(
            "ingest attempt {attempt} failed: {error}; restarting in {}ms",
            backoff.as_millis()
        );
        let wake = Instant::now() + backoff;
        while Instant::now() < wake && !shared.stopping() {
            std::thread::sleep(Duration::from_millis(20));
        }
        if shared.stopping() {
            break Err(format!("shutdown requested during backoff: {error}"));
        }
    };
    control.shutdown();
    outcome
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// One supervised attempt: bind the socket, recover the spool, then pump
/// ring → WAL with periodic rescore until shutdown, ending in a graceful
/// drain (stop socket → drain ring to exhaustion → seal → final publish).
fn run_attempt(opts: &IngestOpts, shared: &ControlShared, attempt: u32) -> Result<String, String> {
    let mut source = UdpFlowSource::bind(UdpSourceConfig {
        bind: opts.bind.clone(),
        boot_unix_secs: opts.boot_unix_secs,
        ring_capacity: opts.ring_capacity,
        shed: opts.shed,
        ..UdpSourceConfig::default()
    })
    .map_err(|e| format!("udp bind {}: {e}", opts.bind))?;
    println!("unclean-ingest listening on udp://{}", source.local_addr());
    let _ = std::io::stdout().flush();

    std::fs::create_dir_all(&opts.spool_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.spool_dir.display()))?;
    let (mut spool, recovered) = if opts
        .spool_dir
        .join(unclean_flowgen::spool::INDEX_FILE)
        .exists()
    {
        let (spool, report) = WalSpool::open(&opts.spool_dir)
            .map_err(|e| format!("cannot recover spool {}: {e}", opts.spool_dir.display()))?;
        (spool, Some(report))
    } else {
        (
            WalSpool::create(&opts.spool_dir, opts.boot_unix_secs)
                .map_err(|e| format!("cannot create spool {}: {e}", opts.spool_dir.display()))?,
            None,
        )
    };
    spool.attach_telemetry(&shared.registry);
    if let Some(report) = &recovered {
        shared.registry.counter("ingest.recoveries").inc();
        shared
            .registry
            .counter("ingest.torn_tail_bytes")
            .add(report.torn_tail_bytes);
        println!(
            "recovered spool: {} sealed segment(s), {} flow(s), resuming at seq {}{}",
            report.sealed_segments,
            report.sealed_flows,
            report.resumed_end_seq,
            if report.torn_tail_bytes > 0 {
                format!(" ({} torn byte(s) quarantined)", report.torn_tail_bytes)
            } else {
                String::new()
            }
        );
        let _ = std::io::stdout().flush();
    }
    if attempt <= opts.fail_attempts {
        return Err(format!(
            "injected failure ({attempt} of {})",
            opts.fail_attempts
        ));
    }

    let counters = IngestCounters::new(&shared.registry);
    let mut sync = TelemetrySync::default();
    let mut publisher = Publisher {
        out: opts.out.clone(),
        cfg: LiveScanConfig {
            prefix_len: opts.prefix_len,
            min_score: opts.min_score,
            threads: opts.threads,
            ..LiveScanConfig::default()
        },
        last_sealed_flows: None,
    };
    // First publish is unconditional so `serve` always has a file to
    // load, even before the first flow arrives.
    publisher.publish(
        &mut spool,
        shared,
        shared.generation.load(Ordering::SeqCst) == 0,
    )?;

    let rescore_every = Duration::from_millis(opts.rescore_ms.max(1));
    let mut last_rescore = Instant::now();
    let mut spooled: u64 = sync.spooled;
    let mut batch: Vec<Flow> = Vec::new();
    // Resolve the trace ring once; the hot loop must not take the
    // registry lock per batch.
    let trace = shared.registry.trace();
    while !shared.stopping() {
        batch.clear();
        match source
            .next_batch(&mut batch)
            .map_err(|e| format!("source: {e}"))?
        {
            BatchStatus::Delivered(_) => {
                let first_seq = spool.next_seq();
                for flow in &batch {
                    spool.push(flow).map_err(|e| format!("spool: {e}"))?;
                }
                spooled += batch.len() as u64;
                if let Some(ring) = &trace {
                    ring.record(
                        TraceEvent::now(TraceKind::IngestBatch)
                            .seq_range(u64::from(first_seq), u64::from(spool.next_seq()))
                            .field("flows", batch.len())
                            .field("spooled_total", spooled),
                    );
                }
            }
            BatchStatus::Idle => {}
            BatchStatus::Exhausted => break,
        }
        sync.publish(&source, &spool, spooled, &counters, shared);
        if last_rescore.elapsed() >= rescore_every {
            publisher.publish(&mut spool, shared, false)?;
            last_rescore = Instant::now();
        }
    }

    // Graceful drain: stop the socket (the ring closes once empty), then
    // pop until Exhausted — a queued flow is never stranded.
    source.stop();
    loop {
        batch.clear();
        match source
            .next_batch(&mut batch)
            .map_err(|e| format!("source: {e}"))?
        {
            BatchStatus::Delivered(_) => {
                for flow in &batch {
                    spool.push(flow).map_err(|e| format!("spool: {e}"))?;
                }
                spooled += batch.len() as u64;
            }
            BatchStatus::Idle => {}
            BatchStatus::Exhausted => break,
        }
    }
    publisher.publish(&mut spool, shared, false)?;
    sync.publish(&source, &spool, spooled, &counters, shared);

    let checkpoint = spool.checkpoint();
    let tele = source.telemetry();
    let ring = source.ring_telemetry();
    Ok(format!(
        "drained cleanly: {} flow(s) spooled into {} sealed segment(s) (end seq {}), \
         {} generation(s) published; lost {} (recovered {}), shed {}, duplicates {}",
        checkpoint.sealed_flows,
        checkpoint.sealed_segments,
        checkpoint.end_seq,
        shared.generation.load(Ordering::SeqCst),
        tele.lost_flows,
        tele.recovered_flows,
        ring.shed(),
        tele.duplicates,
    ))
}

// ---------------------------------------------------------------------------
// unclean replay — the wire side
// ---------------------------------------------------------------------------

/// Everything `unclean replay` needs.
#[derive(Debug, Clone)]
pub struct ReplayOpts {
    /// Collector address the datagrams are sent to.
    pub to: String,
    /// Replay this flow archive (v2 or v1) instead of synthesizing.
    pub archive: Option<PathBuf>,
    /// Flows to synthesize when no archive is given.
    pub synth: u64,
    /// Wire fault model applied to every datagram but the last.
    pub faults: FaultConfig,
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Sleep between datagrams (keeps loopback buffers honest).
    pub pace_ms: u64,
    /// Exporter boot anchor stamped into every header.
    pub boot_unix_secs: u32,
}

impl Default for ReplayOpts {
    fn default() -> ReplayOpts {
        ReplayOpts {
            to: String::new(),
            archive: None,
            synth: 20_000,
            faults: FaultConfig::default(),
            seed: 42,
            pace_ms: 0,
            boot_unix_secs: EPOCH_UNIX_SECS,
        }
    }
}

/// Exact wire accounting: what the fault model did to the stream, and
/// therefore what a correct collector must report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Unique flows the exporter generated (the sequence space).
    pub generated: u64,
    /// Flows that reached the wire intact (including garbled-but-framed
    /// corruption) — the collector must admit exactly these.
    pub delivered: u64,
    /// Intact datagrams sent (excluding duplicates).
    pub datagrams: u64,
    /// Flows in independently dropped datagrams.
    pub dropped: u64,
    /// Flows in burst-dropped datagrams.
    pub burst_dropped: u64,
    /// Truncated datagrams sent (they fail decode at the collector).
    pub truncated_datagrams: u64,
    /// Flows lost to truncation.
    pub truncated_flows: u64,
    /// Datagrams with one record byte flipped (still framed, so their
    /// flows are delivered — garbled, not lost).
    pub corrupted_datagrams: u64,
    /// Whole datagrams sent twice.
    pub duplicated_datagrams: u64,
    /// Flows in those duplicated datagrams.
    pub duplicated_flows: u64,
}

impl ReplayStats {
    /// Flows the collector must book as lost (net of recovery).
    pub fn lost(&self) -> u64 {
        self.dropped + self.burst_dropped + self.truncated_flows
    }
}

/// Deterministic scan-shaped traffic: `count` TCP SYN probes from four
/// sources in 9.1.0.0/24, each sweeping globally distinct destinations
/// inside one hour — enough hourly fan-out that the live rescore flags
/// the /24 once a thousand or so flows have landed.
pub fn synth_flows(count: u64) -> Vec<Flow> {
    (0..count)
        .map(|i| Flow {
            src: Ip(0x0901_0001 + (i % 4) as u32),
            dst: Ip(0x1e00_0001u32.wrapping_add(i as u32)),
            src_port: 40_000 + (i % 1_024) as u16,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: (i % 3_000) as i64,
            duration_secs: 0,
        })
        .collect()
}

/// `unclean replay`: stream flows at a collector over UDP through the
/// seeded wire fault model. The first and last datagrams are always sent
/// intact — the first anchors the collector's sequence tracker, the last
/// books every interior gap — so the printed accounting is exact.
/// Returns the stats plus the human-readable summary.
pub fn replay_with_stats(opts: &ReplayOpts) -> Result<(ReplayStats, String), String> {
    let flows: Vec<Flow> = match &opts.archive {
        Some(path) => {
            let bytes =
                std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let mut source = ArchiveFlowSource::open(&bytes, opts.boot_unix_secs, 1)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let mut out = Vec::new();
            while !matches!(
                source
                    .next_batch(&mut out)
                    .map_err(|e| format!("{}: {e}", path.display()))?,
                BatchStatus::Exhausted
            ) {}
            out
        }
        None => synth_flows(opts.synth),
    };
    if flows.is_empty() {
        return Err("nothing to replay (empty archive or --synth 0)".into());
    }
    let target: std::net::SocketAddr = opts
        .to
        .parse()
        .map_err(|_| format!("--to wants host:port, got {:?}", opts.to))?;
    let socket = UdpSocket::bind("127.0.0.1:0").map_err(|e| format!("sender socket: {e}"))?;
    let send = |wire: &[u8]| -> Result<(), String> {
        socket
            .send_to(wire, target)
            .map(|_| ())
            .map_err(|e| format!("send to {target}: {e}"))
    };

    let seeds = SeedTree::new(opts.seed).child("replay-wire");
    let cfg = &opts.faults;
    let mut stats = ReplayStats::default();
    let chunks: Vec<&[Flow]> = flows.chunks(V5_MAX_RECORDS).collect();
    let last = chunks.len() - 1;
    let mut seq: u32 = 0;
    let mut burst_remaining: u32 = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        let first_seq = seq;
        seq = seq.wrapping_add(chunk.len() as u32);
        stats.generated += chunk.len() as u64;
        let nonce = (i as u32).wrapping_add(1);
        let len = chunk.len() as u64;
        let final_datagram = i == last;
        // The first and last datagrams are fault-exempt loss-wise: the
        // first anchors the collector's sequence tracker (a gap before
        // any admitted datagram is invisible), and the last books every
        // interior gap. Everything between faces the full fault model.
        let anchored = i == 0 || final_datagram;
        if !anchored {
            if burst_remaining > 0 {
                burst_remaining -= 1;
                stats.burst_dropped += len;
                continue;
            }
            if decides(&seeds, nonce, 0, "replay-burst", cfg.burst_chance) {
                burst_remaining = cfg.burst_len.saturating_sub(1);
                stats.burst_dropped += len;
                continue;
            }
            if decides(&seeds, nonce, 0, "replay-drop", cfg.drop_chance) {
                stats.dropped += len;
                continue;
            }
        }
        let records: Vec<_> = chunk.iter().map(|f| f.to_v5(opts.boot_unix_secs)).collect();
        let header = V5Header {
            count: records.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: opts.boot_unix_secs,
            unix_nsecs: 0,
            flow_sequence: first_seq,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        let mut wire = encode_datagram(&header, &records).to_vec();
        if !anchored {
            if decides(&seeds, nonce, 0, "replay-trunc", cfg.truncate_chance) {
                // Cut mid-way through the last record: the collector's
                // decode fails and the whole datagram books as a gap.
                wire.truncate(
                    V5_HEADER_LEN + (chunk.len() - 1) * V5_RECORD_LEN + V5_RECORD_LEN / 2,
                );
                stats.truncated_datagrams += 1;
                stats.truncated_flows += len;
                send(&wire)?;
                pace(opts.pace_ms);
                continue;
            }
            if decides(&seeds, nonce, 0, "replay-corrupt", cfg.corrupt_chance) {
                // Flip one *record* byte, never a header byte: the flow
                // garbles but the sequence accounting stays exact.
                let idx = V5_HEADER_LEN
                    + index_hash(&seeds, nonce, 0, "replay-byte", chunk.len() * V5_RECORD_LEN);
                let bit = index_hash(&seeds, nonce, 0, "replay-bit", 8);
                wire[idx] ^= 1 << bit;
                stats.corrupted_datagrams += 1;
            }
        }
        send(&wire)?;
        stats.delivered += len;
        stats.datagrams += 1;
        if !final_datagram && decides(&seeds, nonce, 0, "replay-dup", cfg.dup_datagram_chance) {
            send(&wire)?;
            stats.duplicated_datagrams += 1;
            stats.duplicated_flows += len;
        }
        pace(opts.pace_ms);
    }

    let summary = format!(
        "replayed {} flow(s) to {target} in {} datagram(s)\n\
         delivered {} flow(s); lost on the wire {} (drop {}, burst {}, truncated {} in {} datagram(s))\n\
         corrupted {} datagram(s) in place; duplicated {} datagram(s) ({} flow(s))\n\
         expected collector accounting: ingested+shed={} lost={} duplicates={} \
         (= {} generated)\n",
        stats.generated,
        stats.datagrams,
        stats.delivered,
        stats.lost(),
        stats.dropped,
        stats.burst_dropped,
        stats.truncated_flows,
        stats.truncated_datagrams,
        stats.corrupted_datagrams,
        stats.duplicated_datagrams,
        stats.duplicated_flows,
        stats.delivered,
        stats.lost(),
        stats.duplicated_flows,
        stats.generated,
    );
    Ok((stats, summary))
}

fn pace(ms: u64) {
    if ms > 0 {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// CLI wrapper for [`replay_with_stats`].
pub fn replay(opts: &ReplayOpts) -> Result<String, String> {
    replay_with_stats(opts).map(|(_, summary)| summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("unclean-cli-ingest").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    /// Reserve a free TCP port and release it (for daemons that print
    /// their bound address to stdout, which a test cannot capture).
    fn free_tcp_addr() -> String {
        let probe = TcpListener::bind("127.0.0.1:0").expect("probe");
        format!("127.0.0.1:{}", probe.local_addr().expect("addr").port())
    }

    fn free_udp_addr() -> String {
        let probe = UdpSocket::bind("127.0.0.1:0").expect("probe");
        format!("127.0.0.1:{}", probe.local_addr().expect("addr").port())
    }

    /// One blocking HTTP exchange against `addr`, retrying the connect
    /// until the daemon is up.
    fn http(addr: &str, request: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    stream.write_all(request.as_bytes()).expect("write");
                    let mut text = String::new();
                    stream.read_to_string(&mut text).expect("read");
                    return text;
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("control endpoint never came up: {e}"),
            }
        }
    }

    fn body_of(response: &str) -> &str {
        response
            .split_once("\r\n\r\n")
            .map(|(_, body)| body)
            .unwrap_or("")
    }

    fn test_opts(dir: &Path) -> IngestOpts {
        IngestOpts {
            spool_dir: dir.join("spool"),
            out: dir.join("blocklist.txt"),
            bind: free_udp_addr(),
            control: free_tcp_addr(),
            rescore_ms: 100,
            retries: 0,
            backoff_ms: 10,
            stale_after_secs: 3_600,
            degraded_after_secs: 7_200,
            threads: 1,
            ..IngestOpts::default()
        }
    }

    #[test]
    fn ingest_streams_rescores_and_drains_cleanly() {
        let dir = tmp_dir("stream");
        let opts = test_opts(&dir);
        let (bind, control) = (opts.bind.clone(), opts.control.clone());
        let daemon = {
            let opts = opts.clone();
            std::thread::spawn(move || ingest(&opts))
        };
        // The daemon publishes generation 1 (an empty blocklist) at boot.
        let health = http(&control, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");

        // Stream clean scan traffic at it; a later generation must carry
        // the scanner's /24.
        let (stats, _) = replay_with_stats(&ReplayOpts {
            to: bind,
            synth: 2_000,
            pace_ms: 1,
            ..ReplayOpts::default()
        })
        .expect("replay");
        assert_eq!(stats.generated, 2_000);
        assert_eq!(stats.lost(), 0, "default faults drop nothing");

        let deadline = Instant::now() + Duration::from_secs(15);
        let blocklist = loop {
            let text = std::fs::read_to_string(&opts.out).unwrap_or_default();
            if text.contains("9.1.0.0/24") {
                break text;
            }
            assert!(
                Instant::now() < deadline,
                "blocklist never picked up the scanner: {text:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        };
        assert!(blocklist.contains("score="), "{blocklist}");

        let metrics = http(&control, "GET /metrics HTTP/1.0\r\n\r\n");
        assert!(metrics.contains("unclean_ingest_ingest_flows"), "{metrics}");
        let checkpoint = http(&control, "GET /checkpoint HTTP/1.0\r\n\r\n");
        assert!(checkpoint.contains("\"end_seq\""), "{checkpoint}");

        let quit = http(&control, "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(body_of(&quit), "draining\n");
        let summary = daemon.join().expect("join").expect("ingest ok");
        assert!(summary.contains("drained cleanly"), "{summary}");
        assert!(summary.contains("2000 flow(s) spooled"), "{summary}");
        assert!(summary.contains("shed 0, duplicates 0"), "{summary}");

        // Drain-zero-loss, proven durably: reopening the WAL finds every
        // streamed flow sealed.
        let (_, report) = WalSpool::open(&opts.spool_dir).expect("reopen");
        assert_eq!(report.sealed_flows, 2_000);
        assert_eq!(report.torn_tail_bytes, 0);
    }

    /// Fetch `/trace?format=events` from a daemon and deserialize.
    fn fetch_events(addr: &str) -> Vec<unclean_telemetry::TraceEvent> {
        let response = http(addr, "GET /trace?format=events HTTP/1.0\r\n\r\n");
        let value: serde_json::Value =
            serde_json::from_str(body_of(&response)).expect("trace JSON");
        let events = value.get("events").expect("events key");
        serde_json::from_str(&serde_json::to_string(events).expect("reserialize"))
            .expect("events deserialize")
    }

    /// The tentpole acceptance test: one sampled `/lookup` on the serving
    /// daemon walks back — by generation id across the process boundary,
    /// then by WAL sequence range inside the producer — through reload →
    /// publish → rescore → WAL seal → ingest batch.
    #[test]
    fn lookup_traces_back_to_ingest_batch_by_generation() {
        let dir = tmp_dir("lineage");
        let opts = test_opts(&dir);
        let (bind, control) = (opts.bind.clone(), opts.control.clone());
        let daemon = {
            let opts = opts.clone();
            std::thread::spawn(move || ingest(&opts))
        };
        let health = http(&control, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");

        replay_with_stats(&ReplayOpts {
            to: bind,
            synth: 2_000,
            pace_ms: 1,
            ..ReplayOpts::default()
        })
        .expect("replay");

        // Wait for a post-flow generation: a blocklist that names the
        // scanner's /24 *and* carries lineage metadata in its header.
        let deadline = Instant::now() + Duration::from_secs(15);
        loop {
            let text = std::fs::read_to_string(&opts.out).unwrap_or_default();
            let meta = unclean_core::blocklist::parse_header_meta(&text).unwrap_or_default();
            if text.contains("9.1.0.0/24") && meta.contains_key("generation") {
                assert!(meta.contains_key("published_unix_ms"), "{text:?}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "published list never carried lineage metadata: {text:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }

        // Serve the published file with every request sampled.
        let mut config = unclean_serve::ServeConfig::new(&opts.out);
        config.threads = 2;
        config.trace_sample = 1;
        let server = unclean_serve::Server::start(config, Registry::full()).expect("serve starts");
        let serve_addr = server.local_addr().to_string();
        let lookup = http(&serve_addr, "GET /lookup?ip=9.1.0.5 HTTP/1.0\r\n\r\n");
        assert!(lookup.starts_with("HTTP/1.0 200"), "{lookup}");
        assert!(body_of(&lookup).contains("\"blocked\":true"), "{lookup}");

        // The sampled Lookup event lands just after the response bytes;
        // poll the ring until it shows with its source generation.
        use unclean_telemetry::TraceKind;
        let deadline = Instant::now() + Duration::from_secs(5);
        let (lookup_event, source_generation) = loop {
            let events = fetch_events(&serve_addr);
            if let Some(event) = events
                .iter()
                .find(|e| e.kind == TraceKind::Lookup && e.source_generation.is_some())
            {
                break (event.clone(), event.source_generation.expect("source gen"));
            }
            assert!(Instant::now() < deadline, "no sampled lookup: {events:?}");
            std::thread::sleep(Duration::from_millis(20));
        };

        // Link 1 (serve): the lookup answered from a reload (here: the
        // boot snapshot) of the same serving generation, which names the
        // producer generation it was built from.
        let serve_events = fetch_events(&serve_addr);
        let reload = serve_events
            .iter()
            .find(|e| e.kind == TraceKind::Reload && e.generation == lookup_event.generation)
            .expect("reload event for the serving generation");
        assert_eq!(reload.source_generation, Some(source_generation));

        // Link 2 (across processes, by generation id): the producer's
        // Publish event for exactly that generation.
        let ingest_events = fetch_events(&control);
        let publish = ingest_events
            .iter()
            .find(|e| e.kind == TraceKind::Publish && e.generation == Some(source_generation))
            .expect("publish event for the source generation");
        let end_seq = publish.end_seq.expect("publish end_seq");
        assert!(end_seq > 0, "{publish:?}");

        // Link 3: a rescore ran to produce it.
        assert!(
            ingest_events.iter().any(|e| e.kind == TraceKind::Rescore),
            "no rescore event: {ingest_events:?}"
        );

        // Link 4 (by WAL sequence range): a sealed segment covering the
        // published window, and an ingest batch inside that segment.
        let seal = ingest_events
            .iter()
            .find(|e| e.kind == TraceKind::WalSeal && e.end_seq == Some(end_seq))
            .expect("wal seal event sealing the published window");
        assert!(seal.first_seq.is_some(), "{seal:?}");
        // The published window is the whole sealed image, [0, end_seq).
        let batch = ingest_events
            .iter()
            .find(|e| {
                e.kind == TraceKind::IngestBatch && e.end_seq.is_some_and(|l| 0 < l && l <= end_seq)
            })
            .expect("ingest batch inside the published window");
        assert!(batch.seq < seal.seq, "batch recorded before its seal");

        // The ops tooling reads the same daemons: `unclean trace export`
        // saves a chrome trace, `unclean top` renders the flight recorder.
        let exported = dir.join("trace.json");
        let out = crate::commands::trace_export(&control, Some(&exported)).expect("export");
        assert!(out.contains("exported chrome trace"), "{out}");
        let chrome = std::fs::read_to_string(&exported).expect("read export");
        assert!(chrome.contains("\"traceEvents\""), "{chrome:?}");
        let dashboard = crate::commands::top(&control, 100, 1, true).expect("top");
        assert!(dashboard.contains("unclean top"), "{dashboard}");

        // Drain both daemons.
        let quit = http(&control, "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(body_of(&quit), "draining\n");
        daemon.join().expect("join").expect("ingest ok");
        let serve_registry = server.registry().clone();
        let _ = http(
            &serve_addr,
            "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n",
        );
        server.wait();

        // The bounded ring never dropped an event in this run.
        assert_eq!(
            serve_registry.counter_value("trace.events_dropped"),
            0,
            "serve ring dropped events"
        );
    }

    #[test]
    fn supervisor_restarts_with_backoff_until_healthy() {
        let dir = tmp_dir("supervisor");
        let opts = IngestOpts {
            fail_attempts: 2,
            retries: 3,
            ..test_opts(&dir)
        };
        let control = opts.control.clone();
        let daemon = {
            let opts = opts.clone();
            std::thread::spawn(move || ingest(&opts))
        };
        // Wait for the third (healthy) attempt to be underway before
        // asking it to drain — quitting mid-failure is a different path.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let metrics = http(&control, "GET /metrics HTTP/1.0\r\n\r\n");
            if metrics.contains("unclean_ingest_ingest_attempts 3") {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "third attempt never started: {metrics}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        let health = http(&control, "GET /healthz HTTP/1.0\r\n\r\n");
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        let quit = http(&control, "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        assert_eq!(body_of(&quit), "draining\n");
        let summary = daemon.join().expect("join").expect("ingest ok");
        assert!(summary.contains("(attempt 3)"), "{summary}");
    }

    #[test]
    fn supervisor_gives_up_past_retry_budget() {
        let dir = tmp_dir("give-up");
        let opts = IngestOpts {
            fail_attempts: 10,
            retries: 1,
            ..test_opts(&dir)
        };
        let err = ingest(&opts).expect_err("must give up");
        assert!(err.contains("giving up after 2 attempt(s)"), "{err}");
        assert!(err.contains("injected failure"), "{err}");
    }

    #[test]
    fn replay_accounting_is_exact_under_adverse_faults() {
        let mut source = UdpFlowSource::bind(UdpSourceConfig {
            poll_timeout: Duration::from_millis(10),
            ..UdpSourceConfig::default()
        })
        .expect("bind");
        let (stats, summary) = replay_with_stats(&ReplayOpts {
            to: source.local_addr().to_string(),
            synth: 3_000,
            faults: FaultConfig::adverse(),
            seed: 11,
            pace_ms: 1,
            ..ReplayOpts::default()
        })
        .expect("replay");
        assert!(stats.lost() > 0, "adverse faults must drop something");
        assert!(stats.duplicated_datagrams > 0, "{summary}");
        assert!(stats.corrupted_datagrams > 0, "{summary}");

        // Wait until every sent datagram is decoded or booked.
        let want_datagrams = stats.datagrams + stats.duplicated_datagrams;
        let deadline = Instant::now() + Duration::from_secs(10);
        while (source.telemetry().datagrams < want_datagrams
            || source.decode_errors() < stats.truncated_datagrams)
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        source.stop();
        let mut drained = Vec::new();
        while !matches!(
            source.next_batch(&mut drained).expect("batch"),
            BatchStatus::Exhausted
        ) {}

        // The robustness contract: ingested + shed + lost + duplicates
        // books every flow the exporter generated (plus duplication).
        let t = source.telemetry();
        assert_eq!(t.flows, stats.delivered, "{summary}");
        assert_eq!(t.duplicates, stats.duplicated_flows, "{summary}");
        assert_eq!(t.lost_flows - t.recovered_flows, stats.lost(), "{summary}");
        assert_eq!(
            t.flows + (t.lost_flows - t.recovered_flows),
            stats.generated
        );
        assert_eq!(source.decode_errors(), stats.truncated_datagrams);
        assert_eq!(
            drained.len() as u64 + source.ring_telemetry().shed(),
            t.flows
        );
    }

    #[test]
    fn replay_rejects_empty_and_bad_target() {
        let err = replay(&ReplayOpts {
            to: "127.0.0.1:9".into(),
            synth: 0,
            ..ReplayOpts::default()
        })
        .expect_err("empty");
        assert!(err.contains("nothing to replay"), "{err}");
        let err = replay(&ReplayOpts {
            to: "not-an-addr".into(),
            synth: 10,
            ..ReplayOpts::default()
        })
        .expect_err("bad addr");
        assert!(err.contains("host:port"), "{err}");
    }

    #[test]
    fn synth_flows_trip_the_fanout_detector() {
        let flows = synth_flows(1_200);
        assert_eq!(flows.len(), 1_200);
        // Four sources, each with 300 globally distinct destinations in
        // hour zero — comfortably past the 64-distinct-dst threshold.
        let distinct: std::collections::BTreeSet<u32> = flows.iter().map(|f| f.dst.0).collect();
        assert_eq!(distinct.len(), 1_200);
        assert!(flows.iter().all(|f| f.start_secs < 3_600));
    }
}
