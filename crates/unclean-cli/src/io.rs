//! Report file I/O for the CLI.
//!
//! The interchange format is the simplest thing an operator already has:
//! one IPv4 address per line, blank lines and `#` comments ignored. A
//! report's metadata (tag, class) comes from the command line, not the
//! file, so existing blocklists and log extracts work untouched.

use std::io::{BufRead, Write};
use std::path::Path;
use unclean_core::prelude::*;

/// Parse a report body: one address per line, `#` comments, blank lines.
///
/// Returns the set plus the number of ignored (comment/blank) lines; a
/// malformed address aborts with its line number, because silently
/// dropping entries from a blocklist is how incidents happen.
pub fn parse_addresses(reader: impl BufRead) -> Result<(IpSet, usize), String> {
    let mut raw = Vec::new();
    let mut ignored = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            ignored += 1;
            continue;
        }
        let ip: Ip = trimmed
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        raw.push(ip.raw());
    }
    Ok((IpSet::from_raw(raw), ignored))
}

/// Load a report from a file path, with metadata from the caller.
pub fn load_report(
    path: &Path,
    tag: &str,
    class: ReportClass,
    provenance: Provenance,
) -> Result<Report, String> {
    let file = std::fs::File::open(path)
        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let (addresses, _) = parse_addresses(std::io::BufReader::new(file))
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if addresses.is_empty() {
        return Err(format!("{}: no addresses found", path.display()));
    }
    // CLI reports carry no dates; a single-day placeholder period keeps the
    // type honest without inventing calendars.
    Ok(Report::new(
        tag,
        class,
        provenance,
        DateRange::single(Day::EPOCH),
        addresses,
    ))
}

/// Write an address set to a file, one per line with a header comment.
pub fn write_addresses(path: &Path, set: &IpSet, comment: &str) -> Result<(), String> {
    let mut out = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let mut buf = String::with_capacity(set.len() * 16);
    buf.push_str(&format!("# {comment}\n"));
    for ip in set.iter() {
        buf.push_str(&ip.to_string());
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

/// Parse a report-class name.
pub fn parse_class(s: &str) -> Result<ReportClass, String> {
    match s.to_ascii_lowercase().as_str() {
        "bots" | "bot" => Ok(ReportClass::Bots),
        "phishing" | "phish" => Ok(ReportClass::Phishing),
        "scanning" | "scan" => Ok(ReportClass::Scanning),
        "spamming" | "spam" => Ok(ReportClass::Spamming),
        "control" => Ok(ReportClass::Control),
        other => Err(format!(
            "unknown class {other:?} (expected bot|phish|scan|spam|control)"
        )),
    }
}

/// Parse a blocklist format name.
pub fn parse_format(s: &str) -> Result<BlocklistFormat, String> {
    match s.to_ascii_lowercase().as_str() {
        "plain" => Ok(BlocklistFormat::Plain),
        "cisco" | "acl" => Ok(BlocklistFormat::CiscoAcl),
        "iptables" => Ok(BlocklistFormat::Iptables),
        other => Err(format!("unknown format {other:?} (expected plain|cisco|iptables)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_file() {
        let text = "# comment\n8.8.8.8\n\n1.2.3.4\n  9.9.9.9  \n";
        let (set, ignored) = parse_addresses(Cursor::new(text)).expect("valid");
        assert_eq!(set.len(), 3);
        assert_eq!(ignored, 2);
        assert!(set.contains("1.2.3.4".parse().expect("ok")));
    }

    #[test]
    fn parse_rejects_malformed_with_line_number() {
        let text = "8.8.8.8\nnot-an-ip\n";
        let err = parse_addresses(Cursor::new(text)).expect_err("malformed");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parse_dedups() {
        let text = "1.1.1.1\n1.1.1.1\n";
        let (set, _) = parse_addresses(Cursor::new(text)).expect("valid");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join("unclean-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("report.txt");
        let set = IpSet::from_raw(vec![1, 2, 0xffff_ffff]);
        write_addresses(&path, &set, "test report").expect("write");
        let report =
            load_report(&path, "t", ReportClass::Bots, Provenance::Provided).expect("load");
        assert_eq!(report.addresses(), &set);
        assert_eq!(report.tag(), "t");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn load_rejects_empty() {
        let dir = std::env::temp_dir().join("unclean-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("empty.txt");
        std::fs::write(&path, "# nothing\n").expect("write");
        let err = load_report(&path, "t", ReportClass::Bots, Provenance::Provided)
            .expect_err("empty report");
        assert!(err.contains("no addresses"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn class_and_format_parsing() {
        assert_eq!(parse_class("BOT").expect("ok"), ReportClass::Bots);
        assert_eq!(parse_class("phish").expect("ok"), ReportClass::Phishing);
        assert!(parse_class("nonsense").is_err());
        assert_eq!(parse_format("cisco").expect("ok"), BlocklistFormat::CiscoAcl);
        assert!(parse_format("xml").is_err());
    }
}
