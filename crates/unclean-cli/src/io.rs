//! Report file I/O for the CLI.
//!
//! The interchange format is the simplest thing an operator already has:
//! one IPv4 address per line, blank lines and `#` comments ignored. A
//! report's metadata (tag, class) comes from the command line, not the
//! file, so existing blocklists and log extracts work untouched.

use std::io::{BufRead, Write};
use std::path::Path;
use unclean_core::prelude::*;

/// How malformed report lines are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseMode {
    /// A malformed address aborts the load with its line number (the
    /// default), because silently dropping entries from a blocklist is how
    /// incidents happen.
    Strict,
    /// Malformed lines are quarantined — collected with line numbers and
    /// reasons instead of aborting — failing only once more than `max_bad`
    /// lines have gone bad. For operator files with a known sprinkle of
    /// garbage (log extracts, hand-edited lists).
    Lenient {
        /// The error budget: the load fails on the `max_bad + 1`-th
        /// malformed line.
        max_bad: usize,
    },
}

/// How many quarantined lines keep their full reason text; past this only
/// the count grows (a million-line garbage file must not OOM the summary).
const QUARANTINE_DETAIL: usize = 20;

/// Malformed lines set aside by a lenient parse.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    /// The first [`QUARANTINE_DETAIL`] offenders: (1-based line number,
    /// reason).
    pub bad: Vec<(usize, String)>,
    /// Total malformed lines seen (may exceed `bad.len()`).
    pub total_bad: usize,
}

impl Quarantine {
    /// True when every line parsed clean.
    pub fn is_empty(&self) -> bool {
        self.total_bad == 0
    }

    /// Human-readable multi-line summary (empty string when clean).
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return String::new();
        }
        let mut out = format!("quarantined {} malformed line(s):\n", self.total_bad);
        for (lineno, reason) in &self.bad {
            out.push_str(&format!("  line {lineno}: {reason}\n"));
        }
        if self.total_bad > self.bad.len() {
            out.push_str(&format!(
                "  … and {} more\n",
                self.total_bad - self.bad.len()
            ));
        }
        out
    }
}

/// Parse a report body: one address per line, `#` comments, blank lines.
///
/// Returns the set, the number of ignored (comment/blank) lines, and the
/// quarantine. In [`ParseMode::Strict`] a malformed address aborts with
/// its line number and the quarantine is always empty; in
/// [`ParseMode::Lenient`] malformed lines are quarantined until the error
/// budget is exhausted.
pub fn parse_addresses_with(
    reader: impl BufRead,
    mode: ParseMode,
) -> Result<(IpSet, usize, Quarantine), String> {
    let mut raw = Vec::new();
    let mut ignored = 0usize;
    let mut quarantine = Quarantine::default();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("read error at line {}: {e}", lineno + 1))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            ignored += 1;
            continue;
        }
        match trimmed.parse::<Ip>() {
            Ok(ip) => raw.push(ip.raw()),
            Err(e) => match mode {
                ParseMode::Strict => return Err(format!("line {}: {e}", lineno + 1)),
                ParseMode::Lenient { max_bad } => {
                    quarantine.total_bad += 1;
                    if quarantine.bad.len() < QUARANTINE_DETAIL {
                        quarantine.bad.push((lineno + 1, e.to_string()));
                    }
                    if quarantine.total_bad > max_bad {
                        return Err(format!(
                            "{} malformed lines exceed the --max-bad budget of {max_bad}; \
                             first offender at line {}: {}",
                            quarantine.total_bad, quarantine.bad[0].0, quarantine.bad[0].1
                        ));
                    }
                }
            },
        }
    }
    Ok((IpSet::from_raw(raw), ignored, quarantine))
}

/// Strict parse (see [`parse_addresses_with`]): the set plus the number of
/// ignored lines.
#[cfg(test)]
pub fn parse_addresses(reader: impl BufRead) -> Result<(IpSet, usize), String> {
    parse_addresses_with(reader, ParseMode::Strict).map(|(set, ignored, _)| (set, ignored))
}

/// Load a report from a file path with the given parse mode, returning the
/// quarantine alongside so callers can surface what was set aside.
pub fn load_report_with(
    path: &Path,
    tag: &str,
    class: ReportClass,
    provenance: Provenance,
    mode: ParseMode,
) -> Result<(Report, Quarantine), String> {
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let (addresses, _, quarantine) = parse_addresses_with(std::io::BufReader::new(file), mode)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    if addresses.is_empty() {
        return Err(format!("{}: no addresses found", path.display()));
    }
    // CLI reports carry no dates; a single-day placeholder period keeps the
    // type honest without inventing calendars.
    Ok((
        Report::new(
            tag,
            class,
            provenance,
            DateRange::single(Day::EPOCH),
            addresses,
        ),
        quarantine,
    ))
}

/// Load a report strictly (see [`load_report_with`]).
pub fn load_report(
    path: &Path,
    tag: &str,
    class: ReportClass,
    provenance: Provenance,
) -> Result<Report, String> {
    load_report_with(path, tag, class, provenance, ParseMode::Strict).map(|(report, _)| report)
}

/// Write an address set to a file, one per line with a header comment.
pub fn write_addresses(path: &Path, set: &IpSet, comment: &str) -> Result<(), String> {
    let mut out = std::fs::File::create(path)
        .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let mut buf = String::with_capacity(set.len() * 16);
    buf.push_str(&format!("# {comment}\n"));
    for ip in set.iter() {
        buf.push_str(&ip.to_string());
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())
        .map_err(|e| format!("write {}: {e}", path.display()))
}

/// Parse a report-class name.
pub fn parse_class(s: &str) -> Result<ReportClass, String> {
    match s.to_ascii_lowercase().as_str() {
        "bots" | "bot" => Ok(ReportClass::Bots),
        "phishing" | "phish" => Ok(ReportClass::Phishing),
        "scanning" | "scan" => Ok(ReportClass::Scanning),
        "spamming" | "spam" => Ok(ReportClass::Spamming),
        "control" => Ok(ReportClass::Control),
        other => Err(format!(
            "unknown class {other:?} (expected bot|phish|scan|spam|control)"
        )),
    }
}

/// Parse a blocklist format name.
pub fn parse_format(s: &str) -> Result<BlocklistFormat, String> {
    match s.to_ascii_lowercase().as_str() {
        "plain" => Ok(BlocklistFormat::Plain),
        "cisco" | "acl" => Ok(BlocklistFormat::CiscoAcl),
        "iptables" => Ok(BlocklistFormat::Iptables),
        other => Err(format!(
            "unknown format {other:?} (expected plain|cisco|iptables)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_basic_file() {
        let text = "# comment\n8.8.8.8\n\n1.2.3.4\n  9.9.9.9  \n";
        let (set, ignored) = parse_addresses(Cursor::new(text)).expect("valid");
        assert_eq!(set.len(), 3);
        assert_eq!(ignored, 2);
        assert!(set.contains("1.2.3.4".parse().expect("ok")));
    }

    #[test]
    fn parse_rejects_malformed_with_line_number() {
        let text = "8.8.8.8\nnot-an-ip\n";
        let err = parse_addresses(Cursor::new(text)).expect_err("malformed");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn lenient_quarantines_with_line_numbers() {
        let text = "8.8.8.8\nnot-an-ip\n# fine\n1.2.3.4\n999.1.1.1\n";
        let (set, ignored, q) =
            parse_addresses_with(Cursor::new(text), ParseMode::Lenient { max_bad: 10 })
                .expect("within budget");
        assert_eq!(set.len(), 2, "valid addresses still load");
        assert_eq!(ignored, 1);
        assert_eq!(q.total_bad, 2);
        assert_eq!(q.bad[0].0, 2, "first offender's line number");
        assert_eq!(q.bad[1].0, 5);
        let summary = q.summary();
        assert!(summary.contains("line 2"), "{summary}");
        assert!(summary.contains("quarantined 2"), "{summary}");
    }

    #[test]
    fn lenient_fails_past_error_budget() {
        let text = "bad1\nbad2\nbad3\n1.1.1.1\n";
        let err = parse_addresses_with(Cursor::new(text), ParseMode::Lenient { max_bad: 2 })
            .expect_err("over budget");
        assert!(err.contains("--max-bad budget of 2"), "{err}");
        assert!(err.contains("line 1"), "{err}");
        // Exactly at the budget is still fine.
        let (set, _, q) =
            parse_addresses_with(Cursor::new(text), ParseMode::Lenient { max_bad: 3 })
                .expect("at budget");
        assert_eq!(set.len(), 1);
        assert_eq!(q.total_bad, 3);
    }

    #[test]
    fn quarantine_detail_is_capped() {
        let mut text = String::new();
        for i in 0..40 {
            text.push_str(&format!("junk-{i}\n"));
        }
        let (_, _, q) =
            parse_addresses_with(Cursor::new(text), ParseMode::Lenient { max_bad: 100 })
                .expect("within budget");
        assert_eq!(q.total_bad, 40);
        assert_eq!(q.bad.len(), 20, "detail capped");
        assert!(q.summary().contains("and 20 more"));
    }

    #[test]
    fn strict_mode_unchanged_by_quarantine_machinery() {
        let text = "8.8.8.8\nnot-an-ip\n";
        let err =
            parse_addresses_with(Cursor::new(text), ParseMode::Strict).expect_err("strict aborts");
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parse_dedups() {
        let text = "1.1.1.1\n1.1.1.1\n";
        let (set, _) = parse_addresses(Cursor::new(text)).expect("valid");
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn round_trip_through_files() {
        let dir = std::env::temp_dir().join("unclean-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("report.txt");
        let set = IpSet::from_raw(vec![1, 2, 0xffff_ffff]);
        write_addresses(&path, &set, "test report").expect("write");
        let report =
            load_report(&path, "t", ReportClass::Bots, Provenance::Provided).expect("load");
        assert_eq!(report.addresses(), &set);
        assert_eq!(report.tag(), "t");
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn load_rejects_empty() {
        let dir = std::env::temp_dir().join("unclean-cli-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("empty.txt");
        std::fs::write(&path, "# nothing\n").expect("write");
        let err = load_report(&path, "t", ReportClass::Bots, Provenance::Provided)
            .expect_err("empty report");
        assert!(err.contains("no addresses"));
        std::fs::remove_file(&path).expect("cleanup");
    }

    #[test]
    fn class_and_format_parsing() {
        assert_eq!(parse_class("BOT").expect("ok"), ReportClass::Bots);
        assert_eq!(parse_class("phish").expect("ok"), ReportClass::Phishing);
        assert!(parse_class("nonsense").is_err());
        assert_eq!(
            parse_format("cisco").expect("ok"),
            BlocklistFormat::CiscoAcl
        );
        assert!(parse_format("xml").is_err());
    }
}
