//! `unclean` — run the uncleanliness analyses of Collins et al. (IMC 2007)
//! on your own IP report files.
//!
//! ```text
//! unclean demo --out demo-reports --scale 0.002
//! unclean inspect demo-reports/bot.txt
//! unclean spatial  --report demo-reports/bot.txt --control demo-reports/control.txt
//! unclean temporal --past demo-reports/bot-test.txt --present demo-reports/spam.txt \
//!                  --control demo-reports/control.txt
//! unclean blocklist --report demo-reports/bot-test.txt --format cisco --aggregate
//! unclean score --report bot=demo-reports/bot.txt --report spam=demo-reports/spam.txt
//! ```
//!
//! Report files are one IPv4 address per line; `#` comments and blank
//! lines are ignored.

mod commands;
mod forecast;
mod ingest;
mod io;

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
unclean — uncleanliness analyses over IP report files (Collins et al., IMC 2007)

USAGE:
  unclean inspect <file> [--lenient] [--max-bad N] [--verbose]
  unclean archive index <file> [--out PATH]
  unclean spatial   --report <file> --control <file> [--trials N] [--seed N]
  unclean temporal  --past <file> --present <file> --control <file> [--trials N] [--seed N]
  unclean blocklist --report <file> [--prefix 24] [--format plain|cisco|iptables] [--aggregate]
  unclean blocklist freeze <scored-list> --out <snapshot>
  unclean snapshot  inspect <snapshot>
  unclean score     --report <class>=<file> ... [--prefix 16]
  unclean demo      [--out DIR] [--scale 0.002] [--seed 42]
  unclean metrics   <telemetry.json|metrics.prom> [--assert-zero name1,name2]
  unclean metrics   --diff <a.prom> <b.prom> [--interval-secs S]
  unclean serve     --blocklist <file|snapshot> [--forecast <file>] [--addr 127.0.0.1:7053]
                    [--threads 4] [--max-conns 1024] [--read-timeout-ms 5000]
                    [--watch] [--stale-after-secs N] [--degraded-after-secs N]
                    [--trace-sample N] [--trace-events 4096] [--history-ms 2000]
                    [--max-requests-per-conn 100000]
  unclean forecast  synth --out <spool.flows> [--scale 0.002] [--seed 42]
                    [--days 60] [--benign]
  unclean forecast  fit --archive <spool.flows> [--out forecast.txt]
                    [--horizon 7] [--level-half-life 7] [--trend-half-life 14]
                    [--neighbor-weight 0.15] [--threads 0] [--generation 1]
                    [--name NAME] [--telemetry telemetry.json]
  unclean forecast  eval --archive <spool.flows> [--train-days 0=auto]
                    [--horizon 7] [--threads 0] [--assert-beats-persistence]
  unclean forecast  simulate [--scale 0.02] [--seed 42] [--days 280]
                    [--remediate-day 140] [--compliance 0.8] [--hygiene-lift 0.7]
                    [--targets 24] [--period-days 28] [--threads 0]
  unclean ingest    --spool <dir> --out <file> [--bind 127.0.0.1:9995]
                    [--control 127.0.0.1:7055] [--rescore-ms 2000]
                    [--ring-capacity 65536] [--shed oldest|newest] [--prefix 24]
                    [--min-score 0] [--threads 0] [--retries 3] [--backoff-ms 200]
                    [--deadline-secs N] [--stale-after-secs 15]
                    [--degraded-after-secs 60] [--trace-events 4096]
                    [--history-ms 2000]
  unclean replay    --to <host:port> [--archive <file> | --synth 20000]
                    [--faults none|adverse] [--seed 42] [--pace-ms 0]
  unclean trace     export <addr|events.json> [--out FILE]
  unclean top       <addr> [--interval-ms 2000] [--iterations 0] [--no-clear]

'serve' and 'ingest' both record causally-linked trace events onto a
bounded ring: 'unclean trace export 127.0.0.1:7053 --out t.json' saves a
chrome://tracing / Perfetto trace; 'unclean top' tails a daemon's
/metrics/history flight recorder as a terminal dashboard. --trace-sample N
head-samples 1-in-N serve requests with per-stage timings (0 = off).

'blocklist freeze' writes a scored list as an mmap-able frozen-trie
snapshot; 'serve --blocklist' auto-detects snapshot files by magic and
maps them in O(1) instead of parsing. 'snapshot inspect' prints a
snapshot's header, geometry, provenance and CRC verification. The serve
daemon speaks HTTP/1.1 keep-alive (and pipelining) plus a binary batch
protocol on POST /batch-bin for bulk verdicts.

Report files: one IPv4 address per line; '#' comments and blanks ignored.
Malformed lines abort the load; 'inspect --lenient' quarantines them
instead (reported with line numbers), failing only past --max-bad (default
100).

'inspect' also recognizes flow archives (v2 indexed or legacy v1 framed)
and prints a per-day replay summary instead; --lenient quarantines damaged
v2 segments, --verbose adds the peak replay buffer size. 'archive index'
prints a v2 archive's footer index, or upgrades a v1 archive in place of
an index.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Dispatch a full argument vector; returns the output text.
fn run(args: &[String]) -> Result<String, String> {
    let mut it = args.iter();
    let command = it.next().ok_or("missing subcommand")?;
    let rest: Vec<&String> = it.collect();
    match command.as_str() {
        "inspect" => {
            let path = positional(&rest, 0, "report file")?;
            let mode = if has_flag(&rest, "--lenient") {
                io::ParseMode::Lenient {
                    max_bad: flag_num(&rest, "--max-bad", 100usize)?,
                }
            } else {
                if flag_value(&rest, "--max-bad").is_some() {
                    return Err("--max-bad only applies with --lenient".into());
                }
                io::ParseMode::Strict
            };
            commands::inspect(&PathBuf::from(path), mode, has_flag(&rest, "--verbose"))
        }
        "archive" => match positional(&rest, 0, "archive action (index)")? {
            "index" => commands::archive_index(
                &PathBuf::from(positional(&rest, 1, "archive file")?),
                flag_value(&rest, "--out").map(PathBuf::from).as_deref(),
            ),
            other => Err(format!("unknown archive action {other:?} (want: index)")),
        },
        "spatial" => commands::spatial(
            &flag_path(&rest, "--report")?,
            &flag_path(&rest, "--control")?,
            flag_num(&rest, "--trials", 200)?,
            flag_num(&rest, "--seed", 42)?,
        ),
        "temporal" => commands::temporal(
            &flag_path(&rest, "--past")?,
            &flag_path(&rest, "--present")?,
            &flag_path(&rest, "--control")?,
            flag_num(&rest, "--trials", 200)?,
            flag_num(&rest, "--seed", 42)?,
        ),
        "blocklist" => {
            if rest.first().map(|a| a.as_str()) == Some("freeze") {
                return commands::blocklist_freeze(
                    &PathBuf::from(positional(&rest, 1, "scored blocklist file")?),
                    &flag_path(&rest, "--out")?,
                );
            }
            commands::blocklist(
                &flag_path(&rest, "--report")?,
                flag_num(&rest, "--prefix", 24u8)?,
                &flag_str(&rest, "--format", "plain"),
                has_flag(&rest, "--aggregate"),
            )
        }
        "snapshot" => match positional(&rest, 0, "snapshot action (inspect)")? {
            "inspect" => {
                commands::snapshot_inspect(&PathBuf::from(positional(&rest, 1, "snapshot file")?))
            }
            other => Err(format!("unknown snapshot action {other:?} (want: inspect)")),
        },
        "score" => {
            let mut inputs = Vec::new();
            for value in flag_all(&rest, "--report") {
                let (class, path) = value
                    .split_once('=')
                    .ok_or_else(|| format!("--report wants class=path, got {value:?}"))?;
                inputs.push((class.to_string(), PathBuf::from(path)));
            }
            commands::score(&inputs, flag_num(&rest, "--prefix", 16u8)?)
        }
        "demo" => commands::demo(
            &PathBuf::from(flag_str(&rest, "--out", "demo-reports")),
            flag_num(&rest, "--scale", 0.002f64)?,
            flag_num(&rest, "--seed", 42u64)?,
        ),
        "metrics" => {
            if let Some(i) = rest.iter().position(|a| a.as_str() == "--diff") {
                let a = rest
                    .get(i + 1)
                    .ok_or("--diff wants two .prom files: --diff a.prom b.prom")?;
                let b = rest
                    .get(i + 2)
                    .filter(|v| !v.starts_with("--"))
                    .ok_or("--diff wants two .prom files: --diff a.prom b.prom")?;
                return commands::metrics_diff(
                    &PathBuf::from(a.as_str()),
                    &PathBuf::from(b.as_str()),
                    flag_opt_num(&rest, "--interval-secs")?,
                );
            }
            let path = positional(&rest, 0, "telemetry file")?;
            let assert_zero: Vec<String> = flag_value(&rest, "--assert-zero")
                .map(|v| v.split(',').map(|s| s.trim().to_string()).collect())
                .unwrap_or_default();
            commands::metrics(&PathBuf::from(path), &assert_zero)
        }
        "serve" => commands::serve(
            &flag_path(&rest, "--blocklist")?,
            &flag_str(&rest, "--addr", "127.0.0.1:7053"),
            flag_num(&rest, "--threads", 4usize)?,
            flag_num(&rest, "--max-conns", 1024usize)?,
            flag_num(&rest, "--read-timeout-ms", 5000u64)?,
            has_flag(&rest, "--watch"),
            commands::ServeTuning {
                forecast: flag_value(&rest, "--forecast").map(PathBuf::from),
                stale_after_secs: flag_opt_num(&rest, "--stale-after-secs")?,
                degraded_after_secs: flag_opt_num(&rest, "--degraded-after-secs")?,
                trace_sample: flag_num(&rest, "--trace-sample", 0u64)?,
                trace_events: flag_num(&rest, "--trace-events", 4096usize)?,
                history_ms: flag_num(&rest, "--history-ms", 2000u64)?,
                max_requests_per_conn: flag_num(&rest, "--max-requests-per-conn", 100_000u64)?,
            },
        ),
        "forecast" => match positional(&rest, 0, "forecast action (synth|fit|eval|simulate)")? {
            "synth" => forecast::synth(&forecast::SynthOpts {
                out: flag_path(&rest, "--out")?,
                scale: flag_num(&rest, "--scale", 0.002f64)?,
                seed: flag_num(&rest, "--seed", 42u64)?,
                days: flag_num(&rest, "--days", 60u32)?,
                benign: has_flag(&rest, "--benign"),
            }),
            "fit" => forecast::fit(&forecast::FitOpts {
                archive: flag_path(&rest, "--archive")?,
                out: PathBuf::from(flag_str(&rest, "--out", "forecast.txt")),
                model: forecast_model_opts(&rest)?,
                generation: flag_num(&rest, "--generation", 1u64)?,
                name: flag_str(&rest, "--name", "unclean-forecast"),
                telemetry: flag_value(&rest, "--telemetry").map(PathBuf::from),
            }),
            "eval" => forecast::eval(
                &flag_path(&rest, "--archive")?,
                flag_num(&rest, "--train-days", 0usize)?,
                &forecast_model_opts(&rest)?,
                has_flag(&rest, "--assert-beats-persistence"),
            ),
            "simulate" => forecast::simulate(&unclean_forecast::SimulateConfig {
                scale: flag_num(&rest, "--scale", 0.02f64)?,
                seed: flag_num(&rest, "--seed", 42u64)?,
                days: flag_num(&rest, "--days", 280u32)?,
                remediate_day: flag_num(&rest, "--remediate-day", 140i32)?,
                compliance: flag_num(&rest, "--compliance", 0.8f64)?,
                hygiene_lift: flag_num(&rest, "--hygiene-lift", 0.7f64)?,
                targets: flag_num(&rest, "--targets", 24usize)?,
                period_days: flag_num(&rest, "--period-days", 28u32)?,
                threads: flag_num(&rest, "--threads", 0usize)?,
                ..unclean_forecast::SimulateConfig::default()
            }),
            other => Err(format!(
                "unknown forecast action {other:?} (want: synth|fit|eval|simulate)"
            )),
        },
        "trace" => match positional(&rest, 0, "trace action (export)")? {
            "export" => commands::trace_export(
                positional(&rest, 1, "daemon address or events.json file")?,
                flag_value(&rest, "--out").map(PathBuf::from).as_deref(),
            ),
            other => Err(format!("unknown trace action {other:?} (want: export)")),
        },
        "top" => commands::top(
            positional(&rest, 0, "daemon address")?,
            flag_num(&rest, "--interval-ms", 2000u64)?,
            flag_num(&rest, "--iterations", 0u64)?,
            has_flag(&rest, "--no-clear"),
        ),
        "ingest" => ingest::ingest(&ingest::IngestOpts {
            spool_dir: flag_path(&rest, "--spool")?,
            out: flag_path(&rest, "--out")?,
            bind: flag_str(&rest, "--bind", "127.0.0.1:9995"),
            control: flag_str(&rest, "--control", "127.0.0.1:7055"),
            rescore_ms: flag_num(&rest, "--rescore-ms", 2000u64)?,
            ring_capacity: flag_num(&rest, "--ring-capacity", 65_536usize)?,
            shed: flag_num(&rest, "--shed", unclean_flowgen::ShedPolicy::DropOldest)?,
            prefix_len: flag_num(&rest, "--prefix", 24u8)?,
            min_score: flag_num(&rest, "--min-score", 0.0f64)?,
            threads: flag_num(&rest, "--threads", 0usize)?,
            retries: flag_num(&rest, "--retries", 3u32)?,
            backoff_ms: flag_num(&rest, "--backoff-ms", 200u64)?,
            deadline_secs: flag_opt_num(&rest, "--deadline-secs")?,
            stale_after_secs: flag_num(&rest, "--stale-after-secs", 15u64)?,
            degraded_after_secs: flag_num(&rest, "--degraded-after-secs", 60u64)?,
            boot_unix_secs: unclean_flowgen::record::EPOCH_UNIX_SECS,
            fail_attempts: flag_num(&rest, "--fail-attempts", 0u32)?,
            trace_events: flag_num(&rest, "--trace-events", 4096usize)?,
            history_ms: flag_num(&rest, "--history-ms", 2000u64)?,
        }),
        "replay" => ingest::replay(&ingest::ReplayOpts {
            to: flag_value(&rest, "--to")
                .ok_or("missing required --to <host:port>")?
                .to_string(),
            archive: flag_value(&rest, "--archive").map(PathBuf::from),
            synth: flag_num(&rest, "--synth", 20_000u64)?,
            faults: match flag_str(&rest, "--faults", "none").as_str() {
                "none" => unclean_flowgen::FaultConfig::default(),
                "adverse" => unclean_flowgen::FaultConfig::adverse(),
                other => return Err(format!("--faults wants none|adverse, got {other:?}")),
            },
            seed: flag_num(&rest, "--seed", 42u64)?,
            pace_ms: flag_num(&rest, "--pace-ms", 0u64)?,
            boot_unix_secs: unclean_flowgen::record::EPOCH_UNIX_SECS,
        }),
        "--help" | "-h" | "help" => Ok(format!("{USAGE}\n")),
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The forecaster tunables `forecast fit` and `forecast eval` share.
fn forecast_model_opts(rest: &[&String]) -> Result<forecast::ModelOpts, String> {
    Ok(forecast::ModelOpts {
        horizon: flag_num(rest, "--horizon", 7u32)?,
        level_half_life: flag_num(rest, "--level-half-life", 7.0f64)?,
        trend_half_life: flag_num(rest, "--trend-half-life", 14.0f64)?,
        neighbor_weight: flag_num(rest, "--neighbor-weight", 0.15f64)?,
        threads: flag_num(rest, "--threads", 0usize)?,
    })
}

fn positional<'a>(rest: &[&'a String], idx: usize, what: &str) -> Result<&'a str, String> {
    rest.get(idx)
        .map(|s| s.as_str())
        .ok_or_else(|| format!("missing {what}"))
}

fn flag_value<'a>(rest: &[&'a String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a.as_str() == flag)
        .and_then(|i| rest.get(i + 1))
        .map(|s| s.as_str())
}

fn flag_all<'a>(rest: &[&'a String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].as_str() == flag {
            if let Some(v) = rest.get(i + 1) {
                out.push(v.as_str());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn flag_path(rest: &[&String], flag: &str) -> Result<PathBuf, String> {
    flag_value(rest, flag)
        .map(PathBuf::from)
        .ok_or_else(|| format!("missing required {flag} <file>"))
}

fn flag_str(rest: &[&String], flag: &str, default: &str) -> String {
    flag_value(rest, flag).unwrap_or(default).to_string()
}

fn flag_num<T: std::str::FromStr>(rest: &[&String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(rest, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag} got unparseable value {v:?}")),
    }
}

fn flag_opt_num<T: std::str::FromStr>(rest: &[&String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(rest, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} got unparseable value {v:?}")),
    }
}

fn has_flag(rest: &[&String], flag: &str) -> bool {
    rest.iter().any(|a| a.as_str() == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).expect("ok");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&argv("frobnicate")).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn missing_required_flag_errors() {
        let err = run(&argv("spatial --report x.txt")).expect_err("no control");
        assert!(err.contains("--control"), "{err}");
    }

    #[test]
    fn bad_number_errors() {
        let err =
            run(&argv("spatial --report a --control b --trials lots")).expect_err("bad trials");
        assert!(err.contains("--trials"), "{err}");
    }

    #[test]
    fn inspect_lenient_flags_parse_and_bind() {
        let dir = std::env::temp_dir().join("unclean-cli-lenient");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("mixed.txt");
        std::fs::write(&path, "9.1.1.1\ngarbage\n9.1.1.2\n").expect("write");
        let p = path.to_string_lossy().to_string();
        // Strict (default) aborts.
        let err = run(&argv(&format!("inspect {p}"))).expect_err("strict aborts");
        assert!(err.contains("line 2"), "{err}");
        // Lenient quarantines and succeeds.
        let out = run(&argv(&format!("inspect {p} --lenient"))).expect("lenient ok");
        assert!(out.contains("quarantined 1"), "{out}");
        // Budget of zero fails past the first bad line.
        let err =
            run(&argv(&format!("inspect {p} --lenient --max-bad 0"))).expect_err("budget binds");
        assert!(err.contains("--max-bad"), "{err}");
        // --max-bad without --lenient is a usage error.
        let err = run(&argv(&format!("inspect {p} --max-bad 5"))).expect_err("usage");
        assert!(err.contains("--lenient"), "{err}");
        // Unparseable budget is a usage error.
        let err = run(&argv(&format!("inspect {p} --lenient --max-bad lots"))).expect_err("usage");
        assert!(err.contains("--max-bad"), "{err}");
    }

    #[test]
    fn inspect_and_index_flow_archives() {
        use unclean_flowgen::{ArchiveWriter, Flow, IndexedArchiveWriter};
        let dir = std::env::temp_dir().join("unclean-cli-archive");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let boot = unclean_flowgen::record::EPOCH_UNIX_SECS;
        let flow = |day: i64, i: u32| Flow {
            src: unclean_core::Ip(0x0901_0000 + i),
            dst: unclean_core::Ip(0x1e00_0001),
            src_port: 1024,
            dst_port: 80,
            proto: 6,
            packets: 3,
            octets: 200,
            flags: 0x12,
            start_secs: day * 86_400 + i64::from(i),
            duration_secs: 1,
        };

        // v2: per-day rows, totals, and --verbose peak buffer.
        let mut w2 = IndexedArchiveWriter::new(Vec::new(), boot);
        for day in 0..3i64 {
            for i in 0..40u32 {
                w2.push(&flow(day, i)).expect("push");
            }
        }
        let (v2_bytes, _) = w2.finish().expect("finish");
        let v2_path = dir.join("spool.flows");
        std::fs::write(&v2_path, &v2_bytes).expect("write");
        let p2 = v2_path.to_string_lossy().to_string();
        let out = run(&argv(&format!("inspect {p2}"))).expect("v2 inspect");
        assert!(out.contains("v2 indexed flow archive"), "{out}");
        assert!(out.contains("total: 120 flows"), "{out}");
        let out = run(&argv(&format!("inspect {p2} --verbose"))).expect("verbose");
        assert!(out.contains("peak segment buffer"), "{out}");
        let out = run(&argv(&format!("archive index {p2}"))).expect("v2 index");
        assert!(out.contains("across 3 segment(s)"), "{out}");

        // A corrupt middle segment aborts strict inspect but is
        // quarantined under --lenient.
        let mut damaged = v2_bytes.clone();
        let seg1 = {
            let archive = unclean_flowgen::IndexedArchive::open(&v2_bytes)
                .expect("open")
                .expect("v2");
            archive.segments()[1]
        };
        damaged[seg1.offset as usize] ^= 0xff;
        let bad_path = dir.join("damaged.flows");
        std::fs::write(&bad_path, &damaged).expect("write");
        let pb = bad_path.to_string_lossy().to_string();
        let err = run(&argv(&format!("inspect {pb}"))).expect_err("strict aborts");
        assert!(err.contains("segment 1"), "{err}");
        let out = run(&argv(&format!("inspect {pb} --lenient"))).expect("lenient ok");
        assert!(out.contains("quarantined 1 segment(s)"), "{out}");
        assert!(out.contains("total: 80 flows"), "{out}");

        // v1: sequential summary, then `archive index` upgrades it and the
        // upgrade inspects as v2 with the same flow count.
        let mut w1 = ArchiveWriter::new(Vec::new(), boot);
        for day in 0..2i64 {
            for i in 0..35u32 {
                w1.push(&flow(day, i)).expect("push");
            }
        }
        let (v1_bytes, _) = w1.finish().expect("finish");
        let v1_path = dir.join("legacy.flows");
        std::fs::write(&v1_path, &v1_bytes).expect("write");
        let p1 = v1_path.to_string_lossy().to_string();
        let out = run(&argv(&format!("inspect {p1}"))).expect("v1 inspect");
        assert!(out.contains("v1 framed flow archive"), "{out}");
        assert!(out.contains("total: 70 flows"), "{out}");
        let up_path = dir.join("legacy.v2");
        let up = up_path.to_string_lossy().to_string();
        let out = run(&argv(&format!("archive index {p1} --out {up}"))).expect("upgrade");
        assert!(out.contains("upgraded"), "{out}");
        let out = run(&argv(&format!("inspect {up}"))).expect("upgraded inspect");
        assert!(out.contains("v2 indexed flow archive"), "{out}");
        assert!(out.contains("total: 70 flows"), "{out}");
    }

    #[test]
    fn blocklist_freeze_and_snapshot_inspect_round_trip() {
        let dir = std::env::temp_dir().join("unclean-cli-freeze");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let list = dir.join("scored.txt");
        std::fs::write(
            &list,
            "9.1.0.0/16 # score=2.5\n203.0.113.0/24 # score=1.0\n",
        )
        .expect("write");
        let snap = dir.join("scored.snap");
        let (l, s) = (
            list.to_string_lossy().to_string(),
            snap.to_string_lossy().to_string(),
        );
        let out = run(&argv(&format!("blocklist freeze {l} --out {s}"))).expect("freeze");
        assert!(out.contains("froze 2 entries"), "{out}");
        let out = run(&argv(&format!("snapshot inspect {s}"))).expect("inspect");
        assert!(out.contains("OK"), "{out}");
        assert!(out.contains("2 x 16 B"), "{out}");
        // A flipped byte in the node section fails CRC verification.
        let mut bytes = std::fs::read(&snap).expect("read");
        bytes[4096] ^= 0xff;
        std::fs::write(&snap, &bytes).expect("rewrite");
        let err = run(&argv(&format!("snapshot inspect {s}"))).expect_err("corrupt");
        assert!(err.contains("MISMATCH"), "{err}");
        // A non-snapshot file is refused outright.
        let err = run(&argv(&format!("snapshot inspect {l}"))).expect_err("not a snapshot");
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn end_to_end_demo_then_analyses() {
        let dir = std::env::temp_dir().join("unclean-cli-e2e");
        let dir_s = dir.to_string_lossy().to_string();
        let out =
            run(&argv(&format!("demo --out {dir_s} --scale 0.001 --seed 9"))).expect("demo runs");
        assert!(out.contains("control.txt"));

        let out = run(&argv(&format!("inspect {dir_s}/bot.txt"))).expect("inspect runs");
        assert!(out.contains("addresses"));

        let out = run(&argv(&format!(
            "spatial --report {dir_s}/bot.txt --control {dir_s}/control.txt --trials 30"
        )))
        .expect("spatial runs");
        assert!(out.contains("Eq. 3"));
        assert!(out.contains("HOLDS"), "{out}");

        let out = run(&argv(&format!(
            "temporal --past {dir_s}/bot-test.txt --present {dir_s}/spam.txt \
             --control {dir_s}/control.txt --trials 30"
        )))
        .expect("temporal runs");
        assert!(out.contains("Eq. 5"));

        let out = run(&argv(&format!(
            "blocklist --report {dir_s}/bot-test.txt --format iptables"
        )))
        .expect("blocklist runs");
        assert!(out.contains("iptables -A INPUT"));

        let out = run(&argv(&format!(
            "score --report bot={dir_s}/bot.txt --report spam={dir_s}/spam.txt"
        )))
        .expect("score runs");
        assert!(out.contains("networks scored"));
    }
}
