//! The CLI subcommands, factored out of `main` so they can be tested
//! without spawning processes. Every command returns its human-readable
//! output as a `String` (plus side-effect files where documented).

use crate::io::{
    load_report, load_report_with, parse_class, parse_format, write_addresses, ParseMode,
};
use std::fmt::Write as _;
use std::path::Path;
use unclean_core::prelude::*;
use unclean_stats::SeedTree;

/// `unclean inspect <file> [--lenient [--max-bad N]] [--verbose]`: sniff
/// and profile one file. Flow archives (v2 indexed or v1 framed) get a
/// per-day replay summary; anything else is parsed as an IP report.
/// Lenient mode quarantines malformed report lines — or, for a v2
/// archive, damaged segments — and reports them instead of aborting.
pub fn inspect(path: &Path, mode: ParseMode, verbose: bool) -> Result<String, String> {
    match sniff_archive(path)? {
        ArchiveKind::V2 => return inspect_archive_v2(path, mode, verbose),
        ArchiveKind::V1 => return inspect_archive_v1(path, verbose),
        ArchiveKind::NotAnArchive => {}
    }
    inspect_report(path, mode)
}

/// What the leading/trailing bytes of a file say it is.
enum ArchiveKind {
    V2,
    V1,
    NotAnArchive,
}

/// Cheap archive sniff: the v2 trailer magic, else a plausible v1 frame
/// leading with the V5 version word. Reads at most a few bytes.
fn sniff_archive(path: &Path) -> Result<ArchiveKind, String> {
    use std::io::{Read as _, Seek as _, SeekFrom};
    let mut file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let len = file
        .seek(SeekFrom::End(0))
        .map_err(|e| format!("cannot seek {}: {e}", path.display()))?;
    let read_at = |file: &mut std::fs::File, at: u64, buf: &mut [u8]| -> Result<(), String> {
        file.seek(SeekFrom::Start(at))
            .and_then(|_| file.read_exact(buf))
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let magic_len = unclean_flowgen::indexed::ARCHIVE_MAGIC.len() as u64;
    if len >= magic_len {
        let mut tail = [0u8; 7];
        read_at(&mut file, len - magic_len, &mut tail)?;
        if tail == *unclean_flowgen::indexed::ARCHIVE_MAGIC {
            return Ok(ArchiveKind::V2);
        }
    }
    if len >= 4 {
        let mut head = [0u8; 4];
        read_at(&mut file, 0, &mut head)?;
        let frame = u16::from_be_bytes([head[0], head[1]]) as u64;
        if head[2] == 0 && head[3] == 5 && frame >= 24 && 2 + frame <= len {
            return Ok(ArchiveKind::V1);
        }
    }
    Ok(ArchiveKind::NotAnArchive)
}

/// Streaming per-day summary of a v2 indexed archive: one bounded buffer,
/// one row per segment. `--lenient` quarantines damaged segments (up to
/// the `--max-bad` budget) and keeps going.
fn inspect_archive_v2(path: &Path, mode: ParseMode, verbose: bool) -> Result<String, String> {
    use unclean_flowgen::{ArchiveTelemetry, SegmentCursor, SegmentReader};
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut reader = SegmentReader::open(file)
        .map_err(|e| format!("{}: {e}", path.display()))?
        .ok_or_else(|| format!("{}: trailer vanished mid-read", path.display()))?;
    let index = reader.index().clone();
    let budget = match mode {
        ParseMode::Strict => None,
        ParseMode::Lenient { max_bad } => Some(max_bad),
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: v2 indexed flow archive, {} segment(s), boot {}",
        path.display(),
        index.segments.len(),
        index.boot_unix_secs
    );
    let _ = writeln!(
        out,
        "{:>12}  {:>10}  {:>10}  {:>12}  {:>6}  {:>10}",
        "day", "flows", "datagrams", "bytes", "gaps", "lost"
    );
    let mut totals = ArchiveTelemetry::default();
    let mut quarantined: Vec<(usize, String)> = Vec::new();
    // Per-day decode-buffer high-water mark: the largest segment the
    // reusable segment buffer must hold to replay that day. Days are
    // decoded one segment at a time, so this — not the day's total
    // bytes — is the replay memory a day costs.
    let mut day_peak: std::collections::BTreeMap<i32, u64> = std::collections::BTreeMap::new();
    for (i, info) in index.segments.iter().enumerate() {
        let peak = day_peak.entry(info.day.0).or_insert(0);
        *peak = (*peak).max(info.len);
        // Contiguous walk: carry the previous segment's exit sequence so
        // gap accounting matches a sequential v1-style read.
        let entry = (i > 0).then(|| index.segments[i - 1].end_seq);
        let walked: Result<ArchiveTelemetry, String> = reader
            .load_segment(i)
            .map_err(|e| e.to_string())
            .and_then(|seg| {
                let mut cursor = SegmentCursor::new(seg, index.boot_unix_secs, entry);
                cursor
                    .for_each_flow(|_| {})
                    .map_err(|e| e.to_string())
                    .map(|()| cursor.telemetry())
            });
        match walked {
            Ok(t) => {
                totals.accumulate(&t);
                let _ = writeln!(
                    out,
                    "{:>12}  {:>10}  {:>10}  {:>12}  {:>6}  {:>10}",
                    info.day.to_string(),
                    t.flows,
                    t.datagrams,
                    info.len,
                    t.sequence_gaps,
                    t.lost_flows
                );
            }
            Err(detail) => {
                if budget.is_none() {
                    return Err(format!("segment {i} ({}): {detail}", info.day));
                }
                quarantined.push((i, detail));
                if quarantined.len() > budget.unwrap_or(0) {
                    return Err(format!(
                        "{} damaged segment(s) exceeds --max-bad {}",
                        quarantined.len(),
                        budget.unwrap_or(0)
                    ));
                }
                let _ = writeln!(
                    out,
                    "{:>12}  {:>10}  {:>10}  {:>12}  {:>6}  {:>10}",
                    info.day.to_string(),
                    "-",
                    "-",
                    info.len,
                    "-",
                    "-"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "total: {} flows, {} datagrams, {} gap(s), {} lost, {} reordered",
        totals.flows, totals.datagrams, totals.sequence_gaps, totals.lost_flows, totals.reordered
    );
    if !quarantined.is_empty() {
        let _ = writeln!(out, "quarantined {} segment(s):", quarantined.len());
        for (i, detail) in &quarantined {
            let _ = writeln!(out, "  segment {i}: {detail}");
        }
    }
    if verbose {
        let _ = writeln!(
            out,
            "peak segment buffer: {} bytes (largest indexed segment: {} bytes)",
            reader.peak_buffer_bytes(),
            index.max_segment_len()
        );
        let _ = writeln!(out, "per-day peak decode buffer:");
        let _ = writeln!(out, "{:>12}  {:>14}", "day", "peak bytes");
        for (day, peak) in &day_peak {
            let _ = writeln!(out, "{:>12}  {:>14}", Day(*day).to_string(), peak);
        }
    }
    Ok(out)
}

/// Sequential per-day summary of a legacy v1 framed archive.
fn inspect_archive_v1(path: &Path, verbose: bool) -> Result<String, String> {
    use std::collections::BTreeMap;
    use unclean_flowgen::ArchiveReader;
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    // The v1 writer stamps its boot anchor into every header's unix_secs
    // field; recover it from the first frame (offset 2 skips the length,
    // 8 skips version/count/uptime).
    let boot = u32::from_be_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    let mut reader = ArchiveReader::new(bytes.as_slice(), boot);
    let mut per_day: BTreeMap<i32, u64> = BTreeMap::new();
    loop {
        match reader.next_datagram() {
            Ok(Some(batch)) => {
                for flow in &batch {
                    *per_day.entry(flow.day().0).or_default() += 1;
                }
            }
            Ok(None) => break,
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }
    let telemetry = reader.telemetry();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: v1 framed flow archive (no index — sequential read), boot {boot}",
        path.display()
    );
    let _ = writeln!(out, "{:>12}  {:>10}", "day", "flows");
    for (day, flows) in &per_day {
        let _ = writeln!(
            out,
            "{:>12}  {flows:>10}",
            unclean_core::Day(*day).to_string()
        );
    }
    let _ = writeln!(
        out,
        "total: {} flows, {} datagrams, {} gap(s), {} lost, {} reordered",
        telemetry.flows,
        telemetry.datagrams,
        telemetry.sequence_gaps,
        telemetry.lost_flows,
        telemetry.reordered
    );
    if verbose {
        let _ = writeln!(
            out,
            "whole archive buffered: {} bytes (v1 has no segment index; \
             run `unclean archive index` to upgrade)",
            bytes.len()
        );
    }
    Ok(out)
}

/// The original report-file profile.
fn inspect_report(path: &Path, mode: ParseMode) -> Result<String, String> {
    let (report, quarantine) = load_report_with(
        path,
        "report",
        ReportClass::Bots,
        Provenance::Provided,
        mode,
    )?;
    let counts = report.block_counts();
    let mut out = String::new();
    let _ = writeln!(out, "{}: {} addresses", path.display(), report.len());
    if !quarantine.is_empty() {
        out.push_str(&quarantine.summary());
    }
    let _ = writeln!(
        out,
        "blocks: /8 {}  /16 {}  /20 {}  /24 {}  /28 {}",
        counts.at(8),
        counts.at(16),
        counts.at(20),
        counts.at(24),
        counts.at(28)
    );
    let _ = writeln!(
        out,
        "span:  {} .. {}",
        report.addresses().min().expect("non-empty"),
        report.addresses().max().expect("non-empty")
    );
    let density = report.len() as f64 / counts.at(24) as f64;
    let _ = writeln!(out, "mean addresses per occupied /24: {density:.2}");
    // Top /16s by membership.
    let scores = UncleanlinessScorer::default().score(&[&report]);
    let _ = writeln!(out, "top /16s:");
    for ns in scores.iter().take(5) {
        let _ = writeln!(out, "  {}  {} addresses", ns.network, ns.total_evidence());
    }
    Ok(out)
}

/// `unclean archive index <file> [--out PATH]`: print a v2 archive's
/// footer index, or upgrade a v1 archive to v2 (writing to `--out`,
/// default `<file>.v2`) and print the index it gained.
pub fn archive_index(path: &Path, out_path: Option<&Path>) -> Result<String, String> {
    use unclean_flowgen::indexed::upgrade_v1;
    use unclean_flowgen::{FlowArchive, IndexedArchive};
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = String::new();
    match FlowArchive::open(&bytes).map_err(|e| format!("{}: {e}", path.display()))? {
        FlowArchive::V2(archive) => {
            if out_path.is_some() {
                return Err(format!(
                    "{} is already a v2 indexed archive",
                    path.display()
                ));
            }
            let _ = writeln!(out, "{}: v2 indexed flow archive", path.display());
            out.push_str(&index_table(&archive));
        }
        FlowArchive::V1(data) => {
            if !unclean_flowgen::indexed::looks_like_v1(data) {
                return Err(format!("{}: not a flow archive", path.display()));
            }
            let boot = u32::from_be_bytes([data[10], data[11], data[12], data[13]]);
            let (v2, _, telemetry) =
                upgrade_v1(data, boot).map_err(|e| format!("{}: {e}", path.display()))?;
            let default_out = path.with_extension(match path.extension() {
                Some(ext) => format!("{}.v2", ext.to_string_lossy()),
                None => "v2".to_string(),
            });
            let target = out_path.unwrap_or(&default_out);
            std::fs::write(target, &v2)
                .map_err(|e| format!("cannot write {}: {e}", target.display()))?;
            let _ = writeln!(
                out,
                "{}: v1 framed archive — upgraded to {} ({} flows, {} datagrams, {} lost)",
                path.display(),
                target.display(),
                telemetry.flows,
                telemetry.datagrams,
                telemetry.lost_flows
            );
            let archive = IndexedArchive::open(&v2)
                .map_err(|e| format!("{}: {e}", target.display()))?
                .ok_or_else(|| "upgrade produced no index".to_string())?;
            out.push_str(&index_table(&archive));
        }
    }
    Ok(out)
}

/// Render a v2 archive's footer index as a table.
fn index_table(archive: &unclean_flowgen::IndexedArchive<'_>) -> String {
    let mut out = String::new();
    let index = archive.index();
    let _ = writeln!(out, "boot: {} (unix secs)", index.boot_unix_secs);
    let _ = writeln!(
        out,
        "{:>3}  {:>12}  {:>12}  {:>12}  {:>10}  {:>10}  {:>10}",
        "#", "day", "offset", "bytes", "datagrams", "flows", "crc32"
    );
    for (i, s) in index.segments.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i:>3}  {:>12}  {:>12}  {:>12}  {:>10}  {:>10}  {:>10}",
            s.day.to_string(),
            s.offset,
            s.len,
            s.datagrams,
            s.flows,
            format!("{:08x}", s.crc)
        );
    }
    let _ = writeln!(
        out,
        "total: {} flows in {} datagrams across {} segment(s)",
        index.total_flows(),
        index.total_datagrams(),
        index.segments.len()
    );
    out
}

/// `unclean spatial --report R --control C`: the Eq. 3 test.
pub fn spatial(
    report_path: &Path,
    control_path: &Path,
    trials: usize,
    seed: u64,
) -> Result<String, String> {
    let report = load_report(
        report_path,
        "report",
        ReportClass::Bots,
        Provenance::Provided,
    )?;
    let control = load_report(
        control_path,
        "control",
        ReportClass::Control,
        Provenance::Observed,
    )?;
    if control.len() <= report.len() {
        return Err(format!(
            "control ({}) must be larger than the report ({})",
            control.len(),
            report.len()
        ));
    }
    let analysis = DensityAnalysis::with_config(DensityConfig {
        trials,
        ..DensityConfig::default()
    });
    let res = analysis.run(&report, control.addresses(), &[], &SeedTree::new(seed));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "spatial uncleanliness (Eq. 3) over {} control draws: {}",
        trials,
        if res.hypothesis_holds() {
            "HOLDS"
        } else {
            "does NOT hold"
        }
    );
    let _ = writeln!(out, "  n  observed  control-median  ratio");
    for (i, &n) in res.xs.iter().enumerate() {
        if n % 4 == 0 {
            let _ = writeln!(
                out,
                " {n:>2}  {:>8}  {:>14.0}  {:>5.2}",
                res.observed[i],
                res.control_boxes[i].1.median,
                res.density_ratio()[i]
            );
        }
    }
    Ok(out)
}

/// `unclean temporal --past P --present Q --control C`: the Eq. 5 test.
pub fn temporal(
    past_path: &Path,
    present_path: &Path,
    control_path: &Path,
    trials: usize,
    seed: u64,
) -> Result<String, String> {
    let past = load_report(past_path, "past", ReportClass::Bots, Provenance::Provided)?;
    let present = load_report(
        present_path,
        "present",
        ReportClass::Bots,
        Provenance::Provided,
    )?;
    let control = load_report(
        control_path,
        "control",
        ReportClass::Control,
        Provenance::Observed,
    )?;
    if control.len() <= past.len() {
        return Err(format!(
            "control ({}) must be larger than the past report ({})",
            control.len(),
            past.len()
        ));
    }
    let analysis = TemporalAnalysis::with_config(TemporalConfig {
        trials,
        ..TemporalConfig::default()
    });
    let res = analysis.run(&past, &present, control.addresses(), &SeedTree::new(seed));
    let mut out = String::new();
    let _ = writeln!(
        out,
        "temporal uncleanliness (Eq. 5) over {trials} control draws: {}",
        if res.hypothesis_holds() {
            "HOLDS"
        } else {
            "does NOT hold"
        }
    );
    match res.predictive_band() {
        Some((lo, hi)) => {
            let _ = writeln!(out, "predictive band: /{lo} ..= /{hi}");
        }
        None => {
            let _ = writeln!(out, "no prefix length beats random draws");
        }
    }
    let fives = res.control.five_numbers();
    let _ = writeln!(out, "  n  observed  control-median");
    for (i, &n) in res.xs.iter().enumerate() {
        if n % 4 == 0 {
            let _ = writeln!(
                out,
                " {n:>2}  {:>8}  {:>14.1}",
                res.observed[i], fives[i].1.median
            );
        }
    }
    Ok(out)
}

/// `unclean blocklist --report R`: emit a deploy-ready deny list.
pub fn blocklist(
    report_path: &Path,
    prefix_len: u8,
    format_name: &str,
    aggregate: bool,
) -> Result<String, String> {
    if !(8..=32).contains(&prefix_len) {
        return Err(format!("prefix length {prefix_len} out of [8, 32]"));
    }
    let format = parse_format(format_name)?;
    let report = load_report(
        report_path,
        "report",
        ReportClass::Bots,
        Provenance::Provided,
    )?;
    let cidrs = if aggregate {
        // Minimal cover: merge adjacent sibling blocks into parents.
        merge_siblings(report.blocks(prefix_len).to_cidrs())
    } else {
        report.blocks(prefix_len).to_cidrs()
    };
    Ok(unclean_core::blocklist::render(
        &cidrs,
        format,
        &format!("unclean-{prefix_len}"),
    ))
}

/// `unclean blocklist freeze <scored-list> --out <snap>`: parse a
/// scored (or plain) text blocklist and write the mmap-able frozen-trie
/// snapshot `unclean serve` maps in O(1) (and co-located daemons share
/// via the page cache). Provenance from the list's header metadata
/// (`generation=G`) is carried into the snapshot header.
pub fn blocklist_freeze(list: &Path, out: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(list)
        .map_err(|e| format!("cannot read {}: {e}", list.display()))?;
    let scored = unclean_core::blocklist::parse_scored(&text)
        .map_err(|e| format!("cannot parse {}: {e}", list.display()))?;
    let meta = unclean_core::blocklist::parse_header_meta(&text)
        .map_err(|e| format!("corrupt header in {}: {e}", list.display()))?;
    let source_generation = meta.get("generation").and_then(|g| g.parse().ok());
    let entries = scored.len();
    let trie = unclean_core::frozen::FrozenTrie::from_scored(scored);
    let built_unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    trie.freeze_to_file(
        out,
        unclean_core::snap::SnapshotMeta {
            built_unix_ms,
            source_generation,
        },
    )
    .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let info = unclean_core::snap::inspect(out).map_err(|e| e.to_string())?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "froze {entries} entries ({} nodes) from {} into {} ({} bytes)",
        info.node_count,
        list.display(),
        out.display(),
        info.file_len,
    );
    let _ = writeln!(
        report,
        "source generation: {}",
        source_generation
            .map(|g: u64| g.to_string())
            .unwrap_or_else(|| "none".into())
    );
    Ok(report)
}

/// `unclean snapshot inspect <snap>`: print a frozen snapshot's header,
/// section geometry, provenance, and the outcome of full CRC
/// verification.
pub fn snapshot_inspect(path: &Path) -> Result<String, String> {
    let info = unclean_core::snap::inspect(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut out = String::new();
    let _ = writeln!(out, "frozen-trie snapshot: {}", path.display());
    let _ = writeln!(out, "  version:      {}", info.version);
    let _ = writeln!(out, "  file length:  {} bytes", info.file_len);
    let _ = writeln!(
        out,
        "  nodes:        {} x 16 B at offset {}",
        info.node_count, info.nodes_off
    );
    let _ = writeln!(
        out,
        "  entries:      {} x 16 B at offset {}",
        info.entry_count, info.entries_off
    );
    let _ = writeln!(out, "  built:        unix_ms {}", info.meta.built_unix_ms);
    let _ = writeln!(
        out,
        "  source gen:   {}",
        info.meta
            .source_generation
            .map(|g| g.to_string())
            .unwrap_or_else(|| "none".into())
    );
    let _ = writeln!(
        out,
        "  crc:          header={:08x} nodes={:08x} entries={:08x} -> {}",
        info.header_crc,
        info.nodes_crc,
        info.entries_crc,
        if info.crc_ok { "OK" } else { "MISMATCH" }
    );
    if !info.crc_ok {
        return Err(format!(
            "{}: section CRC mismatch (file is corrupt)\n{out}",
            path.display()
        ));
    }
    Ok(out)
}

/// Merge adjacent sibling blocks into their parents, repeatedly.
fn merge_siblings(mut blocks: Vec<Cidr>) -> Vec<Cidr> {
    loop {
        blocks.sort();
        let mut merged = Vec::with_capacity(blocks.len());
        let mut changed = false;
        let mut i = 0;
        while i < blocks.len() {
            if i + 1 < blocks.len() {
                let (a, b) = (blocks[i], blocks[i + 1]);
                if let Some(parent) = a.parent() {
                    if b.parent() == Some(parent)
                        && a.len() == b.len()
                        && a != b
                        && parent.len() + 1 == a.len()
                    {
                        merged.push(parent);
                        changed = true;
                        i += 2;
                        continue;
                    }
                }
            }
            merged.push(blocks[i]);
            i += 1;
        }
        blocks = merged;
        if !changed {
            return blocks;
        }
    }
}

/// `unclean score --report class=path ...`: rank networks by combined
/// evidence.
pub fn score(inputs: &[(String, std::path::PathBuf)], prefix_len: u8) -> Result<String, String> {
    if inputs.is_empty() {
        return Err("score needs at least one class=path report".into());
    }
    let mut reports = Vec::new();
    for (class_name, path) in inputs {
        let class = parse_class(class_name)?;
        reports.push(load_report(path, class_name, class, Provenance::Provided)?);
    }
    let refs: Vec<&Report> = reports.iter().collect();
    let scorer = UncleanlinessScorer {
        prefix_len,
        ..UncleanlinessScorer::default()
    };
    let scores = scorer.score(&refs);
    let mut out = String::new();
    let _ = writeln!(out, "{} networks scored at /{prefix_len}:", scores.len());
    let _ = writeln!(
        out,
        "{:<20} {:>7} {:>5} {:>5} {:>5} {:>5}",
        "network", "score", "bot", "spam", "scan", "phish"
    );
    for ns in scores.iter().take(20) {
        let _ = writeln!(
            out,
            "{:<20} {:>7.2} {:>5} {:>5} {:>5} {:>5}",
            ns.network.to_string(),
            ns.score,
            ns.bots,
            ns.spamming,
            ns.scanning,
            ns.phishing
        );
    }
    Ok(out)
}

/// `unclean demo --out DIR`: generate synthetic paper-shaped report files
/// so the other commands can be tried without real data.
pub fn demo(out_dir: &Path, scale: f64, seed: u64) -> Result<String, String> {
    use unclean_detect::{build_reports, PipelineConfig};
    use unclean_netmodel::{Scenario, ScenarioConfig};
    std::fs::create_dir_all(out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    let scenario = Scenario::generate(ScenarioConfig::at_scale(scale, seed));
    let reports = build_reports(&scenario, &PipelineConfig::paper());
    let mut out = String::new();
    let _ = writeln!(out, "synthetic reports (scale {scale}, seed {seed}):");
    for (name, report) in [
        ("bot.txt", &reports.bot),
        ("phish.txt", &reports.phish),
        ("scan.txt", &reports.scan),
        ("spam.txt", &reports.spam),
        ("bot-test.txt", &reports.bot_test),
        ("control.txt", &reports.control),
    ] {
        let path = out_dir.join(name);
        write_addresses(
            &path,
            report.addresses(),
            &format!(
                "R_{} | {} | {}",
                report.tag(),
                report.class(),
                report.period()
            ),
        )?;
        let _ = writeln!(out, "  {} ({} addresses)", path.display(), report.len());
    }
    Ok(out)
}

/// `unclean metrics <file> [--assert-zero a,b]`: pretty-print a telemetry
/// export. A `telemetry.json` snapshot renders as the stage tree with
/// counter rates; a `metrics.prom` exposition is validated and
/// summarized. `--assert-zero` fails (exit 2) when any named counter is
/// nonzero — absent series count as zero, so a clean run that never
/// declared the counter still passes.
pub fn metrics(path: &Path, assert_zero: &[String]) -> Result<String, String> {
    use unclean_telemetry::{prom, Snapshot};
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut out = String::new();
    if text.trim_start().starts_with('{') {
        let snap: Snapshot = serde_json::from_str(&text)
            .map_err(|e| format!("{} is not a telemetry snapshot: {e}", path.display()))?;
        out.push_str(&snap.render_tree());
        for name in assert_zero {
            let v = snap.counters.get(name).copied().unwrap_or(0);
            if v != 0 {
                return Err(format!(
                    "assert-zero failed: counter {name} is {v} in {}",
                    path.display()
                ));
            }
        }
    } else {
        let exposition = prom::parse(&text)
            .map_err(|e| format!("{} is not valid Prometheus text: {e}", path.display()))?;
        let _ = writeln!(
            out,
            "{}: valid Prometheus text ({} samples, {} typed series)",
            path.display(),
            exposition.samples.len(),
            exposition.types.len()
        );
        for sample in exposition.samples.iter().take(40) {
            let labels = if sample.labels.is_empty() {
                String::new()
            } else {
                let pairs: Vec<String> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                format!("{{{}}}", pairs.join(","))
            };
            let _ = writeln!(out, "  {}{labels} {}", sample.name, sample.raw_value);
        }
        if exposition.samples.len() > 40 {
            let _ = writeln!(out, "  … {} more", exposition.samples.len() - 40);
        }
        for name in assert_zero {
            let total: f64 = exposition
                .samples
                .iter()
                .filter(|s| s.name == *name)
                .map(|s| s.value)
                .sum();
            if total != 0.0 {
                return Err(format!(
                    "assert-zero failed: series {name} sums to {total} in {}",
                    path.display()
                ));
            }
        }
    }
    if !assert_zero.is_empty() {
        let _ = writeln!(out, "assert-zero: {} counter(s) clean", assert_zero.len());
    }
    Ok(out)
}

/// Daemon knobs that ride along with `unclean serve` but sit off the
/// request path: the optional forecast artifact, health staleness
/// thresholds, plus the trace ring, request-sampling rate, and
/// flight-recorder cadence.
#[derive(Clone, Debug, Default)]
pub struct ServeTuning {
    pub forecast: Option<std::path::PathBuf>,
    pub stale_after_secs: Option<u64>,
    pub degraded_after_secs: Option<u64>,
    pub trace_sample: u64,
    pub trace_events: usize,
    pub history_ms: u64,
    pub max_requests_per_conn: u64,
}

/// `unclean serve --blocklist <file> [--addr A] [--threads N]
/// [--max-conns N] [--read-timeout-ms N] [--watch]`: run the online
/// blocklist query daemon until a client sends `POST /quit`.
///
/// Blocks for the daemon's whole lifetime; the listening address is
/// printed to stdout immediately so scripts can scrape it, and the
/// returned string is the post-shutdown summary.
pub fn serve(
    blocklist: &Path,
    addr: &str,
    threads: usize,
    max_conns: usize,
    read_timeout_ms: u64,
    watch: bool,
    tuning: ServeTuning,
) -> Result<String, String> {
    use std::io::Write as _;
    use std::time::Duration;
    use unclean_serve::{ServeConfig, Server};
    use unclean_telemetry::Registry;

    let registry = Registry::full();
    let mut config = ServeConfig::new(blocklist);
    config.forecast = tuning.forecast.clone();
    config.addr = addr.to_string();
    config.threads = threads.max(1);
    config.max_conns = max_conns.max(1);
    config.read_timeout = Duration::from_millis(read_timeout_ms.max(1));
    config.watch = watch.then(|| Duration::from_secs(2));
    config.stale_after = tuning.stale_after_secs.map(Duration::from_secs);
    config.degraded_after = tuning.degraded_after_secs.map(Duration::from_secs);
    config.trace_sample = tuning.trace_sample;
    config.trace_events = tuning.trace_events;
    config.max_requests_per_conn = tuning.max_requests_per_conn.max(1);
    config.history_interval =
        (tuning.history_ms > 0).then(|| Duration::from_millis(tuning.history_ms));
    let server = Server::start(config, registry.clone()).map_err(|e| e.to_string())?;
    println!(
        "unclean-serve listening on http://{} (blocklist: {}{}, generation 1)",
        server.local_addr(),
        blocklist.display(),
        tuning
            .forecast
            .as_ref()
            .map(|f| format!(", forecast: {}", f.display()))
            .unwrap_or_default()
    );
    println!(
        "endpoints: /lookup?ip=A.B.C.D /batch /forecast?net=A.B.0.0/16 /healthz \
         /snapshot /metrics /metrics/history /trace /reload /quit"
    );
    let _ = std::io::stdout().flush();
    server.wait();
    Ok(format!(
        "shut down cleanly: {} requests ({} blocked, {} clean answers), {} reload(s)\n",
        registry.counter_value("requests"),
        registry.counter_value("answers.blocked"),
        registry.counter_value("answers.clean"),
        registry.counter_value("reload.count"),
    ))
}

/// One raw HTTP/1.0 GET round trip against a daemon control/serving
/// port; returns the response body on any 2xx status.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("torn response from {addr}{path}: {text:?}"))?;
    match head.split_whitespace().nth(1) {
        Some(code) if code.starts_with('2') => Ok(body.to_string()),
        _ => Err(format!("{addr}{path} answered: {head}")),
    }
}

/// `unclean metrics --diff A.prom B.prom [--interval-secs S]`: what
/// changed between two Prometheus scrapes of the same daemon. Counter
/// series print their delta (and per-second rate when the scrape
/// interval is given); gauge series print before → after. Series whose
/// value did not move are suppressed.
pub fn metrics_diff(a: &Path, b: &Path, interval_secs: Option<f64>) -> Result<String, String> {
    use std::collections::BTreeMap;
    use unclean_telemetry::prom;
    let load = |path: &Path| -> Result<BTreeMap<String, f64>, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let exposition = prom::parse(&text)
            .map_err(|e| format!("{} is not valid Prometheus text: {e}", path.display()))?;
        let mut series = BTreeMap::new();
        for sample in &exposition.samples {
            let key = if sample.labels.is_empty() {
                sample.name.clone()
            } else {
                let pairs: Vec<String> = sample
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                format!("{}{{{}}}", sample.name, pairs.join(","))
            };
            series.insert(key, sample.value);
        }
        Ok(series)
    };
    let before = load(a)?;
    let after = load(b)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "metrics diff: {} -> {}{}",
        a.display(),
        b.display(),
        interval_secs.map_or(String::new(), |s| format!(" over {s}s"))
    );
    let mut moved = 0usize;
    for (key, new) in &after {
        let old = before.get(key).copied().unwrap_or(0.0);
        let delta = new - old;
        if delta == 0.0 {
            continue;
        }
        moved += 1;
        match interval_secs {
            Some(secs) if secs > 0.0 => {
                let _ = writeln!(
                    out,
                    "  {key}  {old} -> {new}  (+{delta}, {:.1}/s)",
                    delta / secs
                );
            }
            _ => {
                let _ = writeln!(out, "  {key}  {old} -> {new}  (+{delta})");
            }
        }
    }
    for key in before.keys() {
        if !after.contains_key(key) {
            moved += 1;
            let _ = writeln!(out, "  {key}  disappeared");
        }
    }
    let _ = writeln!(
        out,
        "{moved} series moved, {} unchanged",
        after.len().saturating_sub(moved)
    );
    Ok(out)
}

/// `unclean trace export <addr|events.json> [--out FILE]`: produce a
/// Chrome/Perfetto `about:tracing` JSON trace. Given a daemon address,
/// fetches `/trace` (already chrome-format). Given a file of raw events
/// (`/trace?format=events` shape), converts it offline.
pub fn trace_export(target: &str, out: Option<&Path>) -> Result<String, String> {
    use unclean_telemetry::{chrome_trace_json, Snapshot, TraceEvent};
    let (chrome, origin) = if Path::new(target).is_file() {
        let text =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        if text.contains("\"traceEvents\"") {
            (text, format!("file {target} (already chrome-format)"))
        } else {
            let value: serde_json::Value =
                serde_json::from_str(&text).map_err(|e| format!("{target} is not JSON: {e}"))?;
            let events_json = value
                .get("events")
                .ok_or_else(|| format!("{target} has no \"events\" key"))?;
            let events: Vec<TraceEvent> = serde_json::from_str(
                &serde_json::to_string(events_json).map_err(|e| e.to_string())?,
            )
            .map_err(|e| format!("{target} events do not deserialize: {e}"))?;
            let n = events.len();
            (
                chrome_trace_json(&Snapshot::default(), &events, "unclean"),
                format!("file {target} ({n} raw events)"),
            )
        }
    } else {
        let body = http_get(target, "/trace")?;
        (body, format!("daemon {target}"))
    };
    match out {
        Some(path) => {
            std::fs::write(path, &chrome)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            Ok(format!(
                "exported chrome trace from {origin} to {} ({} bytes); open in \
                 chrome://tracing or https://ui.perfetto.dev\n",
                path.display(),
                chrome.len()
            ))
        }
        None => Ok(chrome),
    }
}

/// Unicode sparkline over a value series (empty input → empty string).
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|v| {
            if max <= 0.0 {
                BARS[0]
            } else {
                BARS[(((v / max) * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// `unclean top <addr> [--interval-ms N] [--iterations N] [--no-clear]`:
/// a live TTY dashboard over a daemon's `/metrics/history` flight
/// recorder — per-counter rates with sparklines, plus the health line.
/// Works against both `unclean serve` and the `unclean ingest` control
/// port. `--iterations 0` runs until the daemon goes away.
pub fn top(
    addr: &str,
    interval_ms: u64,
    iterations: u64,
    no_clear: bool,
) -> Result<String, String> {
    use std::io::Write as _;
    let mut iteration = 0u64;
    loop {
        iteration += 1;
        let body = http_get(addr, "/metrics/history")?;
        let value: serde_json::Value = serde_json::from_str(&body)
            .map_err(|e| format!("{addr}/metrics/history is not JSON: {e}"))?;
        let samples: Vec<unclean_telemetry::HistorySample> = match value.get("samples") {
            Some(s) => {
                let text = serde_json::to_string(s).map_err(|e| e.to_string())?;
                serde_json::from_str(&text)
                    .map_err(|e| format!("samples do not deserialize: {e}"))?
            }
            None => Vec::new(),
        };
        let health = http_get(addr, "/healthz").unwrap_or_else(|e| format!("unavailable ({e})"));

        let mut screen = String::new();
        let _ = writeln!(
            screen,
            "unclean top — {addr}  ({} history sample(s), refresh {}ms)",
            samples.len(),
            interval_ms
        );
        let _ = writeln!(screen, "health: {}", health.trim());
        if let Some(latest) = samples.last() {
            // Generation staleness at a glance: the blocklist line always
            // shows once the age gauge exists; the forecast line appears
            // only for daemons serving a `--forecast` artifact.
            let gauge = |name: &str| latest.gauges.get(name).copied();
            if let Some(age) = gauge("generation_age_secs") {
                let mut line = format!(
                    "blocklist: generation {:.0} age {age:.0}s",
                    gauge("snapshot.generation").unwrap_or(0.0)
                );
                if gauge("forecast.generation").is_some_and(|g| g > 0.0) {
                    let _ = write!(
                        line,
                        "  |  forecast: generation {:.0} age {:.0}s",
                        gauge("forecast.generation").unwrap_or(0.0),
                        gauge("forecast_generation_age_secs").unwrap_or(0.0)
                    );
                }
                let _ = writeln!(screen, "{line}");
            }
            // Every rate name seen anywhere in the window, so a counter
            // that just went quiet keeps its row (and its sparkline tail).
            let mut names: Vec<&String> = samples
                .iter()
                .flat_map(|s| s.rates.keys())
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            // Busiest rows first; the terminal only has so many lines.
            names.sort_by(|a, b| {
                let ra = latest.rates.get(*a).copied().unwrap_or(0.0);
                let rb = latest.rates.get(*b).copied().unwrap_or(0.0);
                rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
            });
            let _ = writeln!(screen, "{:<34} {:>12}  trend", "counter", "rate/s");
            for name in names.iter().take(20) {
                let series: Vec<f64> = samples
                    .iter()
                    .map(|s| s.rates.get(*name).copied().unwrap_or(0.0))
                    .collect();
                let tail: Vec<f64> = series.iter().rev().take(40).rev().copied().collect();
                let _ = writeln!(
                    screen,
                    "{:<34} {:>12.1}  {}",
                    name,
                    latest.rates.get(*name).copied().unwrap_or(0.0),
                    sparkline(&tail)
                );
            }
            let mut gauges: Vec<(&String, &f64)> = latest.gauges.iter().collect();
            gauges.truncate(10);
            if !gauges.is_empty() {
                let _ = writeln!(screen, "{:<34} {:>12}", "gauge", "value");
                for (name, value) in gauges {
                    let _ = writeln!(screen, "{:<34} {:>12.1}", name, value);
                }
            }
        } else {
            let _ = writeln!(
                screen,
                "(no samples yet — the recorder fills one per interval)"
            );
        }

        let done = iterations != 0 && iteration >= iterations;
        if done {
            // Final frame goes through the normal return path so tests
            // (and shell pipelines) can capture it.
            return Ok(screen);
        }
        if !no_clear {
            print!("\x1b[2J\x1b[H");
        }
        print!("{screen}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("unclean-cli-cmd").join(name);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    fn write_file(dir: &Path, name: &str, addrs: &[&str]) -> std::path::PathBuf {
        let path = dir.join(name);
        let body: String = addrs.iter().map(|a| format!("{a}\n")).collect();
        std::fs::write(&path, body).expect("write");
        path
    }

    #[test]
    fn metrics_diff_reports_moved_series_and_rates() {
        let dir = tmp_dir("metrics-diff");
        let a = dir.join("a.prom");
        let b = dir.join("b.prom");
        std::fs::write(
            &a,
            "# TYPE unclean_requests counter\nunclean_requests 10\nunclean_reloads 5\n",
        )
        .expect("write a");
        std::fs::write(
            &b,
            "# TYPE unclean_requests counter\nunclean_requests 25\nunclean_reloads 5\nunclean_drops 3\n",
        )
        .expect("write b");
        let out = metrics_diff(&a, &b, Some(5.0)).expect("diff");
        assert!(
            out.contains("unclean_requests  10 -> 25  (+15, 3.0/s)"),
            "{out}"
        );
        assert!(out.contains("unclean_drops  0 -> 3"), "{out}");
        assert!(
            !out.contains("unclean_reloads"),
            "unchanged series must be suppressed: {out}"
        );
        // Without an interval there is no rate column.
        let out = metrics_diff(&a, &b, None).expect("diff");
        assert!(out.contains("(+15)"), "{out}");
        // Garbage input is a parse error, not a panic.
        std::fs::write(&a, "{not prometheus").expect("write");
        assert!(metrics_diff(&a, &b, None).is_err());
    }

    #[test]
    fn trace_export_converts_raw_events_offline() {
        use unclean_telemetry::{TraceEvent, TraceKind};
        let dir = tmp_dir("trace-export");
        let events = vec![
            TraceEvent::now(TraceKind::Publish)
                .generation(7)
                .dur_ns(1500),
            TraceEvent::now(TraceKind::Lookup)
                .generation(1)
                .source_generation(7)
                .dur_ns(900),
        ];
        let raw = dir.join("events.json");
        std::fs::write(
            &raw,
            format!(
                "{{\"events\":{}}}",
                serde_json::to_string(&events).expect("serialize")
            ),
        )
        .expect("write");
        let out_path = dir.join("chrome.json");
        let msg = trace_export(raw.to_str().expect("utf8"), Some(&out_path)).expect("export");
        assert!(msg.contains("2 raw events"), "{msg}");
        let chrome = std::fs::read_to_string(&out_path).expect("read");
        let value: serde_json::Value = serde_json::from_str(&chrome).expect("chrome JSON");
        let entries = value
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert!(
            entries
                .iter()
                .any(|e| e.get("name").and_then(|n| n.as_str()) == Some("publish")),
            "{chrome}"
        );
        // A chrome-format file passes through unchanged; with no --out the
        // JSON itself is the command output.
        let through = trace_export(out_path.to_str().expect("utf8"), None).expect("passthrough");
        assert_eq!(through, chrome);
    }

    #[test]
    fn inspect_profiles_a_report() {
        let dir = tmp_dir("inspect");
        let path = write_file(
            &dir,
            "r.txt",
            &["9.1.1.1", "9.1.1.2", "9.1.2.1", "10.0.0.1"],
        );
        let out = inspect(&path, ParseMode::Strict, false).expect("ok");
        assert!(out.contains("4 addresses"));
        assert!(out.contains("/24 3"), "{out}");
        assert!(out.contains("top /16s"));
    }

    #[test]
    fn inspect_lenient_reports_quarantine() {
        let dir = tmp_dir("inspect-lenient");
        let path = write_file(&dir, "r.txt", &["9.1.1.1", "oops", "9.1.1.2"]);
        // Strict aborts with the line number…
        let err = inspect(&path, ParseMode::Strict, false).expect_err("strict");
        assert!(err.contains("line 2"), "{err}");
        // …lenient loads the valid addresses and reports the quarantine.
        let out = inspect(&path, ParseMode::Lenient { max_bad: 10 }, false).expect("lenient");
        assert!(out.contains("2 addresses"), "{out}");
        assert!(out.contains("quarantined 1"), "{out}");
        assert!(out.contains("line 2"), "{out}");
        // …and the budget still binds.
        let err = inspect(&path, ParseMode::Lenient { max_bad: 0 }, false).expect_err("budget");
        assert!(err.contains("--max-bad budget of 0"), "{err}");
    }

    #[test]
    fn spatial_on_clustered_vs_scattered() {
        let dir = tmp_dir("spatial");
        // Clustered report: one /24.
        let report: Vec<String> = (1..=40).map(|i| format!("9.1.1.{i}")).collect();
        let report_refs: Vec<&str> = report.iter().map(String::as_str).collect();
        let r = write_file(&dir, "r.txt", &report_refs);
        // Scattered control: one host per /16.
        let control: Vec<String> = (0..250u32)
            .flat_map(|i| (0..4u32).map(move |j| format!("11.{i}.{j}.7")))
            .collect();
        let control_refs: Vec<&str> = control.iter().map(String::as_str).collect();
        let c = write_file(&dir, "c.txt", &control_refs);
        let out = spatial(&r, &c, 50, 1).expect("ok");
        assert!(out.contains("HOLDS"), "{out}");
    }

    #[test]
    fn spatial_rejects_small_control() {
        let dir = tmp_dir("spatial-small");
        let r = write_file(&dir, "r.txt", &["1.1.1.1", "2.2.2.2"]);
        let c = write_file(&dir, "c.txt", &["3.3.3.3"]);
        assert!(spatial(&r, &c, 10, 1).is_err());
    }

    #[test]
    fn temporal_self_prediction() {
        let dir = tmp_dir("temporal");
        let past: Vec<String> = (0..20).map(|i| format!("9.1.{i}.5")).collect();
        let past_refs: Vec<&str> = past.iter().map(String::as_str).collect();
        let p = write_file(&dir, "p.txt", &past_refs);
        let present: Vec<String> = (0..20).map(|i| format!("9.1.{i}.200")).collect();
        let present_refs: Vec<&str> = present.iter().map(String::as_str).collect();
        let q = write_file(&dir, "q.txt", &present_refs);
        let control: Vec<String> = (0..200u32)
            .flat_map(|i| (0..5u32).map(move |j| format!("11.{}.{}.7", i % 250, (i / 250) * 5 + j)))
            .collect();
        let control_refs: Vec<&str> = control.iter().map(String::as_str).collect();
        let c = write_file(&dir, "c.txt", &control_refs);
        let out = temporal(&p, &q, &c, 50, 1).expect("ok");
        assert!(out.contains("HOLDS"), "{out}");
        assert!(out.contains("predictive band"));
    }

    #[test]
    fn blocklist_formats_and_aggregation() {
        let dir = tmp_dir("blocklist");
        let r = write_file(
            &dir,
            "r.txt",
            &["9.1.0.1", "9.1.1.1"], // adjacent /24s → one /23 when aggregated
        );
        let plain = blocklist(&r, 24, "plain", false).expect("ok");
        assert!(plain.contains("9.1.0.0/24"));
        assert!(plain.contains("9.1.1.0/24"));
        let agg = blocklist(&r, 24, "plain", true).expect("ok");
        assert!(agg.contains("9.1.0.0/23"), "{agg}");
        assert!(!agg.contains("/24"));
        let cisco = blocklist(&r, 24, "cisco", false).expect("ok");
        assert!(cisco.contains("deny ip 9.1.0.0 0.0.0.255 any"));
        assert!(blocklist(&r, 40, "plain", false).is_err());
        assert!(blocklist(&r, 24, "xml", false).is_err());
    }

    #[test]
    fn score_ranks_networks() {
        let dir = tmp_dir("score");
        let bot = write_file(&dir, "bot.txt", &["9.1.0.1", "9.1.0.2"]);
        let spam = write_file(&dir, "spam.txt", &["9.1.0.3", "10.0.0.1"]);
        let out = score(&[("bot".into(), bot), ("spam".into(), spam)], 16).expect("ok");
        assert!(
            out.lines().nth(2).expect("rows").starts_with("9.1.0.0/16"),
            "{out}"
        );
    }

    #[test]
    fn demo_generates_loadable_reports() {
        let dir = tmp_dir("demo");
        let out = demo(&dir, 0.001, 7).expect("ok");
        assert!(out.contains("bot.txt"));
        let bot = load_report(
            &dir.join("bot.txt"),
            "bot",
            ReportClass::Bots,
            Provenance::Provided,
        )
        .expect("loadable");
        assert!(!bot.is_empty());
        let control = load_report(
            &dir.join("control.txt"),
            "control",
            ReportClass::Control,
            Provenance::Observed,
        )
        .expect("loadable");
        assert!(control.len() > bot.len());
    }

    #[test]
    fn merge_siblings_collapses_pairs() {
        let blocks: Vec<Cidr> = vec![
            "9.1.0.0/24".parse().expect("ok"),
            "9.1.1.0/24".parse().expect("ok"),
            "9.1.2.0/24".parse().expect("ok"),
            "9.1.3.0/24".parse().expect("ok"),
            "9.9.0.0/24".parse().expect("ok"),
        ];
        let merged = merge_siblings(blocks);
        let strs: Vec<String> = merged.iter().map(|c| c.to_string()).collect();
        assert_eq!(strs, vec!["9.1.0.0/22", "9.9.0.0/24"]);
    }

    fn sample_registry() -> unclean_telemetry::Registry {
        let registry = unclean_telemetry::Registry::full();
        registry.counter("detect.flows_ingested").add(1234);
        registry.counter("store.flows_dropped");
        {
            let _span = registry.span("pipeline");
        }
        registry
    }

    #[test]
    fn metrics_renders_snapshot_json_and_asserts_zero() {
        let dir = tmp_dir("metrics-json");
        let snap = sample_registry().snapshot();
        let path = dir.join("telemetry.json");
        std::fs::write(&path, serde_json::to_string(&snap).expect("serialize")).expect("write");
        let out = metrics(&path, &["store.flows_dropped".into()]).expect("clean");
        assert!(out.contains("detect.flows_ingested"), "{out}");
        assert!(out.contains("pipeline"), "{out}");
        assert!(out.contains("assert-zero: 1 counter(s) clean"), "{out}");
        // Absent counters count as zero; nonzero ones fail.
        metrics(&path, &["never.declared".into()]).expect("absent is zero");
        let err = metrics(&path, &["detect.flows_ingested".into()]).expect_err("nonzero fails");
        assert!(err.contains("1234"), "{err}");
    }

    #[test]
    fn serve_runs_answers_and_quits() {
        use std::io::{Read as _, Write as _};
        let dir = tmp_dir("serve");
        let list = dir.join("list.txt");
        std::fs::write(&list, "9.1.0.0/16 # score=2.0\n").expect("write");
        // Reserve a free port, release it, and serve there: `serve`
        // prints the bound address to stdout, which an in-process test
        // cannot capture, so ephemeral port 0 is not usable here.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe");
            probe.local_addr().expect("addr").port()
        };
        let addr = format!("127.0.0.1:{port}");
        let daemon = {
            let list = list.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                serve(
                    &list,
                    &addr,
                    2,
                    64,
                    2000,
                    false,
                    ServeTuning {
                        trace_sample: 4,
                        trace_events: 4096,
                        history_ms: 200,
                        ..ServeTuning::default()
                    },
                )
            })
        };
        let http = |req: String| -> String {
            // The daemon may still be binding; retry the connect briefly.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                match std::net::TcpStream::connect(&addr) {
                    Ok(mut stream) => {
                        stream.write_all(req.as_bytes()).expect("write");
                        let mut text = String::new();
                        stream.read_to_string(&mut text).expect("read");
                        return text;
                    }
                    Err(e) if std::time::Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(e) => panic!("daemon never came up: {e}"),
                }
            }
        };
        let health = http("GET /healthz HTTP/1.0\r\n\r\n".into());
        assert!(health.starts_with("HTTP/1.0 200"), "{health}");
        let hit = http("GET /lookup?ip=9.1.1.7 HTTP/1.0\r\n\r\n".into());
        assert!(hit.contains("\"blocked\":true"), "{hit}");
        // The observability endpoints the new flags switch on.
        let trace = http("GET /trace HTTP/1.0\r\n\r\n".into());
        assert!(trace.contains("\"traceEvents\""), "{trace}");
        let history = http("GET /metrics/history HTTP/1.0\r\n\r\n".into());
        assert!(history.contains("\"interval_secs\""), "{history}");
        let metrics = http("GET /metrics HTTP/1.0\r\n\r\n".into());
        assert!(metrics.contains("unclean_serve_build_info"), "{metrics}");
        assert!(metrics.contains("process_start_time_seconds"), "{metrics}");
        let quit = http("POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n".into());
        assert!(quit.starts_with("HTTP/1.0 200"), "{quit}");
        let summary = daemon.join().expect("join").expect("serve ok");
        assert!(summary.contains("shut down cleanly"), "{summary}");
        assert!(summary.contains("1 blocked"), "{summary}");
    }

    #[test]
    fn metrics_validates_prometheus_text_and_asserts_zero() {
        let dir = tmp_dir("metrics-prom");
        let text = unclean_telemetry::prom::render(&sample_registry().snapshot(), "unclean");
        let path = dir.join("metrics.prom");
        std::fs::write(&path, text).expect("write");
        let out = metrics(&path, &["unclean_store_flows_dropped".into()]).expect("clean");
        assert!(out.contains("valid Prometheus text"), "{out}");
        assert!(out.contains("unclean_detect_flows_ingested"), "{out}");
        let err =
            metrics(&path, &["unclean_detect_flows_ingested".into()]).expect_err("nonzero fails");
        assert!(err.contains("1234"), "{err}");
        // Malformed exposition is an error, not a silent pass.
        let bad = dir.join("torn.prom");
        std::fs::write(&bad, "no spaces here!{").expect("write");
        assert!(metrics(&bad, &[]).is_err());
    }
}
