//! Error type for the core crate.
//!
//! Parsing and construction return `Result`; analysis-internal invariant
//! violations (mismatched x-axes, out-of-range prefix lengths passed as
//! constants) panic, since they are programmer errors, not data errors.

use crate::ip::Ip;
use std::fmt;

/// Errors produced by the core library's fallible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A string did not parse as a dotted-quad IPv4 address.
    ParseIp(String),
    /// A string did not parse as `a.b.c.d/len`.
    ParseCidr(String),
    /// A prefix length outside `[0, 32]`.
    InvalidPrefixLen(u8),
    /// A CIDR base address with non-zero host bits.
    UnalignedCidr {
        /// The offending base address.
        base: Ip,
        /// The prefix length it was paired with.
        len: u8,
    },
    /// An operation that requires a non-empty report got an empty one.
    EmptyReport(String),
    /// Requested a sample larger than the population it is drawn from.
    SampleTooLarge {
        /// Requested sample size.
        requested: usize,
        /// Available population size.
        available: usize,
    },
    /// A date string or component was invalid.
    InvalidDate(String),
    /// A header metadata key that must be numeric (e.g. `generation=`)
    /// carried a non-numeric value.
    MalformedHeaderMeta {
        /// The metadata key (e.g. `generation`).
        key: String,
        /// The offending value.
        value: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ParseIp(s) => write!(f, "invalid IPv4 address: {s:?}"),
            Error::ParseCidr(s) => write!(f, "invalid CIDR block: {s:?}"),
            Error::InvalidPrefixLen(n) => write!(f, "prefix length {n} out of range [0, 32]"),
            Error::UnalignedCidr { base, len } => {
                write!(
                    f,
                    "CIDR base {base} has host bits set for prefix length {len}"
                )
            }
            Error::EmptyReport(tag) => write!(f, "report {tag:?} is empty"),
            Error::SampleTooLarge {
                requested,
                available,
            } => {
                write!(
                    f,
                    "cannot sample {requested} addresses from a population of {available}"
                )
            }
            Error::InvalidDate(s) => write!(f, "invalid date: {s:?}"),
            Error::MalformedHeaderMeta { key, value } => {
                write!(f, "header metadata {key}={value:?} is not a number")
            }
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::ParseIp("x".into()), "invalid IPv4 address"),
            (Error::ParseCidr("x".into()), "invalid CIDR"),
            (Error::InvalidPrefixLen(40), "40"),
            (
                Error::UnalignedCidr {
                    base: Ip::from_octets(10, 0, 0, 1),
                    len: 24,
                },
                "10.0.0.1",
            ),
            (Error::EmptyReport("bot".into()), "bot"),
            (
                Error::SampleTooLarge {
                    requested: 5,
                    available: 3,
                },
                "5",
            ),
            (Error::InvalidDate("2006-13-01".into()), "2006-13-01"),
            (
                Error::MalformedHeaderMeta {
                    key: "generation".into(),
                    value: "seventeen".into(),
                },
                "seventeen",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<Error>();
    }
}
