//! Predictive blocking evaluation (§6).
//!
//! The scenario: the network operator blocks `C_n(R_bot-test)` for some
//! n ∈ [24, 32]. Addresses observed crossing the network that fall inside
//! the /24s of the old bot report form `R_candidate`; each is partitioned
//! by ground truth and flow behaviour:
//!
//! * **hostile** — present in the union of the unclean reports;
//! * **unknown** — not in the unclean reports *and* never exchanged a
//!   payload-bearing flow (TCP, ≥36 bytes of payload, ≥1 ACK); suspicious
//!   but unscorable, excluded from the false-positive calculation;
//! * **innocent** — exchanged payload and is in no unclean report.
//!
//! [`BlockingAnalysis`] computes the paper's Table 3: `TP(n)`, `FP(n)`,
//! `pop(n)` and the unknown population for each prefix length, plus the
//! derived ROC curve.

use crate::blocks::BlockSet;
use crate::density::PrefixRange;
use crate::ip::Ip;
use crate::ipset::IpSet;
use serde::{Deserialize, Serialize};
use unclean_stats::{RocCurve, RocPoint};

/// One candidate address with the flow-derived evidence the partition
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// The external address observed crossing the network border.
    pub ip: Ip,
    /// Whether the address exchanged at least one payload-bearing flow
    /// during the observation period (§6.1's 36-byte/ACK test).
    pub payload_bearing: bool,
}

/// The §6.1 partition of the candidate report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Candidates present in the unclean union (`R_hostile`).
    pub hostile: IpSet,
    /// Candidates not in the unclean union with no payload-bearing flows
    /// (`R_unknown`).
    pub unknown: IpSet,
    /// Candidates with payload-bearing activity and no unclean report
    /// membership (`R_innocent`).
    pub innocent: IpSet,
}

impl Partition {
    /// Partition candidates against the unclean union report.
    ///
    /// Order of precedence follows the paper: hostile membership is decided
    /// first ("once an IP address is identified as hostile it cannot be
    /// present in the remaining two reports"), then payload behaviour
    /// separates unknown from innocent.
    pub fn new(candidates: &[Candidate], unclean: &IpSet) -> Partition {
        let mut hostile = Vec::new();
        let mut unknown = Vec::new();
        let mut innocent = Vec::new();
        for c in candidates {
            if unclean.contains(c.ip) {
                hostile.push(c.ip.raw());
            } else if !c.payload_bearing {
                unknown.push(c.ip.raw());
            } else {
                innocent.push(c.ip.raw());
            }
        }
        Partition {
            hostile: IpSet::from_raw(hostile),
            unknown: IpSet::from_raw(unknown),
            innocent: IpSet::from_raw(innocent),
        }
    }

    /// Total candidates (|R_candidate|).
    pub fn total(&self) -> usize {
        self.hostile.len() + self.unknown.len() + self.innocent.len()
    }

    /// The scored population: hostile ∪ innocent (unknowns are excluded
    /// from scoring, Eq. 7).
    pub fn scored(&self) -> IpSet {
        self.hostile.union(&self.innocent)
    }
}

/// One row of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockingRow {
    /// Prefix length used for the block list.
    pub n: u8,
    /// `TP(n)`: hostile addresses blocked (Eq. 8).
    pub tp: u64,
    /// `FP(n)`: innocent addresses blocked (Eq. 9).
    pub fp: u64,
    /// `pop(n)`: scored addresses blocked (Eq. 7): `tp + fp`.
    pub pop: u64,
    /// Unknown addresses inside the blocked blocks (reported but unscored).
    pub unknown: u64,
}

impl BlockingRow {
    /// Precision at this row (`tp / pop`); the paper's "90% of the incoming
    /// addresses are correctly identified as hostile" at n = 24.
    pub fn precision(&self) -> f64 {
        if self.pop == 0 {
            0.0
        } else {
            self.tp as f64 / self.pop as f64
        }
    }

    /// Precision if unknown addresses are assumed hostile (the paper's
    /// alternative 97% figure).
    pub fn precision_assuming_unknown_hostile(&self) -> f64 {
        let denom = self.pop + self.unknown;
        if denom == 0 {
            0.0
        } else {
            (self.tp + self.unknown) as f64 / denom as f64
        }
    }
}

/// The full Table 3 plus derived quantities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockingTable {
    /// Rows in ascending prefix-length order.
    pub rows: Vec<BlockingRow>,
    /// `|C_24(R_bot-test)|`-style block counts per n, for the sparseness
    /// argument.
    pub blocks_per_n: Vec<(u8, u64)>,
    /// Addresses spanned by the blocked blocks per n (e.g. the paper's
    /// 44,288 at n = 24).
    pub span_per_n: Vec<(u8, u64)>,
}

impl BlockingTable {
    /// Derive the ROC curve: the positives/negatives universe is the
    /// scored candidate population.
    pub fn roc(&self, positives: u64, negatives: u64) -> RocCurve {
        RocCurve::new(
            self.rows
                .iter()
                .map(|r| RocPoint {
                    characteristic: r.n as u32,
                    true_positives: r.tp,
                    false_positives: r.fp,
                    positives,
                    negatives,
                })
                .collect(),
        )
    }

    /// Row lookup by prefix length.
    pub fn row(&self, n: u8) -> Option<&BlockingRow> {
        self.rows.iter().find(|r| r.n == n)
    }
}

/// The §6 analysis driver.
#[derive(Debug, Clone, Copy)]
pub struct BlockingAnalysis {
    /// Prefix lengths swept (the paper: [24, 32]).
    pub range: PrefixRange,
}

impl Default for BlockingAnalysis {
    fn default() -> BlockingAnalysis {
        BlockingAnalysis {
            range: PrefixRange::BLOCKING,
        }
    }
}

impl BlockingAnalysis {
    /// Compute the table: for each n, count partition members inside
    /// `C_n(bot_test)`.
    pub fn run(&self, bot_test: &IpSet, partition: &Partition) -> BlockingTable {
        assert!(!bot_test.is_empty(), "cannot block on an empty report");
        let mut rows = Vec::with_capacity(self.range.len());
        let mut blocks_per_n = Vec::with_capacity(self.range.len());
        let mut span_per_n = Vec::with_capacity(self.range.len());
        for n in self.range.lo..=self.range.hi {
            let blocks = BlockSet::of(bot_test, n);
            let tp = blocks.members_of(&partition.hostile).count() as u64;
            let fp = blocks.members_of(&partition.innocent).count() as u64;
            let unknown = blocks.members_of(&partition.unknown).count() as u64;
            rows.push(BlockingRow {
                n,
                tp,
                fp,
                pop: tp + fp,
                unknown,
            });
            blocks_per_n.push((n, blocks.len() as u64));
            span_per_n.push((n, blocks.address_span()));
        }
        BlockingTable {
            rows,
            blocks_per_n,
            span_per_n,
        }
    }
}

/// Gather candidate traffic: all addresses from `traffic` that share an
/// n-bit block with the old bot report (§6.1's `R_candidate` with n = 24).
pub fn collect_candidates<'a>(
    traffic: impl IntoIterator<Item = &'a Candidate>,
    bot_test: &IpSet,
    n: u8,
) -> Vec<Candidate> {
    let blocks = BlockSet::of(bot_test, n);
    traffic
        .into_iter()
        .filter(|c| blocks.contains(c.ip))
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ip {
        s.parse().expect("valid ip")
    }

    fn cand(s: &str, payload: bool) -> Candidate {
        Candidate {
            ip: ip(s),
            payload_bearing: payload,
        }
    }

    fn bot_test() -> IpSet {
        IpSet::from_ips([ip("9.1.1.10"), ip("9.1.2.10"), ip("9.5.5.5")])
    }

    #[test]
    fn partition_precedence() {
        let unclean = IpSet::from_ips([ip("9.1.1.50")]);
        let cands = vec![
            cand("9.1.1.50", false), // hostile even without payload
            cand("9.1.1.51", false), // unknown
            cand("9.1.1.52", true),  // innocent
        ];
        let p = Partition::new(&cands, &unclean);
        assert_eq!(p.hostile.len(), 1);
        assert_eq!(p.unknown.len(), 1);
        assert_eq!(p.innocent.len(), 1);
        assert_eq!(p.total(), 3);
        assert_eq!(p.scored().len(), 2);
        assert!(p.hostile.contains(ip("9.1.1.50")));
        assert!(p.unknown.contains(ip("9.1.1.51")));
        assert!(p.innocent.contains(ip("9.1.1.52")));
    }

    #[test]
    fn collect_candidates_filters_by_block() {
        let traffic = vec![
            cand("9.1.1.200", true), // same /24 as 9.1.1.10
            cand("9.1.3.200", true), // different /24
            cand("9.5.5.77", false), // same /24 as 9.5.5.5
        ];
        let got = collect_candidates(&traffic, &bot_test(), 24);
        let ips: Vec<String> = got.iter().map(|c| c.ip.to_string()).collect();
        assert_eq!(ips, vec!["9.1.1.200", "9.5.5.77"]);
    }

    #[test]
    fn table_rows_shrink_with_longer_prefixes() {
        let unclean = IpSet::from_ips([ip("9.1.1.200"), ip("9.5.5.5")]);
        let cands = vec![
            cand("9.1.1.200", true),
            cand("9.1.1.201", true),
            cand("9.1.2.77", false),
            cand("9.5.5.5", false),
        ];
        let p = Partition::new(&cands, &unclean);
        let table = BlockingAnalysis::default().run(&bot_test(), &p);
        assert_eq!(table.rows.len(), 9); // 24..=32
        let r24 = table.row(24).expect("row");
        // At /24 everything is inside some block: tp = 2 (9.1.1.200 and
        // 9.5.5.5), fp = 1 (9.1.1.201), unknown = 1 (9.1.2.77).
        assert_eq!((r24.tp, r24.fp, r24.unknown, r24.pop), (2, 1, 1, 3));
        let r32 = table.row(32).expect("row");
        // At /32 only exact matches with bot-test blocks count: 9.5.5.5.
        assert_eq!((r32.tp, r32.fp, r32.unknown, r32.pop), (1, 0, 0, 1));
        // Monotone: pop shrinks as n grows.
        assert!(table.rows.windows(2).all(|w| w[0].pop >= w[1].pop));
    }

    #[test]
    fn precision_calculations() {
        let row = BlockingRow {
            n: 24,
            tp: 287,
            fp: 35,
            pop: 322,
            unknown: 708,
        };
        assert!((row.precision() - 287.0 / 322.0).abs() < 1e-12);
        // (287 + 708) / (322 + 708) ≈ 0.966, the paper's 97%.
        assert!((row.precision_assuming_unknown_hostile() - 995.0 / 1030.0).abs() < 1e-12);
        let empty = BlockingRow {
            n: 32,
            tp: 0,
            fp: 0,
            pop: 0,
            unknown: 0,
        };
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.precision_assuming_unknown_hostile(), 0.0);
    }

    #[test]
    fn span_reflects_sparseness_argument() {
        let p = Partition::new(&[], &IpSet::empty());
        let table = BlockingAnalysis::default().run(&bot_test(), &p);
        // bot_test covers 3 distinct /24s → span 3 * 256 = 768.
        assert_eq!(table.span_per_n[0], (24, 768));
        assert_eq!(table.blocks_per_n[0], (24, 3));
        // And 3 /32s → span 3.
        assert_eq!(table.span_per_n[8], (32, 3));
    }

    #[test]
    fn roc_derivation() {
        let unclean = IpSet::from_ips([ip("9.1.1.200")]);
        let cands = vec![cand("9.1.1.200", true), cand("9.1.1.201", true)];
        let p = Partition::new(&cands, &unclean);
        let table = BlockingAnalysis::default().run(&bot_test(), &p);
        let roc = table.roc(p.hostile.len() as u64, p.innocent.len() as u64);
        assert_eq!(roc.points().len(), 9);
        let p24 = &roc.points()[0];
        assert_eq!(p24.characteristic, 24);
        assert!((p24.tpr() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty report")]
    fn empty_bot_test_panics() {
        let p = Partition::new(&[], &IpSet::empty());
        BlockingAnalysis::default().run(&IpSet::empty(), &p);
    }

    #[test]
    fn duplicate_candidates_collapse() {
        // The same address seen with and without payload: sets dedupe, and
        // hostile precedence keeps classification coherent.
        let unclean = IpSet::empty();
        let cands = vec![cand("9.1.1.7", false), cand("9.1.1.7", true)];
        let p = Partition::new(&cands, &unclean);
        // One lands in unknown, one in innocent, as distinct *instances*,
        // but as sets each holds the single address.
        assert_eq!(p.unknown.len(), 1);
        assert_eq!(p.innocent.len(), 1);
    }
}
