//! Multidimensional uncleanliness scoring — the paper's stated next step
//! (§7): *"a multidimensional uncleanliness metric to measure the
//! aggregate probability that an address is occupied."*
//!
//! The score combines the per-network evidence from all four indicator
//! classes. Because §5.2 shows phishing is a *different dimension* from
//! the bot/spam/scan cluster (bot history predicts spam and scanning but
//! not phishing), the default weighting keeps phishing's contribution
//! separate and small; callers studying hosting abuse can invert that.
//!
//! Counts enter through `log1p` so that one prolific network cannot drown
//! the ranking by a single indicator, and each class is weighted before
//! summation. The result is a ranked list of networks with per-class
//! evidence attached.

use crate::cidr::Cidr;
use crate::ip::Ip;
use crate::report::{Report, ReportClass};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-class weights for the combined score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoreWeights {
    /// Weight for bot-report members.
    pub bots: f64,
    /// Weight for spam-report members.
    pub spamming: f64,
    /// Weight for scan-report members.
    pub scanning: f64,
    /// Weight for phishing-report members.
    pub phishing: f64,
}

impl Default for ScoreWeights {
    fn default() -> ScoreWeights {
        // Bots are the direct compromise signal; spam/scan are correlated
        // uses of the same machines; phishing is its own dimension.
        ScoreWeights {
            bots: 1.0,
            spamming: 0.8,
            scanning: 0.8,
            phishing: 0.3,
        }
    }
}

impl ScoreWeights {
    /// The weight applied to a report class (Control/Special score 0).
    pub fn for_class(&self, class: ReportClass) -> f64 {
        match class {
            ReportClass::Bots => self.bots,
            ReportClass::Spamming => self.spamming,
            ReportClass::Scanning => self.scanning,
            ReportClass::Phishing => self.phishing,
            ReportClass::Control | ReportClass::Special => 0.0,
        }
    }
}

/// Per-network indicator evidence and combined score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkScore {
    /// The scored network block.
    pub network: Cidr,
    /// Combined weighted score.
    pub score: f64,
    /// Bot addresses observed in the network.
    pub bots: u32,
    /// Spamming addresses observed.
    pub spamming: u32,
    /// Scanning addresses observed.
    pub scanning: u32,
    /// Phishing addresses observed.
    pub phishing: u32,
}

impl NetworkScore {
    /// Total indicator addresses across classes (with multiplicity across
    /// classes — one host can be bot *and* spammer).
    pub fn total_evidence(&self) -> u32 {
        self.bots + self.spamming + self.scanning + self.phishing
    }
}

/// The scorer: aggregation prefix length plus class weights.
#[derive(Debug, Clone, Copy)]
pub struct UncleanlinessScorer {
    /// Network granularity (the paper's network unit; 16 for /16s).
    pub prefix_len: u8,
    /// Class weights.
    pub weights: ScoreWeights,
}

impl Default for UncleanlinessScorer {
    fn default() -> UncleanlinessScorer {
        UncleanlinessScorer {
            prefix_len: 16,
            weights: ScoreWeights::default(),
        }
    }
}

impl UncleanlinessScorer {
    /// Score every network that appears in at least one report, ranked
    /// most-unclean first (ties broken by network for determinism).
    ///
    /// Pass each class's report once; reports of class Control/Special are
    /// ignored (weight 0). Scores are `Σ_class w_class · ln(1 + count)`.
    pub fn score(&self, reports: &[&Report]) -> Vec<NetworkScore> {
        assert!(self.prefix_len <= 32, "prefix length out of range");
        let mut acc: HashMap<u32, NetworkScore> = HashMap::new();
        let shift = 32 - self.prefix_len as u32;
        for report in reports {
            let class = report.class();
            if self.weights.for_class(class) == 0.0 {
                continue;
            }
            for ip in report.addresses().iter() {
                let key = if self.prefix_len == 0 {
                    0
                } else {
                    ip.raw() >> shift
                };
                let entry = acc.entry(key).or_insert_with(|| NetworkScore {
                    network: Cidr::of(ip, self.prefix_len),
                    score: 0.0,
                    bots: 0,
                    spamming: 0,
                    scanning: 0,
                    phishing: 0,
                });
                match class {
                    ReportClass::Bots => entry.bots += 1,
                    ReportClass::Spamming => entry.spamming += 1,
                    ReportClass::Scanning => entry.scanning += 1,
                    ReportClass::Phishing => entry.phishing += 1,
                    _ => unreachable!("zero-weight classes skipped above"),
                }
            }
        }
        let mut out: Vec<NetworkScore> = acc
            .into_values()
            .map(|mut ns| {
                ns.score = self.weights.bots * f64::ln(1.0 + ns.bots as f64)
                    + self.weights.spamming * f64::ln(1.0 + ns.spamming as f64)
                    + self.weights.scanning * f64::ln(1.0 + ns.scanning as f64)
                    + self.weights.phishing * f64::ln(1.0 + ns.phishing as f64);
                ns
            })
            .collect();
        out.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then_with(|| a.network.cmp(&b.network))
        });
        out
    }

    /// Score of one address's network, if any report implicates it.
    pub fn score_of(&self, reports: &[&Report], ip: Ip) -> Option<f64> {
        let target = Cidr::of(ip, self.prefix_len);
        self.score(reports)
            .into_iter()
            .find(|ns| ns.network == target)
            .map(|ns| ns.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipset::IpSet;
    use crate::report::Provenance;
    use crate::time::{DateRange, Day};

    fn report(class: ReportClass, addrs: &[u32]) -> Report {
        Report::new(
            format!("{class}"),
            class,
            Provenance::Provided,
            DateRange::new(Day(0), Day(13)),
            IpSet::from_raw(addrs.to_vec()),
        )
    }

    fn addr(a: u32, b: u32, c: u32, d: u32) -> u32 {
        (a << 24) | (b << 16) | (c << 8) | d
    }

    #[test]
    fn ranks_multi_indicator_networks_first() {
        // Network 9.1/16 shows bots + spam; 9.2/16 only spam; 9.3/16 only
        // phishing (low weight).
        let bots = report(ReportClass::Bots, &[addr(9, 1, 0, 1), addr(9, 1, 0, 2)]);
        let spam = report(ReportClass::Spamming, &[addr(9, 1, 0, 1), addr(9, 2, 0, 1)]);
        let phish = report(ReportClass::Phishing, &[addr(9, 3, 0, 1), addr(9, 3, 0, 2)]);
        let scores = UncleanlinessScorer::default().score(&[&bots, &spam, &phish]);
        assert_eq!(scores.len(), 3);
        assert_eq!(scores[0].network.to_string(), "9.1.0.0/16");
        assert!(scores[0].score > scores[1].score);
        assert_eq!(scores[0].bots, 2);
        assert_eq!(scores[0].spamming, 1);
        assert_eq!(scores[0].total_evidence(), 3);
        // Phishing-only network ranks last under default weights.
        assert_eq!(scores[2].network.to_string(), "9.3.0.0/16");
    }

    #[test]
    fn log_damping_prevents_single_indicator_domination() {
        // 200 scanners in one network vs 5 bots + 5 spammers in another:
        // the multi-indicator network should win despite fewer addresses.
        let scan: Vec<u32> = (0..200).map(|i| addr(9, 9, i / 200, i % 200)).collect();
        let scan = report(ReportClass::Scanning, &scan);
        let bots = report(
            ReportClass::Bots,
            &[
                addr(9, 8, 0, 1),
                addr(9, 8, 0, 2),
                addr(9, 8, 0, 3),
                addr(9, 8, 0, 4),
                addr(9, 8, 0, 5),
            ],
        );
        let spam = report(
            ReportClass::Spamming,
            &[
                addr(9, 8, 1, 1),
                addr(9, 8, 1, 2),
                addr(9, 8, 1, 3),
                addr(9, 8, 1, 4),
                addr(9, 8, 1, 5),
            ],
        );
        let scores = UncleanlinessScorer::default().score(&[&scan, &bots, &spam]);
        // ln(201)*0.8 = 4.24 vs ln(6)*1.0 + ln(6)*0.8 = 3.22 — scanning
        // still wins on volume, but within the same order of magnitude.
        let top = &scores[0];
        let second = &scores[1];
        assert!(top.score / second.score < 2.0, "no runaway domination");
    }

    #[test]
    fn control_reports_are_ignored() {
        let control = report(ReportClass::Control, &[addr(9, 1, 0, 1)]);
        let scores = UncleanlinessScorer::default().score(&[&control]);
        assert!(scores.is_empty());
    }

    #[test]
    fn prefix_granularity() {
        let bots = report(ReportClass::Bots, &[addr(9, 1, 1, 1), addr(9, 1, 2, 1)]);
        let at16 = UncleanlinessScorer {
            prefix_len: 16,
            ..Default::default()
        }
        .score(&[&bots]);
        let at24 = UncleanlinessScorer {
            prefix_len: 24,
            ..Default::default()
        }
        .score(&[&bots]);
        assert_eq!(at16.len(), 1);
        assert_eq!(at24.len(), 2);
        assert_eq!(at16[0].bots, 2);
    }

    #[test]
    fn score_of_single_network() {
        let bots = report(ReportClass::Bots, &[addr(9, 1, 0, 1)]);
        let scorer = UncleanlinessScorer::default();
        let s = scorer.score_of(&[&bots], Ip(addr(9, 1, 200, 200)));
        assert!(s.expect("network is implicated") > 0.0);
        assert!(scorer.score_of(&[&bots], Ip(addr(10, 0, 0, 1))).is_none());
    }

    #[test]
    fn deterministic_ordering_with_ties() {
        let a = report(ReportClass::Bots, &[addr(9, 1, 0, 1)]);
        let b = report(ReportClass::Bots, &[addr(9, 2, 0, 1)]);
        let s1 = UncleanlinessScorer::default().score(&[&a, &b]);
        let s2 = UncleanlinessScorer::default().score(&[&a, &b]);
        assert_eq!(s1, s2);
        // Equal scores tie-break by network order.
        assert_eq!(s1[0].network.to_string(), "9.1.0.0/16");
    }

    #[test]
    fn custom_weights_flip_the_ranking() {
        let bots = report(ReportClass::Bots, &[addr(9, 1, 0, 1)]);
        let phish = report(ReportClass::Phishing, &[addr(9, 3, 0, 1)]);
        let hosting_focused = UncleanlinessScorer {
            weights: ScoreWeights {
                bots: 0.2,
                spamming: 0.1,
                scanning: 0.1,
                phishing: 1.0,
            },
            ..Default::default()
        };
        let scores = hosting_focused.score(&[&bots, &phish]);
        assert_eq!(scores[0].network.to_string(), "9.3.0.0/16");
    }
}
