//! Cross-indicator overlap analysis.
//!
//! The paper's abstract claims: *"We further show evidence for
//! cross-relationship between the various datasets, showing that botnet
//! activity predicts spamming and scanning, while phishing activity
//! appears to be unrelated to the other indicators."* Beyond the temporal
//! prediction tests, the simplest evidence is contemporaneous overlap:
//! how many addresses (or /24s) two indicator reports share, against what
//! equal-size random draws would share. This module computes that matrix.

use crate::blocks::BlockSet;
use crate::report::Report;
use serde::{Deserialize, Serialize};

/// Overlap between one ordered pair of reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapCell {
    /// Tag of the row report.
    pub a: String,
    /// Tag of the column report.
    pub b: String,
    /// `|A ∩ B|` at the address level.
    pub addresses: usize,
    /// `|C_24(A) ∩ C_24(B)|`.
    pub blocks24: u64,
    /// Jaccard index at the address level: `|A∩B| / |A∪B|`.
    pub jaccard: f64,
    /// Fraction of the *smaller* report contained in the larger — the
    /// containment coefficient, which is the operationally interesting
    /// number ("35% of the botnet was seen scanning").
    pub containment: f64,
}

/// The full pairwise overlap matrix for a set of reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapMatrix {
    /// Report tags, in input order.
    pub tags: Vec<String>,
    /// Cells for every unordered pair (i < j), row-major.
    pub cells: Vec<OverlapCell>,
}

impl OverlapMatrix {
    /// Compute overlaps for every unordered pair.
    pub fn compute(reports: &[&Report]) -> OverlapMatrix {
        assert!(reports.len() >= 2, "need at least two reports to intersect");
        let tags: Vec<String> = reports.iter().map(|r| r.tag().to_string()).collect();
        let blocks: Vec<BlockSet> = reports.iter().map(|r| r.blocks(24)).collect();
        let mut cells = Vec::new();
        for i in 0..reports.len() {
            for j in i + 1..reports.len() {
                let (a, b) = (reports[i], reports[j]);
                let inter = a.addresses().intersect(b.addresses()).len();
                let union = a.len() + b.len() - inter;
                let smaller = a.len().min(b.len());
                cells.push(OverlapCell {
                    a: tags[i].clone(),
                    b: tags[j].clone(),
                    addresses: inter,
                    blocks24: blocks[i].intersect_count(&blocks[j]),
                    jaccard: if union == 0 {
                        0.0
                    } else {
                        inter as f64 / union as f64
                    },
                    containment: if smaller == 0 {
                        0.0
                    } else {
                        inter as f64 / smaller as f64
                    },
                });
            }
        }
        OverlapMatrix { tags, cells }
    }

    /// The cell for a pair of tags, if present (order-insensitive).
    pub fn cell(&self, a: &str, b: &str) -> Option<&OverlapCell> {
        self.cells
            .iter()
            .find(|c| (c.a == a && c.b == b) || (c.a == b && c.b == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipset::IpSet;
    use crate::report::{Provenance, ReportClass};
    use crate::time::{DateRange, Day};

    fn report(tag: &str, addrs: &[u32]) -> Report {
        Report::new(
            tag,
            ReportClass::Bots,
            Provenance::Provided,
            DateRange::new(Day(0), Day(13)),
            IpSet::from_raw(addrs.to_vec()),
        )
    }

    #[test]
    fn pairwise_cells() {
        let a = report("bot", &[1, 2, 3, 256 + 1]);
        let b = report("spam", &[2, 3, 4]);
        let c = report("phish", &[1 << 30]);
        let m = OverlapMatrix::compute(&[&a, &b, &c]);
        assert_eq!(m.tags, vec!["bot", "spam", "phish"]);
        assert_eq!(m.cells.len(), 3);

        let ab = m.cell("bot", "spam").expect("cell");
        assert_eq!(ab.addresses, 2);
        // Jaccard 2 / (4 + 3 - 2) = 0.4; containment 2/3.
        assert!((ab.jaccard - 0.4).abs() < 1e-12);
        assert!((ab.containment - 2.0 / 3.0).abs() < 1e-12);
        // /24 blocks: bot occupies {0, 1}; spam occupies {0} → 1 shared.
        assert_eq!(ab.blocks24, 1);

        let ac = m.cell("phish", "bot").expect("order-insensitive");
        assert_eq!(ac.addresses, 0);
        assert_eq!(ac.jaccard, 0.0);
        assert_eq!(ac.blocks24, 0);
    }

    #[test]
    fn identical_reports_have_full_overlap() {
        let a = report("x", &[10, 20, 30]);
        let b = report("y", &[10, 20, 30]);
        let m = OverlapMatrix::compute(&[&a, &b]);
        let cell = &m.cells[0];
        assert_eq!(cell.addresses, 3);
        assert!((cell.jaccard - 1.0).abs() < 1e-12);
        assert!((cell.containment - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_yields_zeroes() {
        let a = report("x", &[1]);
        let b = report("none", &[]);
        let m = OverlapMatrix::compute(&[&a, &b]);
        assert_eq!(m.cells[0].addresses, 0);
        assert_eq!(m.cells[0].containment, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_report_rejected() {
        let a = report("x", &[1]);
        let _ = OverlapMatrix::compute(&[&a]);
    }

    #[test]
    fn missing_cell_is_none() {
        let a = report("x", &[1]);
        let b = report("y", &[2]);
        let m = OverlapMatrix::compute(&[&a, &b]);
        assert!(m.cell("x", "z").is_none());
    }
}
