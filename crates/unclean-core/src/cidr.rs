//! CIDR blocks and the paper's masking function `C_n`.
//!
//! §3.1: *"We define a CIDR masking function `C_n(i)`. The CIDR masking
//! function evaluates to the unique CIDR block with prefix length n that
//! contains the IP address i (e.g., C₁₆(127.1.135.14) = 127.1.0.0/16)."*
//! [`Cidr::of`] is exactly that function. Applying it to whole sets (the
//! paper's Eq. 1) lives in [`crate::blocks::BlockSet`].

use crate::error::Error;
use crate::ip::Ip;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A CIDR block: a base address (with host bits zeroed) plus a prefix
/// length in `[0, 32]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Cidr {
    base: u32,
    len: u8,
}

/// The 32-bit network mask for a prefix length. `mask(0) == 0`,
/// `mask(32) == 0xffff_ffff`.
pub const fn mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl Cidr {
    /// The paper's `C_n(i)`: the unique block of prefix length `n`
    /// containing `ip`. Panics if `n > 32` (a programmer error — prefix
    /// lengths are compile-time-ish constants in every analysis).
    pub fn of(ip: Ip, n: u8) -> Cidr {
        assert!(n <= 32, "prefix length {n} out of range");
        Cidr {
            base: ip.raw() & mask(n),
            len: n,
        }
    }

    /// Construct from a base that must already be properly masked.
    pub fn new(base: Ip, len: u8) -> Result<Cidr, Error> {
        if len > 32 {
            return Err(Error::InvalidPrefixLen(len));
        }
        if base.raw() & !mask(len) != 0 {
            return Err(Error::UnalignedCidr { base, len });
        }
        Ok(Cidr {
            base: base.raw(),
            len,
        })
    }

    /// The (masked) base address.
    pub const fn base(&self) -> Ip {
        Ip(self.base)
    }

    /// The prefix length.
    pub const fn len(&self) -> u8 {
        self.len
    }

    /// Whether the block covers no addresses — never true; present so the
    /// `len`/`is_empty` API convention holds.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// First address in the block (== base).
    pub const fn first(&self) -> Ip {
        Ip(self.base)
    }

    /// Last address in the block.
    pub const fn last(&self) -> Ip {
        Ip(self.base | !mask(self.len))
    }

    /// Number of addresses covered (2^(32−len)); 2³² for the zero prefix.
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// Whether `ip` falls inside this block.
    pub fn contains(&self, ip: Ip) -> bool {
        ip.raw() & mask(self.len) == self.base
    }

    /// Whether `other` is entirely inside this block (equal counts).
    pub fn contains_cidr(&self, other: &Cidr) -> bool {
        other.len >= self.len && other.base & mask(self.len) == self.base
    }

    /// The enclosing block one bit shorter; `None` at the zero prefix.
    pub fn parent(&self) -> Option<Cidr> {
        if self.len == 0 {
            None
        } else {
            Some(Cidr {
                base: self.base & mask(self.len - 1),
                len: self.len - 1,
            })
        }
    }

    /// The two halves of this block; `None` for a /32.
    pub fn split(&self) -> Option<(Cidr, Cidr)> {
        if self.len == 32 {
            return None;
        }
        let l = Cidr {
            base: self.base,
            len: self.len + 1,
        };
        let r = Cidr {
            base: self.base | (1 << (31 - self.len)),
            len: self.len + 1,
        };
        Some((l, r))
    }

    /// Iterate over every address in the block. Be sensible: a /8 yields
    /// 16.7M items.
    pub fn addrs(&self) -> impl Iterator<Item = Ip> {
        let first = self.base as u64;
        let size = self.size();
        (first..first + size).map(|v| Ip(v as u32))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl FromStr for Cidr {
    type Err = Error;

    fn from_str(s: &str) -> Result<Cidr, Error> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| Error::ParseCidr(s.to_string()))?;
        let base: Ip = addr.parse().map_err(|_| Error::ParseCidr(s.to_string()))?;
        let len: u8 = len.parse().map_err(|_| Error::ParseCidr(s.to_string()))?;
        Cidr::new(base, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_c16() {
        // §3.1: C₁₆(127.1.135.14) = 127.1.0.0/16.
        let ip: Ip = "127.1.135.14".parse().expect("valid");
        let block = Cidr::of(ip, 16);
        assert_eq!(block.to_string(), "127.1.0.0/16");
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 0x8000_0000);
        assert_eq!(mask(16), 0xffff_0000);
        assert_eq!(mask(24), 0xffff_ff00);
        assert_eq!(mask(32), 0xffff_ffff);
    }

    #[test]
    fn of_masks_host_bits() {
        let ip = Ip::from_octets(10, 20, 30, 40);
        assert_eq!(Cidr::of(ip, 24).base(), Ip::from_octets(10, 20, 30, 0));
        assert_eq!(Cidr::of(ip, 32).base(), ip);
        assert_eq!(Cidr::of(ip, 0).base(), Ip(0));
    }

    #[test]
    fn new_rejects_unaligned_and_long() {
        assert!(Cidr::new(Ip::from_octets(10, 0, 0, 1), 24).is_err());
        assert!(Cidr::new(Ip::from_octets(10, 0, 0, 0), 33).is_err());
        assert!(Cidr::new(Ip::from_octets(10, 0, 0, 0), 24).is_ok());
    }

    #[test]
    fn first_last_size() {
        let c: Cidr = "192.168.4.0/22".parse().expect("valid");
        assert_eq!(c.first(), Ip::from_octets(192, 168, 4, 0));
        assert_eq!(c.last(), Ip::from_octets(192, 168, 7, 255));
        assert_eq!(c.size(), 1024);
        let all: Cidr = "0.0.0.0/0".parse().expect("valid");
        assert_eq!(all.size(), 1u64 << 32);
        assert_eq!(all.last(), Ip(u32::MAX));
    }

    #[test]
    fn contains_boundaries() {
        let c: Cidr = "10.1.2.0/24".parse().expect("valid");
        assert!(c.contains(Ip::from_octets(10, 1, 2, 0)));
        assert!(c.contains(Ip::from_octets(10, 1, 2, 255)));
        assert!(!c.contains(Ip::from_octets(10, 1, 3, 0)));
        assert!(!c.contains(Ip::from_octets(10, 1, 1, 255)));
    }

    #[test]
    fn contains_cidr_nesting() {
        let outer: Cidr = "10.0.0.0/8".parse().expect("valid");
        let inner: Cidr = "10.5.0.0/16".parse().expect("valid");
        assert!(outer.contains_cidr(&inner));
        assert!(!inner.contains_cidr(&outer));
        assert!(outer.contains_cidr(&outer));
        let other: Cidr = "11.0.0.0/16".parse().expect("valid");
        assert!(!outer.contains_cidr(&other));
    }

    #[test]
    fn parent_and_split_invert() {
        let c: Cidr = "10.1.2.0/24".parse().expect("valid");
        let (l, r) = c.split().expect("splittable");
        assert_eq!(l.to_string(), "10.1.2.0/25");
        assert_eq!(r.to_string(), "10.1.2.128/25");
        assert_eq!(l.parent(), Some(c));
        assert_eq!(r.parent(), Some(c));
        let host: Cidr = "10.1.2.3/32".parse().expect("valid");
        assert!(host.split().is_none());
        let all: Cidr = "0.0.0.0/0".parse().expect("valid");
        assert!(all.parent().is_none());
    }

    #[test]
    fn addrs_iterates_exactly_the_block() {
        let c: Cidr = "10.0.0.252/30".parse().expect("valid");
        let got: Vec<String> = c.addrs().map(|i| i.to_string()).collect();
        assert_eq!(
            got,
            vec!["10.0.0.252", "10.0.0.253", "10.0.0.254", "10.0.0.255"]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "10.0.0.0",
            "10.0.0.0/",
            "/24",
            "10.0.0.0/33",
            "10.0.0.1/24",
            "x/8",
        ] {
            assert!(s.parse::<Cidr>().is_err(), "{s:?}");
        }
    }

    #[test]
    fn display_round_trip() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.168.4.0/22", "1.2.3.4/32"] {
            assert_eq!(s.parse::<Cidr>().expect("valid").to_string(), s);
        }
    }
}
