//! A binary prefix trie over IPv4 addresses.
//!
//! The analyses use the flat sorted-vector representations in
//! [`crate::blocks`] for speed, but some operations are naturally
//! tree-shaped: aggregating an address set into its *minimal* covering
//! CIDR list (for emitting router-ready block lists), walking occupied
//! blocks in prefix order, and validating the fast block counters against
//! an independent implementation. [`PrefixTrie`] provides those.

use crate::cidr::Cidr;
use crate::ip::Ip;
use crate::ipset::IpSet;
use unclean_telemetry::{Counter, Registry};

/// Index of a trie node in the arena; `NONE` marks an absent child.
type NodeIdx = u32;
const NONE: NodeIdx = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    children: [NodeIdx; 2],
}

impl Node {
    fn leaf() -> Node {
        Node {
            children: [NONE, NONE],
        }
    }
}

/// An arena-allocated binary trie keyed by address bits, most significant
/// first. Every inserted address creates a full 32-deep path.
#[derive(Debug, Clone)]
pub struct PrefixTrie {
    nodes: Vec<Node>,
    len: usize,
    inserts_counter: Counter,
    lookups_counter: Counter,
}

impl Default for PrefixTrie {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefixTrie {
    /// An empty trie (just the root).
    pub fn new() -> PrefixTrie {
        PrefixTrie {
            nodes: vec![Node::leaf()],
            len: 0,
            inserts_counter: Counter::disabled(),
            lookups_counter: Counter::disabled(),
        }
    }

    /// Build from a set of addresses.
    pub fn from_set(set: &IpSet) -> PrefixTrie {
        let mut t = PrefixTrie::new();
        for ip in set.iter() {
            t.insert(ip);
        }
        t
    }

    /// Record hot-path traffic onto `registry`: `core.trie.inserts`
    /// (every [`PrefixTrie::insert`] call, new or duplicate) and
    /// `core.trie.lookups` (every containment query).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.inserts_counter = registry.counter("core.trie.inserts");
        self.lookups_counter = registry.counter("core.trie.lookups");
    }

    /// Insert one address; returns whether it was new.
    pub fn insert(&mut self, ip: Ip) -> bool {
        self.inserts_counter.inc();
        let mut idx: usize = 0;
        let mut created = false;
        for depth in 0..32 {
            let bit = ((ip.raw() >> (31 - depth)) & 1) as usize;
            let child = self.nodes[idx].children[bit];
            idx = if child == NONE {
                let new_idx = self.nodes.len() as NodeIdx;
                self.nodes.push(Node::leaf());
                self.nodes[idx].children[bit] = new_idx;
                created = true;
                new_idx as usize
            } else {
                child as usize
            };
        }
        if created {
            self.len += 1;
        }
        created
    }

    /// Number of distinct addresses inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no addresses were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the exact address is present.
    pub fn contains(&self, ip: Ip) -> bool {
        self.lookups_counter.inc();
        self.node_at(ip, 32).is_some()
    }

    /// Whether any inserted address shares the leading `n` bits of `ip` —
    /// the inclusion relation `i ⊏ S` at prefix length `n`.
    pub fn contains_prefix(&self, ip: Ip, n: u8) -> bool {
        assert!(n <= 32, "prefix length {n} out of range");
        self.lookups_counter.inc();
        self.node_at(ip, n).is_some()
    }

    fn node_at(&self, ip: Ip, depth: u8) -> Option<usize> {
        let mut idx: usize = 0;
        if self.len == 0 {
            return None;
        }
        for d in 0..depth {
            let bit = ((ip.raw() >> (31 - d)) & 1) as usize;
            let child = self.nodes[idx].children[bit];
            if child == NONE {
                return None;
            }
            idx = child as usize;
        }
        Some(idx)
    }

    /// Number of distinct `n`-bit blocks occupied — an independent check of
    /// [`crate::blocks::BlockCounts`]. O(nodes).
    pub fn block_count(&self, n: u8) -> u64 {
        assert!(n <= 32, "prefix length {n} out of range");
        if self.len == 0 {
            return 0;
        }
        // BFS to depth n, counting nodes at that depth.
        let mut frontier = vec![0usize];
        for _ in 0..n {
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for idx in frontier {
                for &c in &self.nodes[idx].children {
                    if c != NONE {
                        next.push(c as usize);
                    }
                }
            }
            frontier = next;
        }
        frontier.len() as u64
    }

    /// The minimal CIDR list covering exactly the inserted addresses: a
    /// block appears iff every address under it was inserted, and sibling
    /// pairs are merged bottom-up. This is what a router block list wants.
    pub fn aggregate(&self) -> Vec<Cidr> {
        let mut out = Vec::new();
        if self.len > 0 {
            self.aggregate_rec(0, 0, 0, &mut out);
        }
        out
    }

    /// Returns true iff the subtree at `idx` (depth `depth`, prefix `prefix`
    /// in the high bits) is *complete* — every address under it present.
    fn aggregate_rec(&self, idx: usize, depth: u8, prefix: u32, out: &mut Vec<Cidr>) -> bool {
        if depth == 32 {
            return true;
        }
        let node = &self.nodes[idx];
        let (l, r) = (node.children[0], node.children[1]);
        let mut complete = [false, false];
        let mut pending = Vec::new();
        for (bit, child) in [l, r].into_iter().enumerate() {
            if child != NONE {
                let child_prefix = prefix | ((bit as u32) << (31 - depth));
                let before = out.len();
                complete[bit] = self.aggregate_rec(child as usize, depth + 1, child_prefix, out);
                if complete[bit] {
                    // Child emitted nothing; remember it in case we need to
                    // emit it (when the sibling is absent or incomplete).
                    pending.push((child_prefix, depth + 1, before));
                }
            }
        }
        if complete[0] && complete[1] {
            // Both halves complete: this whole block is complete; let the
            // parent merge further.
            return true;
        }
        // Emit any complete children that cannot merge upward.
        for (child_prefix, child_depth, _) in pending {
            out.push(Cidr::new(Ip(child_prefix), child_depth).expect("trie prefixes are aligned"));
        }
        false
    }

    /// Freeze this address trie into a serving-ready
    /// [`crate::frozen::FrozenTrie`]: the minimal CIDR cover
    /// ([`PrefixTrie::aggregate`]) becomes the frozen block set, every
    /// block at `score`. The result answers "is this address in the set
    /// (and under which block)?" with no per-node pointers on the hot
    /// path.
    pub fn freeze(&self, score: f64) -> crate::frozen::FrozenTrie {
        crate::frozen::FrozenTrie::from_scored(self.aggregate().into_iter().map(|c| (c, score)))
    }

    /// Walk occupied `n`-bit blocks in ascending order.
    pub fn blocks(&self, n: u8) -> Vec<Cidr> {
        assert!(n <= 32, "prefix length {n} out of range");
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        let mut stack = vec![(0usize, 0u8, 0u32)];
        // Depth-first, right child pushed first so pops come in order.
        while let Some((idx, depth, prefix)) = stack.pop() {
            if depth == n {
                out.push(Cidr::new(Ip(prefix), n).expect("aligned"));
                continue;
            }
            let node = &self.nodes[idx];
            if node.children[1] != NONE {
                stack.push((
                    node.children[1] as usize,
                    depth + 1,
                    prefix | (1 << (31 - depth)),
                ));
            }
            if node.children[0] != NONE {
                stack.push((node.children[0] as usize, depth + 1, prefix));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::BlockCounts;

    fn ip(s: &str) -> Ip {
        s.parse().expect("valid ip")
    }

    #[test]
    fn insert_and_contains() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert!(t.insert(ip("10.1.2.3")));
        assert!(!t.insert(ip("10.1.2.3")), "duplicate insert reports false");
        assert!(t.insert(ip("10.1.2.4")));
        assert_eq!(t.len(), 2);
        assert!(t.contains(ip("10.1.2.3")));
        assert!(!t.contains(ip("10.1.2.5")));
    }

    #[test]
    fn contains_prefix_matches_inclusion() {
        let t = PrefixTrie::from_set(&IpSet::from_ips([ip("10.1.2.3")]));
        assert!(t.contains_prefix(ip("10.1.2.250"), 24));
        assert!(t.contains_prefix(ip("10.1.99.1"), 16));
        assert!(!t.contains_prefix(ip("10.2.0.0"), 16));
        assert!(t.contains_prefix(ip("255.255.255.255"), 0));
        assert!(!PrefixTrie::new().contains_prefix(ip("0.0.0.0"), 0));
    }

    #[test]
    fn block_count_agrees_with_fast_path() {
        let mut raw = Vec::new();
        for i in 0..500u32 {
            raw.push(i.wrapping_mul(2_654_435_761));
        }
        let set = IpSet::from_raw(raw);
        let t = PrefixTrie::from_set(&set);
        let counts = BlockCounts::of(&set);
        for n in [0u8, 1, 8, 15, 16, 20, 24, 31, 32] {
            assert_eq!(t.block_count(n), counts.at(n), "n = {n}");
        }
    }

    #[test]
    fn block_count_empty() {
        let t = PrefixTrie::new();
        for n in [0u8, 16, 32] {
            assert_eq!(t.block_count(n), 0);
        }
    }

    #[test]
    fn blocks_walk_in_order() {
        let set = IpSet::from_ips([ip("10.1.2.3"), ip("10.1.3.4"), ip("9.0.0.1")]);
        let t = PrefixTrie::from_set(&set);
        let blocks: Vec<String> = t.blocks(24).iter().map(|c| c.to_string()).collect();
        assert_eq!(blocks, vec!["9.0.0.0/24", "10.1.2.0/24", "10.1.3.0/24"]);
        assert_eq!(t.blocks(0).len(), 1);
        assert!(PrefixTrie::new().blocks(24).is_empty());
    }

    #[test]
    fn aggregate_merges_complete_blocks() {
        // A full /30 (4 addresses) collapses to one block.
        let set = IpSet::from_ips([
            ip("10.0.0.0"),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            ip("10.0.0.3"),
        ]);
        let t = PrefixTrie::from_set(&set);
        let agg: Vec<String> = t.aggregate().iter().map(|c| c.to_string()).collect();
        assert_eq!(agg, vec!["10.0.0.0/30"]);
    }

    #[test]
    fn aggregate_emits_singletons_as_slash32() {
        let set = IpSet::from_ips([ip("10.0.0.0"), ip("10.0.0.2")]);
        let t = PrefixTrie::from_set(&set);
        let agg: Vec<String> = t.aggregate().iter().map(|c| c.to_string()).collect();
        assert_eq!(agg, vec!["10.0.0.0/32", "10.0.0.2/32"]);
    }

    #[test]
    fn aggregate_mixed() {
        // A complete pair + a lone address.
        let set = IpSet::from_ips([ip("10.0.0.0"), ip("10.0.0.1"), ip("10.0.0.5")]);
        let t = PrefixTrie::from_set(&set);
        let mut agg: Vec<String> = t.aggregate().iter().map(|c| c.to_string()).collect();
        agg.sort();
        assert_eq!(agg, vec!["10.0.0.0/31", "10.0.0.5/32"]);
    }

    #[test]
    fn aggregate_covers_exactly_the_set() {
        // Property-style check on a deterministic pseudo-random set.
        let raw: Vec<u32> = (0..200u32)
            .map(|i| i.wrapping_mul(0x9e3779b9) >> 8)
            .collect();
        let set = IpSet::from_raw(raw);
        let t = PrefixTrie::from_set(&set);
        let agg = t.aggregate();
        // Every member covered by exactly one block.
        for m in set.iter() {
            let covering: Vec<&Cidr> = agg.iter().filter(|c| c.contains(m)).collect();
            assert_eq!(covering.len(), 1, "{m} covered once");
        }
        // Total span equals set size (cover is exact).
        let span: u64 = agg.iter().map(|c| c.size()).sum();
        assert_eq!(span, set.len() as u64);
    }

    #[test]
    fn empty_aggregate() {
        assert!(PrefixTrie::new().aggregate().is_empty());
    }

    #[test]
    fn freeze_serves_exactly_the_inserted_set() {
        // A full /30 plus a lone host: freeze covers exactly those five
        // addresses, via the aggregated cover.
        let set = IpSet::from_ips([
            ip("10.0.0.0"),
            ip("10.0.0.1"),
            ip("10.0.0.2"),
            ip("10.0.0.3"),
            ip("10.0.0.8"),
        ]);
        let frozen = PrefixTrie::from_set(&set).freeze(1.5);
        assert_eq!(frozen.len(), 2, "/30 cover + /32 singleton");
        for member in set.iter() {
            let m = frozen.lookup(member).expect("member covered");
            assert_eq!(m.score, 1.5);
        }
        assert!(!frozen.contains(ip("10.0.0.4")));
        assert!(!frozen.contains(ip("10.0.0.9")));
    }

    #[test]
    fn telemetry_counts_inserts_and_lookups() {
        let registry = unclean_telemetry::Registry::full();
        let mut t = PrefixTrie::new();
        t.attach_telemetry(&registry);
        t.insert(ip("10.1.2.3"));
        t.insert(ip("10.1.2.3")); // duplicate still counted as an insert
        assert!(t.contains(ip("10.1.2.3")));
        assert!(t.contains_prefix(ip("10.1.2.250"), 24));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["core.trie.inserts"], 2);
        assert_eq!(snap.counters["core.trie.lookups"], 2);
    }
}
