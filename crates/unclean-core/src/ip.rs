//! IPv4 addresses backed by `u32`, and the reserved-range taxonomy used to
//! filter reports.
//!
//! The paper's reports "have been filtered to only include addresses that
//! are outside of the observed network and are not otherwise reserved
//! (e.g., all addresses specified in RFC 1918 have been removed)" (§3.2).
//! [`ReservedClass`] enumerates the protocol-reserved ranges as of the
//! paper's era (2006/2007); filtering against the observed network itself
//! happens in [`crate::report`].

use crate::error::Error;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address. A transparent wrapper over the host-order `u32`, which
/// is the representation every analysis in this crate works in.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Ip(pub u32);

impl Ip {
    /// From dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The raw host-order value.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The address's /8 number (its first octet).
    pub const fn slash8(self) -> u8 {
        (self.0 >> 24) as u8
    }

    /// The protocol-reserved class this address falls in, if any.
    pub fn reserved_class(self) -> Option<ReservedClass> {
        use ReservedClass::*;
        let o = self.octets();
        match o[0] {
            0 => Some(ThisNetwork),
            10 => Some(Rfc1918),
            127 => Some(Loopback),
            169 if o[1] == 254 => Some(LinkLocal),
            172 if (16..=31).contains(&o[1]) => Some(Rfc1918),
            192 if o[1] == 168 => Some(Rfc1918),
            192 if o[1] == 0 && o[2] == 2 => Some(TestNet),
            198 if o[1] & 0xfe == 18 => Some(Benchmarking),
            224..=239 => Some(Multicast),
            240..=255 => Some(FutureUse),
            _ => None,
        }
    }

    /// Whether the address is protocol-reserved (never a real Internet host).
    pub fn is_reserved(self) -> bool {
        self.reserved_class().is_some()
    }
}

impl From<u32> for Ip {
    fn from(v: u32) -> Ip {
        Ip(v)
    }
}

impl From<Ip> for u32 {
    fn from(ip: Ip) -> u32 {
        ip.0
    }
}

impl From<std::net::Ipv4Addr> for Ip {
    fn from(a: std::net::Ipv4Addr) -> Ip {
        Ip(u32::from(a))
    }
}

impl From<Ip> for std::net::Ipv4Addr {
    fn from(ip: Ip) -> std::net::Ipv4Addr {
        std::net::Ipv4Addr::from(ip.0)
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl FromStr for Ip {
    type Err = Error;

    fn from_str(s: &str) -> Result<Ip, Error> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| Error::ParseIp(s.to_string()))?;
            if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(Error::ParseIp(s.to_string()));
            }
            *slot = part.parse().map_err(|_| Error::ParseIp(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(Error::ParseIp(s.to_string()));
        }
        Ok(Ip::from_octets(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// Protocol-reserved IPv4 ranges (per the RFCs in force in 2006).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReservedClass {
    /// 0.0.0.0/8 — "this network".
    ThisNetwork,
    /// RFC 1918 private space: 10/8, 172.16/12, 192.168/16.
    Rfc1918,
    /// 127.0.0.0/8 loopback.
    Loopback,
    /// 169.254.0.0/16 link-local (RFC 3927).
    LinkLocal,
    /// 192.0.2.0/24 TEST-NET.
    TestNet,
    /// 198.18.0.0/15 benchmarking (RFC 2544).
    Benchmarking,
    /// 224.0.0.0/4 multicast.
    Multicast,
    /// 240.0.0.0/4 reserved for future use (includes broadcast).
    FutureUse,
}

impl fmt::Display for ReservedClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReservedClass::ThisNetwork => "this-network (0/8)",
            ReservedClass::Rfc1918 => "RFC 1918 private",
            ReservedClass::Loopback => "loopback (127/8)",
            ReservedClass::LinkLocal => "link-local (169.254/16)",
            ReservedClass::TestNet => "TEST-NET (192.0.2/24)",
            ReservedClass::Benchmarking => "benchmarking (198.18/15)",
            ReservedClass::Multicast => "multicast (224/4)",
            ReservedClass::FutureUse => "future-use (240/4)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let ip = Ip::from_octets(127, 1, 135, 14);
        assert_eq!(ip.octets(), [127, 1, 135, 14]);
        assert_eq!(ip.raw(), 0x7f01_870e);
        assert_eq!(ip.slash8(), 127);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for s in ["0.0.0.0", "255.255.255.255", "192.168.1.1", "8.8.8.8"] {
            let ip: Ip = s.parse().expect("valid");
            assert_eq!(ip.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "a.b.c.d",
            "1..2.3",
            "01x.2.3.4",
            "1.2.3.1234",
        ] {
            assert!(s.parse::<Ip>().is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn std_conversions() {
        let std_ip: std::net::Ipv4Addr = "10.1.2.3".parse().expect("valid");
        let ip: Ip = std_ip.into();
        assert_eq!(ip, Ip::from_octets(10, 1, 2, 3));
        let back: std::net::Ipv4Addr = ip.into();
        assert_eq!(back, std_ip);
    }

    #[test]
    fn rfc1918_ranges() {
        assert_eq!(
            Ip::from_octets(10, 0, 0, 1).reserved_class(),
            Some(ReservedClass::Rfc1918)
        );
        assert_eq!(
            Ip::from_octets(172, 16, 0, 1).reserved_class(),
            Some(ReservedClass::Rfc1918)
        );
        assert_eq!(
            Ip::from_octets(172, 31, 255, 255).reserved_class(),
            Some(ReservedClass::Rfc1918)
        );
        assert_eq!(
            Ip::from_octets(192, 168, 44, 1).reserved_class(),
            Some(ReservedClass::Rfc1918)
        );
        // Edges that are NOT private.
        assert_eq!(Ip::from_octets(172, 15, 0, 1).reserved_class(), None);
        assert_eq!(Ip::from_octets(172, 32, 0, 1).reserved_class(), None);
        assert_eq!(Ip::from_octets(192, 169, 0, 1).reserved_class(), None);
        assert_eq!(Ip::from_octets(11, 0, 0, 1).reserved_class(), None);
    }

    #[test]
    fn other_reserved_ranges() {
        assert_eq!(
            Ip::from_octets(0, 1, 2, 3).reserved_class(),
            Some(ReservedClass::ThisNetwork)
        );
        assert_eq!(
            Ip::from_octets(127, 0, 0, 1).reserved_class(),
            Some(ReservedClass::Loopback)
        );
        assert_eq!(
            Ip::from_octets(169, 254, 9, 9).reserved_class(),
            Some(ReservedClass::LinkLocal)
        );
        assert_eq!(Ip::from_octets(169, 253, 9, 9).reserved_class(), None);
        assert_eq!(
            Ip::from_octets(192, 0, 2, 77).reserved_class(),
            Some(ReservedClass::TestNet)
        );
        assert_eq!(Ip::from_octets(192, 0, 3, 77).reserved_class(), None);
        assert_eq!(
            Ip::from_octets(198, 18, 0, 1).reserved_class(),
            Some(ReservedClass::Benchmarking)
        );
        assert_eq!(
            Ip::from_octets(198, 19, 255, 1).reserved_class(),
            Some(ReservedClass::Benchmarking)
        );
        assert_eq!(Ip::from_octets(198, 20, 0, 1).reserved_class(), None);
        assert_eq!(
            Ip::from_octets(224, 0, 0, 1).reserved_class(),
            Some(ReservedClass::Multicast)
        );
        assert_eq!(
            Ip::from_octets(239, 255, 255, 255).reserved_class(),
            Some(ReservedClass::Multicast)
        );
        assert_eq!(
            Ip::from_octets(240, 0, 0, 0).reserved_class(),
            Some(ReservedClass::FutureUse)
        );
        assert_eq!(
            Ip::from_octets(255, 255, 255, 255).reserved_class(),
            Some(ReservedClass::FutureUse)
        );
    }

    #[test]
    fn public_addresses_are_not_reserved() {
        for s in ["4.2.2.2", "8.8.8.8", "66.35.250.150", "212.58.224.131"] {
            assert!(!s.parse::<Ip>().expect("valid").is_reserved(), "{s}");
        }
    }

    #[test]
    fn ordering_matches_numeric_order() {
        let a = Ip::from_octets(9, 255, 255, 255);
        let b = Ip::from_octets(10, 0, 0, 0);
        assert!(a < b);
    }
}
