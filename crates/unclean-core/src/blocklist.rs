//! Router-ready block-list rendering.
//!
//! §6's conclusion is operational: "spatial and temporal uncleanliness …
//! can be effectively used to block hostile traffic". This module turns a
//! set of CIDR blocks (typically `C_24(R_bot-test)` or a trie-aggregated
//! cover) into the formats an operator would actually deploy — and parses
//! the plain format back, so lists survive a round trip through version
//! control.

use crate::cidr::Cidr;
use crate::error::Error;
use crate::ip::Ip;
use std::fmt::Write as _;

/// Supported output formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlocklistFormat {
    /// One `a.b.c.d/len` per line (comments start with `#`).
    Plain,
    /// Cisco IOS extended-ACL deny lines (wildcard masks).
    CiscoAcl,
    /// iptables `-A INPUT -s … -j DROP` lines.
    Iptables,
}

/// Render a block list.
///
/// `name` labels the list (ACL number/name, comment header). Blocks are
/// emitted in the order given; deduplicate or aggregate first (see
/// [`crate::trie::PrefixTrie::aggregate`]) if the source may overlap.
pub fn render(blocks: &[Cidr], format: BlocklistFormat, name: &str) -> String {
    let mut out = String::new();
    match format {
        BlocklistFormat::Plain => {
            let _ = writeln!(out, "# blocklist: {name} ({} entries)", blocks.len());
            for b in blocks {
                let _ = writeln!(out, "{b}");
            }
        }
        BlocklistFormat::CiscoAcl => {
            let _ = writeln!(out, "ip access-list extended {name}");
            for b in blocks {
                let wildcard = Ip(!crate::cidr::mask(b.len()));
                let _ = writeln!(out, " deny ip {} {} any", b.base(), wildcard);
            }
            let _ = writeln!(out, " permit ip any any");
        }
        BlocklistFormat::Iptables => {
            let _ = writeln!(out, "# iptables blocklist: {name}");
            for b in blocks {
                let _ = writeln!(out, "iptables -A INPUT -s {b} -j DROP");
            }
        }
    }
    out
}

/// Render a *scored* plain list: one `a.b.c.d/len # score=S` per line.
/// [`parse_scored`] reads it back; [`parse_plain`] reads it too (scores
/// live in the inline comment, which plain parsing ignores). This is how
/// uncleanliness scores travel from the offline analyses to the serving
/// daemon.
pub fn render_scored(entries: &[(Cidr, f64)], name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# blocklist: {name} ({} entries, scored)",
        entries.len()
    );
    for (cidr, score) in entries {
        let _ = writeln!(out, "{cidr} # score={score}");
    }
    out
}

/// Render a scored list whose header carries `key=value` provenance
/// metadata on a second comment line — the cross-process lineage
/// carrier: `unclean ingest` stamps `generation=G published_unix_ms=T`
/// here, `unclean serve` reads it back with [`parse_header_meta`], and
/// every parser that ignores comments ([`parse_plain`],
/// [`parse_scored`]) still reads the list unchanged.
pub fn render_scored_with_meta(
    entries: &[(Cidr, f64)],
    name: &str,
    meta: &[(&str, String)],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# blocklist: {name} ({} entries, scored)",
        entries.len()
    );
    if !meta.is_empty() {
        out.push('#');
        for (key, value) in meta {
            let _ = write!(out, " {key}={value}");
        }
        out.push('\n');
    }
    for (cidr, score) in entries {
        let _ = writeln!(out, "{cidr} # score={score}");
    }
    out
}

/// Header keys whose values must parse as unsigned integers. A list
/// whose `# generation=` line is corrupt must fail loudly: silently
/// dropping the value would let a serving daemon install the snapshot
/// with no lineage, and the staleness watchdog would never notice.
const NUMERIC_META_KEYS: &[&str] = &["generation", "published_unix_ms", "horizon_days"];

/// Collect `key=value` tokens from the leading comment block of a
/// rendered blocklist (the lines [`render_scored_with_meta`] writes).
/// Scanning stops at the first non-comment, non-blank line, so inline
/// `score=` comments on entry lines are never mistaken for metadata.
/// Later duplicates win. Keys that carry lineage ([`NUMERIC_META_KEYS`])
/// are validated: a non-numeric value returns
/// [`Error::MalformedHeaderMeta`] instead of being silently ignored.
pub fn parse_header_meta(text: &str) -> Result<std::collections::BTreeMap<String, String>, Error> {
    let mut meta = std::collections::BTreeMap::new();
    for raw_line in text.lines() {
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(comment) = line.strip_prefix('#') else {
            break;
        };
        for token in comment.split_whitespace() {
            if let Some((key, value)) = token.split_once('=') {
                if key.is_empty() {
                    continue;
                }
                if NUMERIC_META_KEYS.contains(&key) && value.parse::<u64>().is_err() {
                    return Err(Error::MalformedHeaderMeta {
                        key: key.to_string(),
                        value: value.to_string(),
                    });
                }
                meta.insert(key.to_string(), value.to_string());
            }
        }
    }
    Ok(meta)
}

/// Parse a plain-format list (ignores blank lines and `#` comments,
/// including inline comments after a CIDR; tolerates CRLF line endings).
pub fn parse_plain(text: &str) -> Result<Vec<Cidr>, Error> {
    Ok(parse_scored(text)?.into_iter().map(|(c, _)| c).collect())
}

/// Parse a plain-format list keeping per-block scores: a line's inline
/// `# score=S` comment (as written by [`render_scored`]) attaches `S` to
/// the block; lines without one score 0. Same tolerance as
/// [`parse_plain`] for blank lines, full-line/inline comments, and CRLF.
pub fn parse_scored(text: &str) -> Result<Vec<(Cidr, f64)>, Error> {
    let mut out = Vec::new();
    for raw_line in text.lines() {
        // `lines` splits on `\n`; a file with CRLF endings leaves the
        // `\r` on the line, and operators hand-edit these files on every
        // platform. Strip the comment before trimming so `cidr# c` and
        // `cidr # c` both parse.
        let (body, comment) = match raw_line.split_once('#') {
            Some((body, comment)) => (body, Some(comment)),
            None => (raw_line, None),
        };
        let body = body.trim();
        if body.is_empty() {
            continue;
        }
        let cidr: Cidr = body.parse()?;
        let score = comment
            .and_then(|c| {
                c.split_whitespace()
                    .find_map(|token| token.strip_prefix("score="))
            })
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0);
        out.push((cidr, score));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> Vec<Cidr> {
        vec![
            "9.1.1.0/24".parse().expect("valid"),
            "9.5.0.0/16".parse().expect("valid"),
            "203.0.113.7/32".parse().expect("valid"),
        ]
    }

    #[test]
    fn plain_round_trips() {
        let text = render(&blocks(), BlocklistFormat::Plain, "bot-test-24s");
        assert!(text.starts_with("# blocklist: bot-test-24s (3 entries)"));
        let parsed = parse_plain(&text).expect("well-formed");
        assert_eq!(parsed, blocks());
    }

    #[test]
    fn cisco_wildcard_masks() {
        let text = render(&blocks(), BlocklistFormat::CiscoAcl, "UNCLEAN");
        assert!(text.contains("ip access-list extended UNCLEAN"));
        assert!(text.contains(" deny ip 9.1.1.0 0.0.0.255 any"));
        assert!(text.contains(" deny ip 9.5.0.0 0.0.255.255 any"));
        assert!(text.contains(" deny ip 203.0.113.7 0.0.0.0 any"));
        assert!(text.trim_end().ends_with("permit ip any any"));
    }

    #[test]
    fn iptables_lines() {
        let text = render(&blocks(), BlocklistFormat::Iptables, "unclean");
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("iptables -A INPUT -s "))
                .count(),
            3
        );
        assert!(text.contains("-s 9.1.1.0/24 -j DROP"));
    }

    #[test]
    fn parse_rejects_garbage_lines() {
        assert!(parse_plain("9.1.1.0/24\nnot-a-cidr\n").is_err());
        assert_eq!(parse_plain("\n# only comments\n").expect("ok"), vec![]);
    }

    #[test]
    fn parse_tolerates_crlf_line_endings() {
        let parsed = parse_plain("# header\r\n9.1.1.0/24\r\n\r\n9.5.0.0/16\r\n").expect("crlf ok");
        assert_eq!(
            parsed,
            vec![
                "9.1.1.0/24".parse::<Cidr>().expect("valid"),
                "9.5.0.0/16".parse::<Cidr>().expect("valid"),
            ]
        );
    }

    #[test]
    fn parse_tolerates_inline_comments() {
        let text = "9.1.1.0/24 # C_24 of bot-test\n9.5.0.0/16# tight\n   # full-line\n";
        let parsed = parse_plain(text).expect("inline comments ok");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].to_string(), "9.1.1.0/24");
        // Garbage before an inline comment still aborts.
        assert!(parse_plain("bogus # looks like a comment\n").is_err());
    }

    #[test]
    fn scored_round_trips_and_defaults_to_zero() {
        let entries = vec![
            ("9.1.1.0/24".parse::<Cidr>().expect("valid"), 3.25),
            ("9.5.0.0/16".parse::<Cidr>().expect("valid"), 0.5),
        ];
        let text = render_scored(&entries, "bot-test");
        assert!(text.contains("9.1.1.0/24 # score=3.25"), "{text}");
        let parsed = parse_scored(&text).expect("well-formed");
        assert_eq!(parsed, entries);
        // Plain parsing reads the same file, dropping scores.
        assert_eq!(parse_plain(&text).expect("ok").len(), 2);
        // Unscored and CRLF lines score 0; malformed score tokens too.
        let mixed = "9.1.1.0/24\r\n9.5.0.0/16 # score=oops extra\n";
        let parsed = parse_scored(mixed).expect("ok");
        assert_eq!(parsed[0].1, 0.0);
        assert_eq!(parsed[1].1, 0.0);
    }

    #[test]
    fn header_meta_round_trips_and_stays_backward_compatible() {
        let entries = vec![
            ("9.1.1.0/24".parse::<Cidr>().expect("valid"), 3.25),
            ("9.5.0.0/16".parse::<Cidr>().expect("valid"), 0.5),
        ];
        let meta = [
            ("generation", "17".to_string()),
            ("published_unix_ms", "1754700000123".to_string()),
        ];
        let text = render_scored_with_meta(&entries, "unclean-ingest", &meta);
        let parsed_meta = parse_header_meta(&text).expect("well-formed meta");
        assert_eq!(
            parsed_meta.get("generation").map(String::as_str),
            Some("17")
        );
        assert_eq!(
            parsed_meta.get("published_unix_ms").map(String::as_str),
            Some("1754700000123")
        );
        // Every existing parser still reads the list unchanged.
        assert_eq!(parse_scored(&text).expect("scored ok"), entries);
        assert_eq!(parse_plain(&text).expect("plain ok").len(), 2);
        // Inline `score=` comments never leak into header metadata, and
        // a meta-free list yields an empty map.
        assert!(!parse_header_meta(&text).expect("ok").contains_key("score"));
        assert!(parse_header_meta(&render_scored(&entries, "plain"))
            .expect("ok")
            .is_empty());
    }

    #[test]
    fn header_meta_rejects_non_numeric_generation() {
        for bad in [
            "# blocklist: x (0 entries)\n# generation=seventeen\n",
            "# generation=17.5 published_unix_ms=1754700000123\n",
            "# generation=17 published_unix_ms=-3\n",
        ] {
            match parse_header_meta(bad) {
                Err(Error::MalformedHeaderMeta { key, .. }) => {
                    assert!(key == "generation" || key == "published_unix_ms");
                }
                other => panic!("expected MalformedHeaderMeta, got {other:?}"),
            }
        }
        // Free-form keys stay unvalidated; entry lines are never scanned.
        let tolerated = "# note=not-a-number\n9.1.1.0/24 # generation=bogus\n";
        let meta = parse_header_meta(tolerated).expect("ok");
        assert_eq!(meta.get("note").map(String::as_str), Some("not-a-number"));
        assert!(!meta.contains_key("generation"));
    }

    #[test]
    fn empty_list_renders_headers_only() {
        let text = render(&[], BlocklistFormat::CiscoAcl, "EMPTY");
        assert!(text.contains("EMPTY"));
        assert!(!text.contains("deny"));
    }
}
