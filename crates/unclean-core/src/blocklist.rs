//! Router-ready block-list rendering.
//!
//! §6's conclusion is operational: "spatial and temporal uncleanliness …
//! can be effectively used to block hostile traffic". This module turns a
//! set of CIDR blocks (typically `C_24(R_bot-test)` or a trie-aggregated
//! cover) into the formats an operator would actually deploy — and parses
//! the plain format back, so lists survive a round trip through version
//! control.

use crate::cidr::Cidr;
use crate::error::Error;
use crate::ip::Ip;
use std::fmt::Write as _;

/// Supported output formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlocklistFormat {
    /// One `a.b.c.d/len` per line (comments start with `#`).
    Plain,
    /// Cisco IOS extended-ACL deny lines (wildcard masks).
    CiscoAcl,
    /// iptables `-A INPUT -s … -j DROP` lines.
    Iptables,
}

/// Render a block list.
///
/// `name` labels the list (ACL number/name, comment header). Blocks are
/// emitted in the order given; deduplicate or aggregate first (see
/// [`crate::trie::PrefixTrie::aggregate`]) if the source may overlap.
pub fn render(blocks: &[Cidr], format: BlocklistFormat, name: &str) -> String {
    let mut out = String::new();
    match format {
        BlocklistFormat::Plain => {
            let _ = writeln!(out, "# blocklist: {name} ({} entries)", blocks.len());
            for b in blocks {
                let _ = writeln!(out, "{b}");
            }
        }
        BlocklistFormat::CiscoAcl => {
            let _ = writeln!(out, "ip access-list extended {name}");
            for b in blocks {
                let wildcard = Ip(!crate::cidr::mask(b.len()));
                let _ = writeln!(out, " deny ip {} {} any", b.base(), wildcard);
            }
            let _ = writeln!(out, " permit ip any any");
        }
        BlocklistFormat::Iptables => {
            let _ = writeln!(out, "# iptables blocklist: {name}");
            for b in blocks {
                let _ = writeln!(out, "iptables -A INPUT -s {b} -j DROP");
            }
        }
    }
    out
}

/// Parse a plain-format list (ignores blank lines and `#` comments).
pub fn parse_plain(text: &str) -> Result<Vec<Cidr>, Error> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(line.parse()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks() -> Vec<Cidr> {
        vec![
            "9.1.1.0/24".parse().expect("valid"),
            "9.5.0.0/16".parse().expect("valid"),
            "203.0.113.7/32".parse().expect("valid"),
        ]
    }

    #[test]
    fn plain_round_trips() {
        let text = render(&blocks(), BlocklistFormat::Plain, "bot-test-24s");
        assert!(text.starts_with("# blocklist: bot-test-24s (3 entries)"));
        let parsed = parse_plain(&text).expect("well-formed");
        assert_eq!(parsed, blocks());
    }

    #[test]
    fn cisco_wildcard_masks() {
        let text = render(&blocks(), BlocklistFormat::CiscoAcl, "UNCLEAN");
        assert!(text.contains("ip access-list extended UNCLEAN"));
        assert!(text.contains(" deny ip 9.1.1.0 0.0.0.255 any"));
        assert!(text.contains(" deny ip 9.5.0.0 0.0.255.255 any"));
        assert!(text.contains(" deny ip 203.0.113.7 0.0.0.0 any"));
        assert!(text.trim_end().ends_with("permit ip any any"));
    }

    #[test]
    fn iptables_lines() {
        let text = render(&blocks(), BlocklistFormat::Iptables, "unclean");
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("iptables -A INPUT -s "))
                .count(),
            3
        );
        assert!(text.contains("-s 9.1.1.0/24 -j DROP"));
    }

    #[test]
    fn parse_rejects_garbage_lines() {
        assert!(parse_plain("9.1.1.0/24\nnot-a-cidr\n").is_err());
        assert_eq!(parse_plain("\n# only comments\n").expect("ok"), vec![]);
    }

    #[test]
    fn empty_list_renders_headers_only() {
        let text = render(&[], BlocklistFormat::CiscoAcl, "EMPTY");
        assert!(text.contains("EMPTY"));
        assert!(!text.contains("deny"));
    }
}
