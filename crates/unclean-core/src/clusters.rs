//! Network-aware clustering — the heterogeneous alternative to fixed CIDR
//! blocks.
//!
//! §4.1: *"Given that we lack accurate information on network populations,
//! we make a ceteris paribus assumption that equally sized blocks should
//! have equivalent populations. In comparison, heterogeneous partitioning
//! such as network-aware clustering [Krishnamurthy & Wang], can result in
//! network populations that differ in size by several orders of
//! magnitude."*
//!
//! This module implements the alternative the paper sets aside, so the
//! choice can be evaluated instead of assumed: adaptive clusters derived
//! from a reference population (the control report standing in for a
//! routing table) by recursively splitting blocks until each cluster's
//! reference population falls under a cap. Unclean reports can then be
//! measured in clusters-per-report, mirroring the homogeneous
//! blocks-per-report analysis.

use crate::cidr::Cidr;
use crate::ip::Ip;
use crate::ipset::IpSet;
use serde::{Deserialize, Serialize};

/// Configuration for adaptive clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Coarsest cluster granularity (clusters never get shorter prefixes).
    pub min_prefix: u8,
    /// Finest cluster granularity (splitting stops here regardless of
    /// population).
    pub max_prefix: u8,
    /// Split a cluster while its reference population exceeds this.
    pub max_population: usize,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            min_prefix: 8,
            max_prefix: 24,
            max_population: 256,
        }
    }
}

/// A heterogeneous partition of the populated address space into
/// variable-size clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkClusters {
    /// Sorted, non-overlapping cluster blocks.
    clusters: Vec<Cidr>,
    /// Reference population per cluster, aligned with `clusters`.
    populations: Vec<u32>,
}

impl NetworkClusters {
    /// Build clusters from a reference population.
    ///
    /// Every reference address ends up in exactly one cluster; address
    /// space with no reference population gets no cluster (exactly like a
    /// routing-table-derived clustering, which only covers announced
    /// space).
    pub fn build(reference: &IpSet, config: &ClusterConfig) -> NetworkClusters {
        assert!(
            config.min_prefix <= config.max_prefix && config.max_prefix <= 32,
            "bad cluster prefix range"
        );
        assert!(config.max_population > 0, "population cap must be positive");
        let mut clusters = Vec::new();
        let mut populations = Vec::new();
        // Seed with the occupied min_prefix blocks, then split recursively.
        let mut stack: Vec<Cidr> = crate::blocks::BlockSet::of(reference, config.min_prefix)
            .to_cidrs()
            .into_iter()
            .rev()
            .collect();
        while let Some(block) = stack.pop() {
            let pop = reference.count_in(&block);
            if pop == 0 {
                continue;
            }
            if pop > config.max_population && block.len() < config.max_prefix {
                let (l, r) = block.split().expect("len < max_prefix <= 32");
                stack.push(r);
                stack.push(l);
            } else {
                clusters.push(block);
                populations.push(pop as u32);
            }
        }
        NetworkClusters {
            clusters,
            populations,
        }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the clustering is empty.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// The clusters, sorted and non-overlapping.
    pub fn clusters(&self) -> &[Cidr] {
        &self.clusters
    }

    /// Reference population of cluster `i`.
    pub fn population(&self, i: usize) -> u32 {
        self.populations[i]
    }

    /// Index of the cluster containing `ip`, if any.
    pub fn find(&self, ip: Ip) -> Option<usize> {
        // Clusters are sorted by base; binary search the last cluster whose
        // base precedes ip, then confirm containment.
        let idx = self.clusters.partition_point(|c| c.base() <= ip);
        idx.checked_sub(1)
            .filter(|&i| self.clusters[i].contains(ip))
    }

    /// Number of distinct clusters a report occupies (the heterogeneous
    /// analogue of `|C_n(R)|`).
    pub fn occupied_by(&self, report: &IpSet) -> usize {
        let mut count = 0;
        let mut last: Option<usize> = None;
        for ip in report.iter() {
            let hit = self.find(ip);
            if hit.is_some() && hit != last {
                count += 1;
            }
            if hit.is_some() {
                last = hit;
            }
        }
        count
    }

    /// Cluster-size dispersion: ratio of the largest to the smallest
    /// cluster population — the "several orders of magnitude" the paper
    /// warns about.
    pub fn population_dispersion(&self) -> f64 {
        let max = self.populations.iter().copied().max().unwrap_or(0) as f64;
        let min = self.populations.iter().copied().min().unwrap_or(0).max(1) as f64;
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u32, b: u32, c: u32, d: u32) -> u32 {
        (a << 24) | (b << 16) | (c << 8) | d
    }

    /// A reference population with one dense /16 and scattered singles.
    fn reference() -> IpSet {
        let mut raw = Vec::new();
        for i in 0..4_000u32 {
            raw.push(addr(9, 1, i / 250, i % 250)); // dense 9.1/16
        }
        for i in 0..50u32 {
            raw.push(addr(60 + i, 7, 7, 7)); // singletons across /8s
        }
        IpSet::from_raw(raw)
    }

    #[test]
    fn clusters_partition_the_reference() {
        let refset = reference();
        let clusters = NetworkClusters::build(&refset, &ClusterConfig::default());
        assert!(!clusters.is_empty());
        // Every reference address is in exactly one cluster.
        for ip in refset.iter().step_by(37) {
            let idx = clusters.find(ip).expect("covered");
            assert!(clusters.clusters()[idx].contains(ip));
        }
        // Clusters are sorted and non-overlapping.
        for w in clusters.clusters().windows(2) {
            assert!(w[0].last() < w[1].first(), "{} vs {}", w[0], w[1]);
        }
        // Populations sum to the reference size.
        let total: u32 = (0..clusters.len()).map(|i| clusters.population(i)).sum();
        assert_eq!(total as usize, refset.len());
    }

    #[test]
    fn dense_space_splits_finer_than_sparse_space() {
        let refset = reference();
        let clusters = NetworkClusters::build(&refset, &ClusterConfig::default());
        // The dense 9.1/16 must be split into multiple clusters …
        let dense: Vec<&Cidr> = clusters
            .clusters()
            .iter()
            .filter(|c| {
                c.contains(Ip(addr(9, 1, 0, 0)))
                    || Cidr::of(Ip(addr(9, 1, 0, 0)), 16).contains_cidr(c)
            })
            .collect();
        assert!(dense.len() > 4, "dense space fragments: {}", dense.len());
        // … while each scattered singleton sits alone in a coarse /8-to-/24.
        let lonely = clusters.find(Ip(addr(60, 7, 7, 7))).expect("covered");
        assert_eq!(clusters.population(lonely), 1);
    }

    #[test]
    fn population_cap_is_respected_where_splittable() {
        let refset = reference();
        let cfg = ClusterConfig::default();
        let clusters = NetworkClusters::build(&refset, &cfg);
        for i in 0..clusters.len() {
            let c = &clusters.clusters()[i];
            if c.len() < cfg.max_prefix {
                assert!(
                    clusters.population(i) as usize <= cfg.max_population,
                    "{c} holds {}",
                    clusters.population(i)
                );
            }
        }
    }

    #[test]
    fn dispersion_shows_orders_of_magnitude() {
        // The paper's warning: heterogeneous clusters differ wildly in
        // population.
        let refset = reference();
        let clusters = NetworkClusters::build(&refset, &ClusterConfig::default());
        assert!(clusters.population_dispersion() >= 100.0);
    }

    #[test]
    fn occupied_by_counts_distinct_clusters() {
        let refset = reference();
        let clusters = NetworkClusters::build(&refset, &ClusterConfig::default());
        // A report of three addresses in one singleton cluster plus one in
        // the dense region occupies exactly 2 clusters.
        let report = IpSet::from_raw(vec![addr(60, 7, 7, 7), addr(9, 1, 0, 3), addr(9, 1, 0, 4)]);
        let occupied = clusters.occupied_by(&report);
        assert_eq!(occupied, 2);
        // Addresses outside any cluster count nothing.
        let outside = IpSet::from_raw(vec![addr(200, 0, 0, 1)]);
        assert_eq!(clusters.occupied_by(&outside), 0);
    }

    #[test]
    fn find_misses_uncovered_space() {
        let refset = reference();
        let clusters = NetworkClusters::build(&refset, &ClusterConfig::default());
        assert!(clusters.find(Ip(addr(200, 0, 0, 1))).is_none());
        assert!(clusters.find(Ip(0)).is_none());
    }

    #[test]
    fn empty_reference_is_empty_clustering() {
        let clusters = NetworkClusters::build(&IpSet::empty(), &ClusterConfig::default());
        assert!(clusters.is_empty());
        assert_eq!(clusters.occupied_by(&reference()), 0);
    }

    #[test]
    #[should_panic(expected = "population cap")]
    fn zero_cap_rejected() {
        let cfg = ClusterConfig {
            max_population: 0,
            ..ClusterConfig::default()
        };
        let _ = NetworkClusters::build(&IpSet::empty(), &cfg);
    }
}
