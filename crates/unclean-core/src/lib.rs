//! # unclean-core
//!
//! A from-scratch reproduction of the measurement machinery in
//! *Using Uncleanliness to Predict Future Botnet Addresses*
//! (M. P. Collins et al., IMC 2007).
//!
//! The paper defines **uncleanliness** — a per-*network* quality measuring
//! the propensity of the hosts inside it to be compromised — and tests two
//! hypotheses over sets of IP addresses ("reports") gathered from botnet,
//! phishing, scanning and spamming observations:
//!
//! * **Spatial uncleanliness** (§4, [`density`]): compromised hosts
//!   cluster — an unclean report occupies fewer equal-sized CIDR blocks
//!   than a random control sample of the same size, at every prefix length
//!   in `[16, 32]`.
//! * **Temporal uncleanliness** (§5, [`predict`]): unclean networks stay
//!   unclean — a months-old report of unclean addresses intersects the
//!   block sets of *current* unclean reports more than random samples do,
//!   in at least 95% of 1000 control draws.
//!
//! and evaluates a practical consequence:
//!
//! * **Predictive blocking** (§6, [`blocking`]): blocking the /24s of a
//!   five-month-old botnet report mostly blocks addresses that turn out to
//!   be hostile, with very few payload-exchanging innocents.
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`ip`] | `u32`-backed IPv4 addresses; reserved-range taxonomy |
//! | [`cidr`] | CIDR blocks; the masking function `C_n(i)` |
//! | [`clusters`] | heterogeneous network-aware clustering (the §4.1 alternative) |
//! | [`ipset`] | sorted-vector address sets; set algebra; random subsets |
//! | [`blocks`] | `C_n(S)` block sets; one-pass all-prefix block counting |
//! | [`trie`] | binary prefix trie; minimal CIDR aggregation |
//! | [`frozen`] | scored CIDR tries and their frozen (flattened, immutable) serving form |
//! | [`snap`] | the mmap-able on-disk snapshot format behind `FrozenTrie::open_mmap` |
//! | [`time`] | calendar days and report periods |
//! | [`report`] | tagged/classed/dated reports and their filtering |
//! | [`overlap`] | cross-indicator overlap matrices (address and /24 level) |
//! | [`sampling`] | naive and empirical control-population estimators |
//! | [`score`] | multidimensional uncleanliness scoring (the paper's §7 future work) |
//! | [`density`] | the spatial uncleanliness analysis |
//! | [`predict`] | the temporal uncleanliness analysis |
//! | [`blocking`] | the §6 candidate partition and blocking table |
//! | [`blocklist`] | router-ready block-list rendering (plain / Cisco ACL / iptables) |
//!
//! ## Quick start
//!
//! ```
//! use unclean_core::prelude::*;
//! use unclean_stats::SeedTree;
//!
//! // A control population (in reality: 47M addresses seen crossing an
//! // edge network) and an "unclean" report whose addresses cluster.
//! let control = IpSet::from_raw((0..100_000u32).map(|i| (i % 20_000) << 8 | (i / 20_000)).collect());
//! let bots = Report::new(
//!     "bot",
//!     ReportClass::Bots,
//!     Provenance::Provided,
//!     DateRange::new(Day::EPOCH, Day::EPOCH + 13),
//!     IpSet::from_raw((0..500u32).map(|i| (i % 5) << 8 | (i / 5)).collect()),
//! );
//!
//! // Spatial uncleanliness: is the bot report denser than random samples?
//! let analysis = DensityAnalysis::with_config(DensityConfig {
//!     trials: 50,
//!     ..DensityConfig::default()
//! });
//! let result = analysis.run(&bots, &control, &[], &SeedTree::new(42));
//! assert!(result.hypothesis_holds());
//! ```

// Unsafe is banned everywhere except [`snap`], the single audited
// module holding the snapshot mmap FFI and its record/byte casts (it
// opts back in with a module-level `allow`).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod blocking;
pub mod blocklist;
pub mod blocks;
pub mod cidr;
pub mod clusters;
pub mod density;
pub mod error;
pub mod frozen;
pub mod ip;
pub mod ipset;
pub mod overlap;
pub mod predict;
pub mod report;
pub mod sampling;
pub mod score;
pub mod snap;
pub mod time;
pub mod trie;

/// Convenience re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::blocking::{
        collect_candidates, BlockingAnalysis, BlockingRow, BlockingTable, Candidate, Partition,
    };
    pub use crate::blocklist::{
        parse_plain, parse_scored, render as render_blocklist, render_scored, BlocklistFormat,
    };
    pub use crate::blocks::{shared_block_counts, BlockCounts, BlockSet};
    pub use crate::cidr::Cidr;
    pub use crate::clusters::{ClusterConfig, NetworkClusters};
    pub use crate::density::{
        density_curve, DensityAnalysis, DensityConfig, DensityResult, PrefixRange,
    };
    pub use crate::error::Error;
    pub use crate::frozen::{BlockEntry, CidrTrie, FrozenTrie, LpmMatch};
    pub use crate::ip::{Ip, ReservedClass};
    pub use crate::ipset::IpSet;
    pub use crate::overlap::{OverlapCell, OverlapMatrix};
    pub use crate::predict::{prediction_curve, TemporalAnalysis, TemporalConfig, TemporalResult};
    pub use crate::report::{union_reports, Provenance, Report, ReportClass};
    pub use crate::sampling::{empirical_sample, naive_sample, Estimator};
    pub use crate::score::{NetworkScore, ScoreWeights, UncleanlinessScorer};
    pub use crate::snap::{SnapError, SnapshotInfo, SnapshotMeta};
    pub use crate::time::{DateRange, Day};
    pub use crate::trie::PrefixTrie;
}

pub use prelude::*;
