//! Calendar days and report periods.
//!
//! Reports carry validity periods ("2006/10/01–2006/10/14", Table 1) and
//! the temporal analysis reasons about gaps between them ("a five month gap
//! in time"). A [`Day`] is a day count relative to 2006-01-01 (the epoch of
//! every scenario in this repository), convertible to and from civil dates
//! with the standard days-from-civil algorithm — no external date crate
//! needed.

use crate::error::Error;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};
use std::str::FromStr;

/// Days since 2006-01-01 (which is day 0). May be negative.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Day(pub i32);

/// 2006-01-01 as a count of days since the civil epoch 1970-01-01.
const EPOCH_OFFSET: i64 = 13149;

/// Days from civil date (Howard Hinnant's algorithm), relative to 1970-01-01.
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Civil date from days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Day {
    /// From a civil date. Validates month/day ranges (including leap years).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Day, Error> {
        let leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
        let dim = match month {
            1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
            4 | 6 | 9 | 11 => 30,
            2 if leap => 29,
            2 => 28,
            _ => return Err(Error::InvalidDate(format!("{year}-{month:02}-{day:02}"))),
        };
        if day == 0 || day > dim {
            return Err(Error::InvalidDate(format!("{year}-{month:02}-{day:02}")));
        }
        Ok(Day(
            (days_from_civil(year as i64, month, day) - EPOCH_OFFSET) as i32,
        ))
    }

    /// To `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        let (y, m, d) = civil_from_days(self.0 as i64 + EPOCH_OFFSET);
        (y as i32, m, d)
    }

    /// The scenario epoch, 2006-01-01.
    pub const EPOCH: Day = Day(0);
}

impl Add<i32> for Day {
    type Output = Day;
    fn add(self, rhs: i32) -> Day {
        Day(self.0 + rhs)
    }
}

impl Sub<i32> for Day {
    type Output = Day;
    fn sub(self, rhs: i32) -> Day {
        Day(self.0 - rhs)
    }
}

impl Sub<Day> for Day {
    type Output = i32;
    fn sub(self, rhs: Day) -> i32 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

impl FromStr for Day {
    type Err = Error;

    /// Parses `YYYY-MM-DD` or the paper's `YYYY/MM/DD`.
    fn from_str(s: &str) -> Result<Day, Error> {
        let norm = s.replace('/', "-");
        let mut it = norm.splitn(3, '-');
        let err = || Error::InvalidDate(s.to_string());
        let y: i32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let m: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let d: u32 = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        Day::from_ymd(y, m, d)
    }
}

/// An inclusive range of days (a report validity period).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DateRange {
    /// First day covered.
    pub start: Day,
    /// Last day covered (inclusive).
    pub end: Day,
}

impl DateRange {
    /// A range; panics if `end < start`.
    pub fn new(start: Day, end: Day) -> DateRange {
        assert!(
            end >= start,
            "date range ends ({end}) before it starts ({start})"
        );
        DateRange { start, end }
    }

    /// A single-day range.
    pub fn single(day: Day) -> DateRange {
        DateRange {
            start: day,
            end: day,
        }
    }

    /// Number of days covered (inclusive: a single day is length 1).
    pub fn len_days(&self) -> u32 {
        (self.end - self.start + 1) as u32
    }

    /// Whether `day` falls in the range.
    pub fn contains(&self, day: Day) -> bool {
        day >= self.start && day <= self.end
    }

    /// Iterate the covered days in order.
    pub fn days(&self) -> impl Iterator<Item = Day> {
        (self.start.0..=self.end.0).map(Day)
    }

    /// Whether two ranges overlap.
    pub fn overlaps(&self, other: &DateRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }
}

impl fmt::Display for DateRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.start == self.end {
            write!(f, "{}", self.start)
        } else {
            write!(f, "{}\u{2013}{}", self.start, self.end)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_2006_01_01() {
        assert_eq!(Day::EPOCH.ymd(), (2006, 1, 1));
        assert_eq!(Day::EPOCH.to_string(), "2006-01-01");
    }

    #[test]
    fn paper_dates_round_trip() {
        for s in [
            "2006-10-01",
            "2006-10-14",
            "2006-05-10",
            "2006-09-25",
            "2006-11-01",
        ] {
            let d: Day = s.parse().expect("valid");
            assert_eq!(d.to_string(), s);
        }
        // The paper's slash notation parses too.
        let d: Day = "2006/10/01".parse().expect("valid");
        assert_eq!(d.to_string(), "2006-10-01");
    }

    #[test]
    fn known_day_numbers() {
        assert_eq!("2006-01-02".parse::<Day>().expect("valid"), Day(1));
        assert_eq!("2006-02-01".parse::<Day>().expect("valid"), Day(31));
        assert_eq!("2007-01-01".parse::<Day>().expect("valid"), Day(365));
        assert_eq!("2005-12-31".parse::<Day>().expect("valid"), Day(-1));
        // 2006-10-01: Jan 31 + Feb 28 + Mar 31 + Apr 30 + May 31 + Jun 30 +
        // Jul 31 + Aug 31 + Sep 30 = 273.
        assert_eq!("2006-10-01".parse::<Day>().expect("valid"), Day(273));
    }

    #[test]
    fn leap_year_handling() {
        assert!(Day::from_ymd(2008, 2, 29).is_ok());
        assert!(Day::from_ymd(2006, 2, 29).is_err());
        assert!(Day::from_ymd(2000, 2, 29).is_ok());
        assert!(Day::from_ymd(1900, 2, 29).is_err());
    }

    #[test]
    fn from_ymd_validates() {
        assert!(Day::from_ymd(2006, 0, 1).is_err());
        assert!(Day::from_ymd(2006, 13, 1).is_err());
        assert!(Day::from_ymd(2006, 4, 31).is_err());
        assert!(Day::from_ymd(2006, 1, 0).is_err());
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "2006", "2006-10", "2006-10-01-02", "abcd-ef-gh"] {
            assert!(s.parse::<Day>().is_err(), "{s:?}");
        }
    }

    #[test]
    fn arithmetic() {
        let d: Day = "2006-10-01".parse().expect("valid");
        assert_eq!((d + 13).to_string(), "2006-10-14");
        assert_eq!((d - 1).to_string(), "2006-09-30");
        let five_months_earlier: Day = "2006-05-10".parse().expect("valid");
        assert_eq!(d - five_months_earlier, 144);
    }

    #[test]
    fn range_basics() {
        let r = DateRange::new(
            "2006-10-01".parse().expect("ok"),
            "2006-10-14".parse().expect("ok"),
        );
        assert_eq!(r.len_days(), 14);
        assert!(r.contains("2006-10-07".parse().expect("ok")));
        assert!(!r.contains("2006-10-15".parse().expect("ok")));
        assert_eq!(r.days().count(), 14);
        assert_eq!(r.to_string(), "2006-10-01\u{2013}2006-10-14");
        let single = DateRange::single("2006-05-10".parse().expect("ok"));
        assert_eq!(single.len_days(), 1);
        assert_eq!(single.to_string(), "2006-05-10");
    }

    #[test]
    fn range_overlap() {
        let a = DateRange::new(Day(0), Day(10));
        let b = DateRange::new(Day(10), Day(20));
        let c = DateRange::new(Day(11), Day(20));
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "ends")]
    fn inverted_range_panics() {
        let _ = DateRange::new(Day(5), Day(4));
    }

    #[test]
    fn civil_round_trip_sweep() {
        // Round-trip every day across several years including leap years.
        for i in -800..1500 {
            let d = Day(i);
            let (y, m, dd) = d.ymd();
            assert_eq!(Day::from_ymd(y, m, dd).expect("valid"), d);
        }
    }
}
