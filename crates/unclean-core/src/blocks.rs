//! Set-valued CIDR masking (`C_n(S)`, the paper's Eq. 1) and fast block
//! counting across all prefix lengths.
//!
//! Two representations:
//!
//! * [`BlockCounts`] answers "how many distinct n-bit blocks does this set
//!   occupy?" for every n in `[0, 32]` in a *single* pass over the sorted
//!   set: for consecutive sorted addresses, the number of leading bits at
//!   which they agree tells exactly which prefix lengths see a new block.
//!   This is what the density analysis (Figure 2/3 curves over 17 prefix
//!   lengths and 1000 trials) runs on.
//! * [`BlockSet`] materializes `C_n(S)` at a fixed n as a sorted prefix
//!   vector, supporting intersection counting (the temporal analysis,
//!   Eq. 5) and conversion to concrete [`Cidr`] lists (the §6 block lists).

use crate::cidr::{mask, Cidr};
use crate::ip::Ip;
use crate::ipset::IpSet;
use serde::{Deserialize, Serialize};
use unclean_telemetry::Registry;

/// Distinct-block counts for every prefix length `0..=32`, computed in one
/// pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCounts {
    counts: Vec<u64>,
}

impl BlockCounts {
    /// Count blocks at every prefix length for `set`.
    ///
    /// For a sorted set, the count at prefix length n is
    /// `1 + |{i : lcp(a[i-1], a[i]) < n}|` where `lcp` is the length of the
    /// common bit prefix of consecutive elements. We histogram `lcp` values
    /// once and prefix-sum.
    pub fn of(set: &IpSet) -> BlockCounts {
        let raw = set.as_raw();
        if raw.is_empty() {
            return BlockCounts {
                counts: vec![0; 33],
            };
        }
        // lcp_hist[k] = number of consecutive pairs whose first differing
        // bit is bit k from the top (i.e., common prefix of exactly k bits).
        let mut lcp_hist = [0u64; 33];
        for w in raw.windows(2) {
            let lcp = (w[0] ^ w[1]).leading_zeros() as usize;
            lcp_hist[lcp] += 1;
        }
        // counts[n] = 1 + sum of lcp_hist[k] for k < n.
        let mut counts = Vec::with_capacity(33);
        let mut acc = 1u64;
        counts.push(1); // n = 0: a single (universal) block.
        for item in lcp_hist.iter().take(32) {
            acc += item;
            counts.push(acc);
        }
        BlockCounts { counts }
    }

    /// [`BlockCounts::of`] plus telemetry: bumps
    /// `core.blocks.counts_built` and (at `Full` level) records the input
    /// set size into the `core.blocks.input_addresses` histogram.
    pub fn of_recorded(set: &IpSet, registry: &Registry) -> BlockCounts {
        registry.counter("core.blocks.counts_built").inc();
        registry
            .histogram("core.blocks.input_addresses")
            .record(set.len() as u64);
        BlockCounts::of(set)
    }

    /// `|C_n(S)|` — the number of distinct n-bit blocks occupied.
    pub fn at(&self, n: u8) -> u64 {
        assert!(n <= 32, "prefix length {n} out of range");
        self.counts[n as usize]
    }

    /// The counts for an inclusive range of prefix lengths, in order.
    pub fn over(&self, lo: u8, hi: u8) -> Vec<u64> {
        assert!(lo <= hi && hi <= 32, "bad prefix range [{lo}, {hi}]");
        self.counts[lo as usize..=hi as usize].to_vec()
    }
}

/// `C_n(S)` materialized: the sorted, deduplicated set of n-bit prefix
/// values occupied by a set of addresses.
///
/// Prefixes are stored right-aligned (shifted down by `32 - n`) so that
/// merging two `BlockSet`s of equal length is a plain sorted-u32 merge.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockSet {
    len: u8,
    prefixes: Vec<u32>,
}

impl BlockSet {
    /// Compute `C_n(set)`.
    pub fn of(set: &IpSet, n: u8) -> BlockSet {
        assert!(n <= 32, "prefix length {n} out of range");
        if n == 0 {
            return BlockSet {
                len: 0,
                prefixes: if set.is_empty() { vec![] } else { vec![0] },
            };
        }
        let shift = 32 - n as u32;
        let mut prefixes: Vec<u32> = set.as_raw().iter().map(|&v| v >> shift).collect();
        prefixes.dedup(); // input was sorted, so shifted values are sorted.
        BlockSet { len: n, prefixes }
    }

    /// [`BlockSet::of`] plus telemetry: bumps `core.blocks.sets_built`
    /// and (at `Full` level) records the resulting block count into the
    /// `core.blocks.set_size` histogram.
    pub fn of_recorded(set: &IpSet, n: u8, registry: &Registry) -> BlockSet {
        registry.counter("core.blocks.sets_built").inc();
        let blocks = BlockSet::of(set, n);
        registry
            .histogram("core.blocks.set_size")
            .record(blocks.len() as u64);
        blocks
    }

    /// The prefix length n.
    pub fn prefix_len(&self) -> u8 {
        self.len
    }

    /// `|C_n(S)|`.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether no blocks are occupied.
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// Whether `ip`'s n-bit block is in the set — the inclusion relation
    /// `i ⊏ S` (Eq. 2) at this prefix length.
    pub fn contains(&self, ip: Ip) -> bool {
        let p = if self.len == 0 {
            0
        } else {
            ip.raw() >> (32 - self.len as u32)
        };
        self.prefixes.binary_search(&p).is_ok()
    }

    /// `|C_n(A) ∩ C_n(B)|` — the intersection cardinality the temporal
    /// uncleanliness test is built on (Eq. 4/5). Panics on mismatched
    /// prefix lengths.
    pub fn intersect_count(&self, other: &BlockSet) -> u64 {
        assert_eq!(
            self.len, other.len,
            "cannot intersect block sets of different prefix lengths"
        );
        let (a, b) = (&self.prefixes, &other.prefixes);
        let (mut i, mut j, mut n) = (0, 0, 0u64);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// The blocks as concrete CIDR ranges (for rendering block lists).
    pub fn to_cidrs(&self) -> Vec<Cidr> {
        let shift = 32u32.saturating_sub(self.len as u32);
        self.prefixes
            .iter()
            .map(|&p| {
                let base = if self.len == 0 { 0 } else { p << shift };
                Cidr::new(Ip(base), self.len).expect("shifted prefixes are aligned")
            })
            .collect()
    }

    /// Total addresses spanned by the blocks: `len() * 2^(32-n)`. The §6.2
    /// sparseness argument ("44,288 addresses that can be blocked") is this
    /// number.
    pub fn address_span(&self) -> u64 {
        self.prefixes.len() as u64 * (1u64 << (32 - self.len as u32))
    }

    /// All member addresses of `set` whose n-bit block is in `self` — used
    /// to gather candidate traffic "in the same /24s as R_unclean".
    pub fn members_of<'a>(&'a self, set: &'a IpSet) -> impl Iterator<Item = Ip> + 'a {
        set.iter().filter(move |&ip| self.contains(ip))
    }
}

/// Count of addresses in `set` residing in each block of `blocks`,
/// returned in block order. Linear in `|set| + |blocks|`.
pub fn per_block_population(blocks: &BlockSet, set: &IpSet) -> Vec<(Cidr, usize)> {
    blocks
        .to_cidrs()
        .into_iter()
        .map(|c| {
            let n = set.count_in(&c);
            (c, n)
        })
        .collect()
}

/// `|C_n(A) ∩ C_n(B)|` for every n in `[lo, hi]` at once — the inner loop
/// of every temporal-analysis trial (Eq. 5 over the paper's 17 prefix
/// lengths), in one sweep over the sorted /32s instead of building and
/// intersecting a [`BlockSet`] per prefix length.
///
/// For each `a` in `A` (sorted), let `d(a)` be the longest common bit
/// prefix between `a` and any element of `B` (found by binary search:
/// only the two neighbours of `a`'s insertion point can maximize it), and
/// let `s(a)` be the common prefix with `a`'s predecessor in `A` (so `a`
/// opens a new n-block of `A` exactly when `n > s(a)`). Whether an
/// n-block of `A` intersects `C_n(B)` is a property of the block — every
/// member shares the block's n-bit prefix, so one member shares an n-bit
/// prefix with `B` iff all do. The block's opener therefore decides for
/// the whole block, and the intersection count at n is the number of
/// openers with `d(a) ≥ n`:
///
/// `|C_n(A) ∩ C_n(B)| = |{a : s(a) < n ≤ d(a)}|`
///
/// which a difference array over n accumulates in O(1) per element. Total
/// cost is O(|A| log |B|) for all 17 prefix lengths together.
pub fn shared_block_counts(a: &IpSet, b: &IpSet, lo: u8, hi: u8) -> Vec<u64> {
    assert!(lo <= hi && hi <= 32, "bad prefix range [{lo}, {hi}]");
    let width = (hi - lo + 1) as usize;
    let (araw, braw) = (a.as_raw(), b.as_raw());
    if araw.is_empty() || braw.is_empty() {
        return vec![0; width];
    }
    let lcp = |x: u32, y: u32| (x ^ y).leading_zeros(); // 32 when equal
    let mut diff = vec![0i64; width + 1];
    let mut prev: Option<u32> = None;
    for &x in araw {
        let i = braw.partition_point(|&v| v < x);
        let mut d = 0u32;
        if i < braw.len() {
            d = d.max(lcp(x, braw[i]));
        }
        if i > 0 {
            d = d.max(lcp(x, braw[i - 1]));
        }
        // First n at which x opens a new block of A: every n for the first
        // element, n > lcp(prev, x) afterwards.
        let s = prev.map_or(0, |p| lcp(x, p) + 1);
        let from = s.max(lo as u32);
        let to = d.min(hi as u32);
        if from <= to {
            diff[(from - lo as u32) as usize] += 1;
            diff[(to - lo as u32 + 1) as usize] -= 1;
        }
        prev = Some(x);
    }
    let mut out = Vec::with_capacity(width);
    let mut acc = 0i64;
    for &delta in diff.iter().take(width) {
        acc += delta;
        out.push(acc as u64);
    }
    out
}

/// Naive reference implementation of block counting (hash-set based) used
/// by tests and benches to validate [`BlockCounts`].
pub fn block_count_naive(set: &IpSet, n: u8) -> u64 {
    assert!(n <= 32);
    use std::collections::HashSet;
    if set.is_empty() {
        return 0;
    }
    let m = mask(n);
    let blocks: HashSet<u32> = set.as_raw().iter().map(|&v| v & m).collect();
    blocks.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ipset(strs: &[&str]) -> IpSet {
        IpSet::from_ips(strs.iter().map(|s| s.parse::<Ip>().expect("valid ip")))
    }

    #[test]
    fn empty_set_counts() {
        let c = BlockCounts::of(&IpSet::empty());
        for n in 0..=32 {
            assert_eq!(c.at(n), 0);
        }
    }

    #[test]
    fn singleton_occupies_one_block_everywhere() {
        let c = BlockCounts::of(&ipset(&["10.1.2.3"]));
        for n in 0..=32 {
            assert_eq!(c.at(n), 1, "n = {n}");
        }
    }

    #[test]
    fn two_addresses_in_one_slash24() {
        let s = ipset(&["10.1.2.3", "10.1.2.200"]);
        let c = BlockCounts::of(&s);
        assert_eq!(c.at(24), 1);
        assert_eq!(c.at(16), 1);
        assert_eq!(c.at(32), 2);
        // They differ first at bit 24..31 region: common prefix is 24 bits of
        // "10.1.2." plus however many bits 3 and 200 share at the top: 3 =
        // 0b00000011, 200 = 0b11001000 → differ at the first host bit, so
        // counts split exactly at n = 25.
        assert_eq!(c.at(25), 2);
    }

    #[test]
    fn counts_match_naive_on_structured_set() {
        let mut raw = Vec::new();
        // Three /16s with varying /24 fill.
        for b3 in 0..4u32 {
            for b4 in (0..256u32).step_by(17) {
                raw.push((10 << 24) | (7 << 16) | (b3 << 8) | b4);
                raw.push((172 << 24) | (200 << 16) | (b3 << 8) | b4);
            }
        }
        raw.push(u32::MAX);
        raw.push(0);
        let s = IpSet::from_raw(raw);
        let c = BlockCounts::of(&s);
        for n in 0..=32 {
            assert_eq!(c.at(n), block_count_naive(&s, n), "n = {n}");
        }
    }

    #[test]
    fn counts_are_monotone_in_prefix_length() {
        let s = IpSet::from_raw(
            (0..10_000u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect(),
        );
        let c = BlockCounts::of(&s);
        for n in 1..=32 {
            assert!(c.at(n) >= c.at(n - 1), "monotone at {n}");
        }
        assert_eq!(c.at(32), s.len() as u64);
        assert_eq!(c.at(0), 1);
    }

    #[test]
    fn over_returns_inclusive_range() {
        let c = BlockCounts::of(&ipset(&["10.0.0.1", "11.0.0.1"]));
        let v = c.over(16, 32);
        assert_eq!(v.len(), 17);
        assert!(v.iter().all(|&x| x == 2));
        assert_eq!(c.over(0, 0), vec![1]);
    }

    #[test]
    #[should_panic(expected = "bad prefix range")]
    fn over_rejects_inverted_range() {
        let c = BlockCounts::of(&IpSet::empty());
        let _ = c.over(20, 16);
    }

    #[test]
    fn blockset_of_matches_counts() {
        let s = ipset(&["10.1.2.3", "10.1.2.200", "10.1.3.1", "99.0.0.1"]);
        let counts = BlockCounts::of(&s);
        for n in [0u8, 8, 16, 20, 24, 28, 32] {
            assert_eq!(BlockSet::of(&s, n).len() as u64, counts.at(n), "n = {n}");
        }
    }

    #[test]
    fn blockset_contains() {
        let s = ipset(&["10.1.2.3"]);
        let b24 = BlockSet::of(&s, 24);
        assert!(b24.contains("10.1.2.250".parse().expect("ip")));
        assert!(!b24.contains("10.1.3.1".parse().expect("ip")));
        let b0 = BlockSet::of(&s, 0);
        assert!(b0.contains(Ip(u32::MAX)));
        assert!(!BlockSet::of(&IpSet::empty(), 0).contains(Ip(0)));
    }

    #[test]
    fn intersect_count_basics() {
        let a = BlockSet::of(&ipset(&["10.1.2.3", "10.9.0.0", "99.0.0.1"]), 24);
        let b = BlockSet::of(&ipset(&["10.1.2.200", "50.0.0.1", "99.0.0.77"]), 24);
        assert_eq!(a.intersect_count(&b), 2); // 10.1.2/24 and 99.0.0/24
        assert_eq!(b.intersect_count(&a), 2);
        let e = BlockSet::of(&IpSet::empty(), 24);
        assert_eq!(a.intersect_count(&e), 0);
    }

    #[test]
    #[should_panic(expected = "different prefix lengths")]
    fn intersect_rejects_mismatched_lengths() {
        let a = BlockSet::of(&ipset(&["10.0.0.1"]), 24);
        let b = BlockSet::of(&ipset(&["10.0.0.1"]), 16);
        let _ = a.intersect_count(&b);
    }

    #[test]
    fn to_cidrs_round_trips() {
        let s = ipset(&["10.1.2.3", "10.1.2.200", "192.168.0.1"]);
        let cidrs = BlockSet::of(&s, 24).to_cidrs();
        let strs: Vec<String> = cidrs.iter().map(|c| c.to_string()).collect();
        assert_eq!(strs, vec!["10.1.2.0/24", "192.168.0.0/24"]);
        let zero = BlockSet::of(&s, 0).to_cidrs();
        assert_eq!(zero[0].to_string(), "0.0.0.0/0");
    }

    #[test]
    fn address_span() {
        let s = ipset(&["10.1.2.3", "10.1.3.4"]);
        assert_eq!(BlockSet::of(&s, 24).address_span(), 512);
        assert_eq!(BlockSet::of(&s, 32).address_span(), 2);
        assert_eq!(BlockSet::of(&s, 16).address_span(), 65536);
    }

    #[test]
    fn members_of_filters_by_block() {
        let report = ipset(&["10.1.2.3"]);
        let traffic = ipset(&["10.1.2.9", "10.1.3.9", "10.1.2.77"]);
        let blocks = BlockSet::of(&report, 24);
        let hits: Vec<String> = blocks.members_of(&traffic).map(|i| i.to_string()).collect();
        assert_eq!(hits, vec!["10.1.2.9", "10.1.2.77"]);
    }

    #[test]
    fn recorded_constructors_match_and_count() {
        let registry = Registry::full();
        let s = ipset(&["10.1.2.3", "10.1.2.200", "99.0.0.1"]);
        let counts = BlockCounts::of_recorded(&s, &registry);
        assert_eq!(counts, BlockCounts::of(&s), "telemetry changes nothing");
        let blocks = BlockSet::of_recorded(&s, 24, &registry);
        assert_eq!(blocks, BlockSet::of(&s, 24));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["core.blocks.counts_built"], 1);
        assert_eq!(snap.counters["core.blocks.sets_built"], 1);
        assert_eq!(snap.histograms["core.blocks.set_size"].sum, 2);
        assert_eq!(snap.histograms["core.blocks.input_addresses"].sum, 3);
    }

    fn shared_counts_reference(a: &IpSet, b: &IpSet, lo: u8, hi: u8) -> Vec<u64> {
        (lo..=hi)
            .map(|n| BlockSet::of(a, n).intersect_count(&BlockSet::of(b, n)))
            .collect()
    }

    #[test]
    fn shared_block_counts_match_per_length_intersections() {
        let a = ipset(&[
            "10.1.2.3",
            "10.1.2.200",
            "10.9.0.0",
            "99.0.0.1",
            "99.0.0.2",
            "200.200.200.200",
        ]);
        let b = ipset(&["10.1.2.200", "10.1.3.1", "50.0.0.1", "99.0.0.77"]);
        assert_eq!(
            shared_block_counts(&a, &b, 0, 32),
            shared_counts_reference(&a, &b, 0, 32)
        );
        assert_eq!(
            shared_block_counts(&a, &b, 16, 32),
            shared_counts_reference(&a, &b, 16, 32)
        );
        assert_eq!(
            shared_block_counts(&b, &a, 16, 32),
            shared_counts_reference(&b, &a, 16, 32)
        );
    }

    #[test]
    fn shared_block_counts_on_structured_sets() {
        // Hash-scattered sample vs a clustered "present" set, the shape the
        // temporal analysis feeds in, across every sub-range bound.
        let a = IpSet::from_raw(
            (0..2_000u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect(),
        );
        let b = IpSet::from_raw(
            (0..500u32)
                .map(|i| (i.wrapping_mul(2_654_435_761) & 0xffff_ff00) | (i % 7))
                .collect(),
        );
        assert_eq!(
            shared_block_counts(&a, &b, 16, 32),
            shared_counts_reference(&a, &b, 16, 32)
        );
        assert_eq!(shared_block_counts(&a, &b, 24, 24)[0], {
            BlockSet::of(&a, 24).intersect_count(&BlockSet::of(&b, 24))
        });
    }

    #[test]
    fn shared_block_counts_edge_cases() {
        let a = ipset(&["10.1.2.3"]);
        assert_eq!(
            shared_block_counts(&a, &IpSet::empty(), 16, 32),
            vec![0; 17]
        );
        assert_eq!(
            shared_block_counts(&IpSet::empty(), &a, 16, 32),
            vec![0; 17]
        );
        // Identical singletons intersect at every length.
        assert_eq!(shared_block_counts(&a, &a, 0, 32), vec![1; 33]);
        // Addresses differing in the top bit share only the universal block.
        let b = ipset(&["200.1.2.3"]);
        let counts = shared_block_counts(&a, &b, 0, 8);
        assert_eq!(counts[0], 1);
        assert!(counts[1..].iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "bad prefix range")]
    fn shared_block_counts_rejects_inverted_range() {
        let _ = shared_block_counts(&IpSet::empty(), &IpSet::empty(), 20, 16);
    }

    #[test]
    fn per_block_population_counts() {
        let report = ipset(&["10.1.2.3", "20.0.0.1"]);
        let traffic = ipset(&["10.1.2.9", "10.1.2.10", "20.0.0.200", "30.0.0.1"]);
        let blocks = BlockSet::of(&report, 24);
        let pops = per_block_population(&blocks, &traffic);
        assert_eq!(pops.len(), 2);
        assert_eq!(pops[0].1, 2);
        assert_eq!(pops[1].1, 1);
    }
}
