//! Longest-prefix-match structures for *serving* block lists.
//!
//! The analyses in this crate ask set-shaped questions offline; the §6
//! consequence — "should this connection be blocked?" — is a per-packet
//! *lookup* question. This module provides the two structures the
//! `unclean-serve` daemon answers it with:
//!
//! * [`CidrTrie`] — a mutable arena-allocated binary trie over CIDR
//!   blocks, each carrying an uncleanliness score. The pointer-trie
//!   sibling of [`crate::trie::PrefixTrie`], extended with terminal
//!   entries at interior depths so nested blocks resolve by longest
//!   prefix.
//! * [`FrozenTrie`] — an immutable freeze of a [`CidrTrie`]: unary
//!   entry-less chains collapsed Patricia-style and the surviving nodes
//!   renumbered breadth-first into one contiguous array (no per-node
//!   allocation), which is what the serving hot path walks. Snapshots of
//!   this type are atomically swapped on hot reload while old generations
//!   keep serving in-flight requests.
//!
//! A frozen trie's storage is two arrays of plain 16-byte records, so it
//! has two interchangeable backings: the heap `Vec`s a freeze builds, or
//! a read-only memory map of a snapshot file written by
//! [`FrozenTrie::freeze_to_file`] and opened with
//! [`FrozenTrie::open_mmap`] (format in [`crate::snap`]). The mapped
//! form starts in O(1) — no parse, no proportional allocation — and N
//! processes mapping the same file share one page-cache copy. Lookups
//! are identical over both; because a mapped snapshot is external input,
//! the walk is bounds-checked and depth-bounded so corrupt bytes can
//! only answer wrong, never crash or loop.
//!
//! Both structures answer [`lookup`](FrozenTrie::lookup) identically — a
//! property test in `tests/properties.rs` and a Criterion bench in
//! `unclean-bench` hold them to that and compare their throughput.

use crate::cidr::{mask, Cidr};
use crate::ip::Ip;
use crate::snap::{self, SnapError, SnapshotMeta};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Index of a node in an arena; `NONE` marks an absent child or entry.
type Idx = u32;
const NONE: Idx = u32::MAX;

/// One block in a serving trie: the CIDR plus its uncleanliness score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockEntry {
    /// The blocked CIDR.
    pub cidr: Cidr,
    /// The block's uncleanliness score (0 when the source list carries
    /// none).
    pub score: f64,
}

/// A successful longest-prefix-match: which block matched and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LpmMatch {
    /// The most specific blocked CIDR containing the address.
    pub cidr: Cidr,
    /// That block's uncleanliness score.
    pub score: f64,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    children: [Idx; 2],
    entry: Idx,
}

impl Node {
    fn empty() -> Node {
        Node {
            children: [NONE, NONE],
            entry: NONE,
        }
    }
}

/// A mutable arena-allocated binary trie mapping CIDR blocks to scored
/// entries, answering longest-prefix-match lookups.
#[derive(Debug, Clone, Default)]
pub struct CidrTrie {
    nodes: Vec<Node>,
    entries: Vec<BlockEntry>,
}

impl CidrTrie {
    /// An empty trie (just the root).
    pub fn new() -> CidrTrie {
        CidrTrie {
            nodes: vec![Node::empty()],
            entries: Vec::new(),
        }
    }

    /// Build from scored blocks (e.g. a parsed
    /// [`crate::blocklist::parse_scored`] list). Duplicate CIDRs keep the
    /// last score.
    pub fn from_scored(blocks: impl IntoIterator<Item = (Cidr, f64)>) -> CidrTrie {
        let mut t = CidrTrie::new();
        for (cidr, score) in blocks {
            t.insert(cidr, score);
        }
        t
    }

    /// Build from bare blocks, all at score 0.
    pub fn from_cidrs(blocks: impl IntoIterator<Item = Cidr>) -> CidrTrie {
        CidrTrie::from_scored(blocks.into_iter().map(|c| (c, 0.0)))
    }

    /// Insert (or re-score) one block; returns whether it was new.
    pub fn insert(&mut self, cidr: Cidr, score: f64) -> bool {
        let mut idx: usize = 0;
        let base = cidr.base().raw();
        for depth in 0..cidr.len() {
            let bit = ((base >> (31 - depth)) & 1) as usize;
            let child = self.nodes[idx].children[bit];
            idx = if child == NONE {
                let new_idx = self.nodes.len() as Idx;
                self.nodes.push(Node::empty());
                self.nodes[idx].children[bit] = new_idx;
                new_idx as usize
            } else {
                child as usize
            };
        }
        match self.nodes[idx].entry {
            NONE => {
                self.nodes[idx].entry = self.entries.len() as Idx;
                self.entries.push(BlockEntry { cidr, score });
                true
            }
            e => {
                self.entries[e as usize].score = score;
                false
            }
        }
    }

    /// The most specific block containing `ip`, if any.
    pub fn lookup(&self, ip: Ip) -> Option<LpmMatch> {
        let mut idx: usize = 0;
        let mut best = self.nodes[0].entry;
        for depth in 0..32 {
            let bit = ((ip.raw() >> (31 - depth)) & 1) as usize;
            let child = self.nodes[idx].children[bit];
            if child == NONE {
                break;
            }
            idx = child as usize;
            if self.nodes[idx].entry != NONE {
                best = self.nodes[idx].entry;
            }
        }
        (best != NONE).then(|| {
            let e = &self.entries[best as usize];
            LpmMatch {
                cidr: e.cidr,
                score: e.score,
            }
        })
    }

    /// Number of distinct blocks inserted.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no blocks were inserted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The inserted blocks, in insertion order.
    pub fn entries(&self) -> &[BlockEntry] {
        &self.entries
    }
}

/// One frozen trie node, exactly 16 bytes, identical in memory and on
/// disk: `repr(C)`, pad-free, and valid for any bit pattern, so a
/// snapshot section can be reinterpreted as `&[FrozenNode]` in place.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct FrozenNode {
    children: [Idx; 2],
    entry: Idx,
    /// The node's depth: the next branch decision tests bit `plen`.
    /// Widened to u32 to keep the record pad-free.
    plen: u32,
}

/// One frozen entry record, 16 bytes, same in-memory/on-disk contract as
/// [`FrozenNode`]. Stores the CIDR unpacked (`base`, `plen`) rather than
/// as [`Cidr`] so the layout is explicit and any bit pattern is valid.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub(crate) struct DiskEntry {
    base: u32,
    plen: u32,
    score: f64,
}

const _: () = assert!(std::mem::size_of::<FrozenNode>() == snap::RECORD_BYTES);
const _: () = assert!(std::mem::size_of::<DiskEntry>() == snap::RECORD_BYTES);

impl snap::Record for FrozenNode {}
impl snap::Record for DiskEntry {}

impl DiskEntry {
    fn from_block(e: &BlockEntry) -> DiskEntry {
        DiskEntry {
            base: e.cidr.base().raw(),
            plen: e.cidr.len() as u32,
            score: e.score,
        }
    }

    /// Reconstruct the public entry. `plen` is clamped and `base` masked
    /// via [`Cidr::of`] so even a corrupt mapped record yields a
    /// well-formed (if wrong) CIDR instead of a panic.
    fn to_block(self) -> BlockEntry {
        BlockEntry {
            cidr: Cidr::of(Ip(self.base), self.plen.min(32) as u8),
            score: self.score,
        }
    }

    #[inline]
    fn contains(&self, raw: u32) -> bool {
        self.plen <= 32 && raw & mask(self.plen as u8) == self.base & mask(self.plen as u8)
    }
}

/// Which storage a [`FrozenTrie`] walks: heap `Vec`s built by
/// [`FrozenTrie::freeze`], or sections borrowed from a mapped snapshot.
#[derive(Debug)]
enum Backing {
    Heap {
        nodes: Vec<FrozenNode>,
        entries: Vec<DiskEntry>,
    },
    Mapped(snap::MappedSnapshot),
}

/// An immutable, flattened, path-compressed freeze of a [`CidrTrie`].
///
/// The builder trie spends one node per bit, so with a few thousand
/// blocks scattered over the 2³² address space most of every lookup walks
/// a unary, entry-less chain. Freezing collapses those chains
/// Patricia-style — a kept node is the root, carries an entry, or
/// branches — and records only the *depth* at which each survivor sits.
/// A lookup therefore tests just the branch bits on the way down
/// (collecting candidate entries) and verifies the skipped bits once at
/// the end against the candidates' own CIDRs, deepest first. Kept nodes
/// are renumbered breadth-first into one contiguous 16-byte-node array:
/// the walk is O(branching nodes) ≈ log₂(blocks), not O(prefix bits),
/// and the whole structure is two allocations regardless of size. There
/// is no interior mutability: hot reload builds a *new* trie off the
/// serving path and swaps the `Arc` holding it.
///
/// The node and entry arrays live either on the heap (after a freeze) or
/// inside a read-only memory map of a snapshot file ([`open_mmap`]
/// (FrozenTrie::open_mmap)); lookups are oblivious to the difference.
#[derive(Debug)]
pub struct FrozenTrie {
    backing: Backing,
}

impl FrozenTrie {
    /// Freeze a pointer trie: collapse unary entry-less chains and
    /// BFS-renumber the surviving nodes into a contiguous array, copying
    /// entries in the builder's order.
    pub fn freeze(trie: &CidrTrie) -> FrozenTrie {
        // BFS over *kept* nodes. Each queue item is (old index, plen)
        // after chain-collapsing; its new index is its queue slot.
        let mut queue: Vec<(u32, u8)> = vec![(0, 0)];
        let mut nodes: Vec<FrozenNode> = Vec::new();
        let mut head = 0;
        while head < queue.len() {
            let (old_idx, plen) = queue[head];
            head += 1;
            let node = &trie.nodes[old_idx as usize];
            let mut frozen = FrozenNode {
                children: [NONE, NONE],
                entry: node.entry,
                plen: plen as u32,
            };
            for bit in 0..2usize {
                let child = node.children[bit];
                if child == NONE {
                    continue;
                }
                // Descend into the child, then skip down the unary
                // entry-less chain below it.
                let mut c_idx = child;
                let mut c_plen = plen + 1;
                loop {
                    let c = &trie.nodes[c_idx as usize];
                    if c.entry != NONE || c_plen == 32 {
                        break;
                    }
                    let only = match c.children {
                        [only, NONE] | [NONE, only] => only,
                        _ => break,
                    };
                    c_idx = only;
                    c_plen += 1;
                }
                frozen.children[bit] = queue.len() as Idx;
                queue.push((c_idx, c_plen));
            }
            nodes.push(frozen);
        }
        FrozenTrie {
            backing: Backing::Heap {
                nodes,
                entries: trie.entries.iter().map(DiskEntry::from_block).collect(),
            },
        }
    }

    /// Build directly from scored blocks (a temporary [`CidrTrie`] is the
    /// builder).
    pub fn from_scored(blocks: impl IntoIterator<Item = (Cidr, f64)>) -> FrozenTrie {
        FrozenTrie::freeze(&CidrTrie::from_scored(blocks))
    }

    #[inline]
    fn sections(&self) -> (&[FrozenNode], &[DiskEntry]) {
        match &self.backing {
            Backing::Heap { nodes, entries } => (nodes, entries),
            Backing::Mapped(m) => (
                snap::cast_records(m.node_bytes()),
                snap::cast_records(m.entry_bytes()),
            ),
        }
    }

    /// The most specific block containing `ip`, if any.
    #[inline]
    pub fn lookup(&self, ip: Ip) -> Option<LpmMatch> {
        let (nodes, entries) = self.sections();
        let raw = ip.raw();
        // Walk testing only branch bits — skipped bits are NOT verified
        // here, so entries met on the way down are candidates, not hits.
        // They are nested prefixes of one another, so verifying deepest
        // first at the end finds the longest true match.
        //
        // The indices may come from an unverified mapped snapshot, so the
        // walk is defensive: indexing is checked and the depth bound (33
        // nodes: one per prefix length) also bounds any cycle a corrupt
        // node section could encode.
        let mut candidates = [NONE; 33];
        let mut found = 0usize;
        let mut idx = 0usize;
        for _ in 0..=32 {
            let Some(node) = nodes.get(idx) else { break };
            if node.entry != NONE && found < candidates.len() {
                candidates[found] = node.entry;
                found += 1;
            }
            if node.plen >= 32 {
                break;
            }
            let child = node.children[((raw >> (31 - node.plen)) & 1) as usize];
            if child == NONE {
                break;
            }
            idx = child as usize;
        }
        while found > 0 {
            found -= 1;
            let Some(e) = entries.get(candidates[found] as usize) else {
                continue;
            };
            if e.contains(raw) {
                let b = e.to_block();
                return Some(LpmMatch {
                    cidr: b.cidr,
                    score: b.score,
                });
            }
        }
        None
    }

    /// Whether any block contains `ip`.
    #[inline]
    pub fn contains(&self, ip: Ip) -> bool {
        self.lookup(ip).is_some()
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.sections().1.len()
    }

    /// Whether the trie holds no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The frozen blocks, in the builder's insertion order. Materialized
    /// on demand (the storage keeps them as raw 16-byte records).
    pub fn entries(&self) -> Vec<BlockEntry> {
        self.sections().1.iter().map(|e| e.to_block()).collect()
    }

    /// Resident footprint in bytes: heap (nodes + entries) for a frozen
    /// build, the mapped file length for a snapshot (shared,
    /// demand-paged).
    pub fn memory_bytes(&self) -> usize {
        match &self.backing {
            Backing::Heap { nodes, entries } => (nodes.len() + entries.len()) * snap::RECORD_BYTES,
            Backing::Mapped(m) => m.file_len(),
        }
    }

    /// Write this trie as an mmap-able snapshot file (format in
    /// [`crate::snap`]): `.tmp` sibling, fsync, atomic rename, so a
    /// concurrent [`open_mmap`](FrozenTrie::open_mmap) never sees a torn
    /// file.
    pub fn freeze_to_file(&self, path: &Path, meta: SnapshotMeta) -> Result<(), SnapError> {
        let (nodes, entries) = self.sections();
        snap::write_snapshot(
            path,
            snap::record_bytes(nodes),
            snap::record_bytes(entries),
            meta,
        )
    }

    /// Open a snapshot by memory-mapping it — O(1) in the snapshot size:
    /// only the header is parsed and bounds-checked before the first
    /// lookup; node pages fault in on demand and are shared across
    /// processes. Section CRCs are *not* verified here (that would read
    /// the whole file) — see [`open_mmap_verified`]
    /// (FrozenTrie::open_mmap_verified); the lookup walk tolerates
    /// corrupt sections without crashing.
    pub fn open_mmap(path: &Path) -> Result<FrozenTrie, SnapError> {
        Ok(FrozenTrie {
            backing: Backing::Mapped(snap::open(path)?),
        })
    }

    /// [`open_mmap`](FrozenTrie::open_mmap) plus full section CRC
    /// verification — O(file size), for tools and tests.
    pub fn open_mmap_verified(path: &Path) -> Result<FrozenTrie, SnapError> {
        Ok(FrozenTrie {
            backing: Backing::Mapped(snap::open_verified(path)?),
        })
    }

    /// Provenance from the snapshot header, when this trie is a mapped
    /// snapshot (`None` for heap-built tries).
    pub fn snapshot_meta(&self) -> Option<SnapshotMeta> {
        match &self.backing {
            Backing::Heap { .. } => None,
            Backing::Mapped(m) => Some(m.meta()),
        }
    }

    /// Whether the storage is a true shared memory map (false for
    /// heap-built tries and for the non-unix read-into-memory fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            Backing::Heap { .. } => false,
            Backing::Mapped(m) => m.is_mmap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cidr(s: &str) -> Cidr {
        s.parse().expect("valid cidr")
    }

    fn ip(s: &str) -> Ip {
        s.parse().expect("valid ip")
    }

    fn both(blocks: &[(&str, f64)]) -> (CidrTrie, FrozenTrie) {
        let scored: Vec<(Cidr, f64)> = blocks.iter().map(|(s, w)| (cidr(s), *w)).collect();
        let pointer = CidrTrie::from_scored(scored);
        let frozen = FrozenTrie::freeze(&pointer);
        (pointer, frozen)
    }

    #[test]
    fn lookup_hits_and_misses() {
        let (pointer, frozen) = both(&[("9.1.0.0/16", 2.5), ("203.0.113.0/24", 1.0)]);
        for t in [
            &pointer.lookup(ip("9.1.200.7")),
            &frozen.lookup(ip("9.1.200.7")),
        ] {
            let m = t.expect("inside 9.1/16");
            assert_eq!(m.cidr, cidr("9.1.0.0/16"));
            assert_eq!(m.score, 2.5);
        }
        assert!(pointer.lookup(ip("9.2.0.0")).is_none());
        assert!(frozen.lookup(ip("9.2.0.0")).is_none());
        assert!(frozen.contains(ip("203.0.113.255")));
        assert!(!frozen.contains(ip("203.0.114.0")));
    }

    #[test]
    fn longest_prefix_wins_for_nested_blocks() {
        let (pointer, frozen) = both(&[("10.0.0.0/8", 0.5), ("10.5.0.0/16", 3.0)]);
        for m in [
            pointer.lookup(ip("10.5.1.1")).expect("nested"),
            frozen.lookup(ip("10.5.1.1")).expect("nested"),
        ] {
            assert_eq!(m.cidr, cidr("10.5.0.0/16"), "most specific block wins");
            assert_eq!(m.score, 3.0);
        }
        // Outside the nested /16, the /8 still matches.
        assert_eq!(
            frozen.lookup(ip("10.6.0.0")).expect("outer").cidr,
            cidr("10.0.0.0/8")
        );
    }

    #[test]
    fn boundary_addresses() {
        let (_, frozen) = both(&[("192.168.4.0/22", 1.0)]);
        assert!(frozen.contains(ip("192.168.4.0")), "first address");
        assert!(frozen.contains(ip("192.168.7.255")), "last address");
        assert!(!frozen.contains(ip("192.168.3.255")), "one below");
        assert!(!frozen.contains(ip("192.168.8.0")), "one above");
    }

    #[test]
    fn zero_prefix_matches_everything() {
        let (_, frozen) = both(&[("0.0.0.0/0", 0.1)]);
        for probe in ["0.0.0.0", "127.0.0.1", "255.255.255.255"] {
            assert_eq!(frozen.lookup(ip(probe)).expect("universal").score, 0.1);
        }
    }

    #[test]
    fn slash32_matches_exactly_one_address() {
        let (_, frozen) = both(&[("203.0.113.7/32", 9.0)]);
        assert!(frozen.contains(ip("203.0.113.7")));
        assert!(!frozen.contains(ip("203.0.113.6")));
        assert!(!frozen.contains(ip("203.0.113.8")));
    }

    #[test]
    fn duplicate_insert_rescores() {
        let mut t = CidrTrie::new();
        assert!(t.insert(cidr("9.1.0.0/16"), 1.0));
        assert!(!t.insert(cidr("9.1.0.0/16"), 7.0), "duplicate re-scores");
        assert_eq!(t.len(), 1);
        let frozen = FrozenTrie::freeze(&t);
        assert_eq!(frozen.lookup(ip("9.1.1.1")).expect("hit").score, 7.0);
    }

    #[test]
    fn empty_tries_answer_none() {
        let pointer = CidrTrie::new();
        let frozen = FrozenTrie::freeze(&pointer);
        assert!(pointer.is_empty() && frozen.is_empty());
        assert!(pointer.lookup(ip("1.2.3.4")).is_none());
        assert!(frozen.lookup(ip("1.2.3.4")).is_none());
        assert!(frozen.memory_bytes() > 0, "root node still accounted");
    }

    #[test]
    fn freeze_preserves_entries_and_len() {
        let (pointer, frozen) = both(&[("9.1.0.0/16", 2.0), ("9.2.0.0/16", 1.0)]);
        assert_eq!(pointer.len(), frozen.len());
        assert_eq!(pointer.entries(), frozen.entries());
    }

    #[test]
    fn bfs_layout_is_contiguous_from_the_root() {
        // The two /1 children of the root must be nodes 1 and 2 after
        // freezing, whatever order the builder allocated them in.
        let mut t = CidrTrie::new();
        t.insert(cidr("128.0.0.0/1"), 1.0);
        t.insert(cidr("0.0.0.0/1"), 2.0);
        let frozen = FrozenTrie::freeze(&t);
        let (nodes, _) = frozen.sections();
        assert_eq!(nodes[0].children, [1, 2]);
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("unclean-frozen-test-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("trie.snap")
    }

    fn sample_trie() -> FrozenTrie {
        FrozenTrie::from_scored([
            (cidr("10.0.0.0/8"), 0.5),
            (cidr("10.5.0.0/16"), 3.0),
            (cidr("203.0.113.0/24"), 1.25),
            (cidr("203.0.113.7/32"), 9.0),
            (cidr("0.0.0.0/2"), 0.125),
        ])
    }

    #[test]
    fn snapshot_roundtrip_preserves_lookups_and_meta() {
        let heap = sample_trie();
        let path = tmp_path("roundtrip");
        let meta = SnapshotMeta {
            built_unix_ms: 1_754_700_000_000,
            source_generation: Some(7),
        };
        heap.freeze_to_file(&path, meta).expect("freeze_to_file");

        let mapped = FrozenTrie::open_mmap_verified(&path).expect("open");
        assert_eq!(mapped.len(), heap.len());
        assert_eq!(mapped.snapshot_meta(), Some(meta));
        assert_eq!(heap.entries(), mapped.entries());
        for probe in [
            "10.5.1.1",
            "10.6.0.0",
            "203.0.113.7",
            "203.0.113.8",
            "1.2.3.4",
            "99.99.99.99",
            "255.255.255.255",
        ] {
            assert_eq!(
                heap.lookup(ip(probe)),
                mapped.lookup(ip(probe)),
                "probe {probe}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let path = tmp_path("truncated");
        sample_trie()
            .freeze_to_file(
                &path,
                SnapshotMeta {
                    built_unix_ms: 1,
                    source_generation: None,
                },
            )
            .expect("freeze");
        let full = std::fs::read(&path).expect("read");
        // Cut the file mid-section: the O(1) open must already reject it
        // (bounds check), not just the verified open.
        std::fs::write(&path, &full[..full.len() - 8]).expect("truncate");
        assert!(matches!(
            FrozenTrie::open_mmap(&path),
            Err(SnapError::Truncated { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_section_fails_verified_open_but_never_panics_unverified() {
        let path = tmp_path("corrupt");
        sample_trie()
            .freeze_to_file(
                &path,
                SnapshotMeta {
                    built_unix_ms: 1,
                    source_generation: None,
                },
            )
            .expect("freeze");
        let mut bytes = std::fs::read(&path).expect("read");
        // Scribble over the node section (page 1) — child indices and
        // plens become garbage.
        for b in &mut bytes[4096..4096 + 64] {
            *b = 0xAB;
        }
        std::fs::write(&path, &bytes).expect("rewrite");

        assert!(matches!(
            FrozenTrie::open_mmap_verified(&path),
            Err(SnapError::SectionCrc {
                section: "nodes",
                ..
            })
        ));

        // The unverified open accepts it (header is intact) and lookups
        // must stay memory-safe and terminate on garbage records.
        let mapped = FrozenTrie::open_mmap(&path).expect("header still valid");
        for probe in ["0.0.0.0", "10.5.1.1", "255.255.255.255"] {
            let _ = mapped.lookup(ip(probe));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_snapshot_file_is_rejected_by_magic() {
        let path = tmp_path("notasnap");
        std::fs::write(&path, b"9.1.0.0/16 2.5\n203.0.113.0/24 1.0\n").expect("write");
        assert!(matches!(
            FrozenTrie::open_mmap(&path),
            Err(SnapError::BadMagic)
        ));
        assert!(!snap::is_snapshot(&path));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trie_snapshot_roundtrips() {
        let heap = FrozenTrie::freeze(&CidrTrie::new());
        let path = tmp_path("empty");
        heap.freeze_to_file(
            &path,
            SnapshotMeta {
                built_unix_ms: 0,
                source_generation: None,
            },
        )
        .expect("freeze");
        assert!(snap::is_snapshot(&path));
        let mapped = FrozenTrie::open_mmap_verified(&path).expect("open");
        assert!(mapped.is_empty());
        assert!(mapped.lookup(ip("1.2.3.4")).is_none());
        std::fs::remove_file(&path).ok();
    }
}
