//! The mmap-able on-disk [`FrozenTrie`](crate::frozen::FrozenTrie)
//! snapshot format.
//!
//! A serving daemon that reloads every few seconds and a fleet of N
//! border processes sharing one box both want the same two properties
//! from a blocklist artifact: *O(1) cold start* (no parse, no
//! allocation proportional to the list) and *one page-cache copy*
//! shared between processes. The frozen trie already stores its nodes
//! and entries as contiguous 16-byte records, so the snapshot format is
//! little more than those two arrays written verbatim behind a
//! self-describing header:
//!
//! ```text
//! offset 0        header page (4096 bytes, zero-padded)
//!   [ 0.. 8)      magic "UNCLSNP1"
//!   [ 8..12)      version        u32 = 1   (also an endianness check)
//!   [12..16)      reserved       u32 = 0
//!   [16..24)      node_count     u64
//!   [24..32)      entry_count    u64
//!   [32..40)      nodes_off      u64 (page-aligned)
//!   [40..48)      entries_off    u64 (page-aligned)
//!   [48..56)      built_unix_ms  u64
//!   [56..64)      source_generation u64 (u64::MAX = none)
//!   [64..68)      nodes_crc      u32 (CRC-32 of the node section)
//!   [68..72)      entries_crc    u32 (CRC-32 of the entry section)
//!   [72..76)      header_crc     u32 (CRC-32 of bytes [0..72))
//! nodes_off       node_count   x 16-byte FrozenNode records
//! entries_off     entry_count  x 16-byte entry records {base, plen, score}
//! ```
//!
//! [`open`] maps the file and borrows both sections straight from the
//! mapping: the only work before the first lookup is the header parse
//! and bounds checks — the kernel pages node records in on demand, and
//! N processes mapping the same snapshot share one physical copy.
//! Section CRCs are *not* verified on the O(1) path (that would read
//! the whole file); [`open_verified`] and `unclean snapshot inspect`
//! check them, and the serving lookup walk is bounds-checked and
//! depth-bounded so even a corrupt unverified snapshot can only answer
//! wrong, never crash or loop.
//!
//! Publication is atomic: [`write_snapshot`] writes to a `.tmp` sibling,
//! fsyncs, and renames into place, so a watcher that triggers on the
//! destination path can never map a torn file. Numbers are
//! little-endian (the header `version` doubles as the check: a
//! big-endian reader sees 0x01000000 and rejects the snapshot).

// The one module in this crate allowed to use `unsafe`: the mmap FFI
// and the record/byte reinterpretations, each with its soundness
// argument at the use site. The rest of the crate stays deny(unsafe).
#![allow(unsafe_code)]

use std::io::{Read, Seek, Write};
use std::path::Path;

/// First bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"UNCLSNP1";
/// Current format version.
pub const VERSION: u32 = 1;
/// Sections start on page boundaries so mapped slices are maximally
/// aligned and each section starts on its own page.
pub const PAGE: u64 = 4096;
/// Bytes of header actually used (the rest of page 0 is zero).
pub const HEADER_BYTES: usize = 76;

/// Size of one node / one entry record on disk.
pub const RECORD_BYTES: usize = 16;

/// Marker for the two fixed-size record types stored in snapshot
/// sections. Implementors (crate-internal only) promise: `repr(C)`,
/// exactly [`RECORD_BYTES`] bytes, no padding, and every bit pattern is
/// a valid value — which is what makes the byte/record
/// reinterpretations below sound in both directions.
pub(crate) trait Record: Copy {}

/// View records as raw bytes (for writing a snapshot).
pub(crate) fn record_bytes<T: Record>(records: &[T]) -> &[u8] {
    debug_assert_eq!(std::mem::size_of::<T>(), RECORD_BYTES);
    // SAFETY: T is a pad-free repr(C) record (Record contract), so every
    // byte of the slice is initialized; the view covers exactly the
    // slice's memory and borrows it immutably.
    unsafe {
        std::slice::from_raw_parts(
            records.as_ptr() as *const u8,
            std::mem::size_of_val(records),
        )
    }
}

/// View a snapshot section as records (for reading a mapping in place).
/// The byte length must be a record multiple and the pointer aligned for
/// `T` — both guaranteed by the header validation in [`open`] plus the
/// page-aligned (or `u64`-aligned fallback) buffer.
pub(crate) fn cast_records<T: Record>(bytes: &[u8]) -> &[T] {
    debug_assert_eq!(std::mem::size_of::<T>(), RECORD_BYTES);
    assert_eq!(
        bytes.len() % RECORD_BYTES,
        0,
        "section not a record multiple"
    );
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "section not aligned for record type"
    );
    // SAFETY: length and alignment checked above; T accepts any bit
    // pattern (Record contract); the records borrow the byte slice
    // immutably for the same lifetime.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / RECORD_BYTES) }
}

/// Errors from snapshot reading and writing.
#[derive(Debug)]
pub enum SnapError {
    /// Not a snapshot: bad magic.
    BadMagic,
    /// Unsupported version word (or wrong endianness).
    BadVersion(u32),
    /// The header is self-inconsistent (CRC mismatch over the header
    /// bytes).
    HeaderCrc {
        /// The CRC stored in the header.
        stored: u32,
        /// The CRC computed over the header bytes.
        computed: u32,
    },
    /// A section CRC failed under [`open_verified`].
    SectionCrc {
        /// `"nodes"` or `"entries"`.
        section: &'static str,
        /// The CRC stored in the header.
        stored: u32,
        /// The CRC computed over the section bytes.
        computed: u32,
    },
    /// Sections point outside the file (truncated or corrupt header).
    Truncated {
        /// Bytes the header claims the file holds.
        need: u64,
        /// Bytes actually present.
        have: u64,
    },
    /// Structural nonsense (zero nodes, misaligned offsets, ...).
    Malformed(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "not a frozen-trie snapshot (bad magic)"),
            SnapError::BadVersion(v) => {
                write!(f, "unsupported snapshot version {v:#x} (want {VERSION})")
            }
            SnapError::HeaderCrc { stored, computed } => write!(
                f,
                "snapshot header CRC mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapError::SectionCrc {
                section,
                stored,
                computed,
            } => write!(
                f,
                "snapshot {section} section CRC mismatch \
                 (stored {stored:#010x}, computed {computed:#010x})"
            ),
            SnapError::Truncated { need, have } => {
                write!(f, "snapshot truncated: needs {need} bytes, file has {have}")
            }
            SnapError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            SnapError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

impl From<std::io::Error> for SnapError {
    fn from(e: std::io::Error) -> SnapError {
        SnapError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3, the same polynomial the v2 flow archive uses).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc ^ 0xFFFF_FFFF
}

/// Provenance carried inside the snapshot header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Unix milliseconds at which the snapshot was frozen.
    pub built_unix_ms: u64,
    /// The producing pipeline's generation stamp, if any.
    pub source_generation: Option<u64>,
}

/// Everything `snapshot inspect` prints: the parsed header plus the
/// outcome of the full-section CRC verification.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Format version from the header.
    pub version: u32,
    /// Number of 16-byte trie nodes.
    pub node_count: u64,
    /// Number of 16-byte scored entries.
    pub entry_count: u64,
    /// Byte offset of the node section.
    pub nodes_off: u64,
    /// Byte offset of the entry section.
    pub entries_off: u64,
    /// Total file length in bytes.
    pub file_len: u64,
    /// Header-carried provenance.
    pub meta: SnapshotMeta,
    /// Stored CRC of the node section.
    pub nodes_crc: u32,
    /// Stored CRC of the entry section.
    pub entries_crc: u32,
    /// Stored CRC of the header bytes.
    pub header_crc: u32,
    /// Whether both section CRCs verified against the stored values.
    pub crc_ok: bool,
}

/// The parsed fixed-size header.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub node_count: u64,
    pub entry_count: u64,
    pub nodes_off: u64,
    pub entries_off: u64,
    pub built_unix_ms: u64,
    pub source_generation: u64,
    pub nodes_crc: u32,
    pub entries_crc: u32,
    pub header_crc: u32,
}

impl Header {
    fn render(&self) -> [u8; HEADER_BYTES] {
        let mut out = [0u8; HEADER_BYTES];
        out[0..8].copy_from_slice(&MAGIC);
        out[8..12].copy_from_slice(&VERSION.to_le_bytes());
        // [12..16) reserved, zero.
        out[16..24].copy_from_slice(&self.node_count.to_le_bytes());
        out[24..32].copy_from_slice(&self.entry_count.to_le_bytes());
        out[32..40].copy_from_slice(&self.nodes_off.to_le_bytes());
        out[40..48].copy_from_slice(&self.entries_off.to_le_bytes());
        out[48..56].copy_from_slice(&self.built_unix_ms.to_le_bytes());
        out[56..64].copy_from_slice(&self.source_generation.to_le_bytes());
        out[64..68].copy_from_slice(&self.nodes_crc.to_le_bytes());
        out[68..72].copy_from_slice(&self.entries_crc.to_le_bytes());
        let crc = crc32(&out[0..72]);
        out[72..76].copy_from_slice(&crc.to_le_bytes());
        out
    }

    pub(crate) fn parse(bytes: &[u8]) -> Result<Header, SnapError> {
        // Magic first: a short non-snapshot file is "not a snapshot",
        // not "a truncated one".
        if bytes.len() < 8 || bytes[0..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        if bytes.len() < HEADER_BYTES {
            return Err(SnapError::Truncated {
                need: HEADER_BYTES as u64,
                have: bytes.len() as u64,
            });
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4"));
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8"));
        let version = u32_at(8);
        if version != VERSION {
            return Err(SnapError::BadVersion(version));
        }
        let header = Header {
            node_count: u64_at(16),
            entry_count: u64_at(24),
            nodes_off: u64_at(32),
            entries_off: u64_at(40),
            built_unix_ms: u64_at(48),
            source_generation: u64_at(56),
            nodes_crc: u32_at(64),
            entries_crc: u32_at(68),
            header_crc: u32_at(72),
        };
        let computed = crc32(&bytes[0..72]);
        if computed != header.header_crc {
            return Err(SnapError::HeaderCrc {
                stored: header.header_crc,
                computed,
            });
        }
        Ok(header)
    }

    pub(crate) fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            built_unix_ms: self.built_unix_ms,
            source_generation: (self.source_generation != u64::MAX)
                .then_some(self.source_generation),
        }
    }
}

const fn align_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

/// Write a snapshot from raw node / entry record bytes, atomically:
/// `.tmp` sibling, fsync, rename. Called by
/// [`FrozenTrie::freeze_to_file`](crate::frozen::FrozenTrie::freeze_to_file).
pub(crate) fn write_snapshot(
    path: &Path,
    node_bytes: &[u8],
    entry_bytes: &[u8],
    meta: SnapshotMeta,
) -> Result<(), SnapError> {
    debug_assert_eq!(node_bytes.len() % RECORD_BYTES, 0);
    debug_assert_eq!(entry_bytes.len() % RECORD_BYTES, 0);
    let nodes_off = PAGE;
    let entries_off = align_up(nodes_off + node_bytes.len() as u64, PAGE);
    let header = Header {
        node_count: (node_bytes.len() / RECORD_BYTES) as u64,
        entry_count: (entry_bytes.len() / RECORD_BYTES) as u64,
        nodes_off,
        entries_off,
        built_unix_ms: meta.built_unix_ms,
        source_generation: meta.source_generation.unwrap_or(u64::MAX),
        nodes_crc: crc32(node_bytes),
        entries_crc: crc32(entry_bytes),
        header_crc: 0, // filled by render()
    };
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&header.render())?;
        f.seek(std::io::SeekFrom::Start(nodes_off))?;
        f.write_all(node_bytes)?;
        f.seek(std::io::SeekFrom::Start(entries_off))?;
        f.write_all(entry_bytes)?;
        // The entry section may be empty; make sure the file still spans
        // the full entries_off so bounds checks hold.
        let want = entries_off + entry_bytes.len() as u64;
        if f.metadata()?.len() < want {
            f.set_len(want)?;
        }
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Publish durability: fsync the directory so the rename survives a
    // crash (best-effort — some filesystems refuse O_RDONLY dir fsync).
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Memory mapping
// ---------------------------------------------------------------------

/// A read-only mapping of a whole snapshot file.
///
/// On unix this is a real `mmap(PROT_READ, MAP_SHARED)` — the FFI
/// declarations bind the libc the process is already linked against, no
/// crate needed — so every process serving the same snapshot shares one
/// page-cache copy and nothing is read until a lookup touches it.
/// Elsewhere (or if the map fails) the file is read into an 8-byte
/// aligned heap buffer: same bytes, same lifetime discipline, just not
/// shared or lazy.
#[derive(Debug)]
pub(crate) enum MapBuf {
    #[cfg(unix)]
    Mapped(Mmap),
    Heap(AlignedBuf),
}

impl MapBuf {
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            MapBuf::Mapped(m) => m.bytes(),
            MapBuf::Heap(b) => b.bytes(),
        }
    }

    /// Whether this is a true shared mapping (false: heap fallback).
    pub(crate) fn is_mmap(&self) -> bool {
        match self {
            #[cfg(unix)]
            MapBuf::Mapped(_) => true,
            MapBuf::Heap(_) => false,
        }
    }
}

/// A heap buffer whose storage is `u64`-aligned, so 16-byte records can
/// be reinterpreted at section offsets exactly like a page-aligned map.
#[derive(Debug)]
pub(crate) struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn read_from(f: &mut std::fs::File, len: usize) -> std::io::Result<AlignedBuf> {
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: u64 -> u8 reinterpretation of an owned, initialized
        // buffer; the byte view covers exactly the allocation.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        f.read_exact(bytes)?;
        Ok(AlignedBuf { words, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: same reinterpretation as in read_from.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

#[cfg(unix)]
mod mm {
    //! Minimal `mmap`/`munmap` FFI — the process already links libc.
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_SHARED: c_int = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// An owned `mmap(2)` region, unmapped on drop.
#[cfg(unix)]
pub(crate) struct Mmap {
    ptr: *mut std::os::raw::c_void,
    len: usize,
}

#[cfg(unix)]
impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap").field("len", &self.len).finish()
    }
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime;
// sharing &[u8] views across threads is sound.
#[cfg(unix)]
unsafe impl Send for Mmap {}
#[cfg(unix)]
unsafe impl Sync for Mmap {}

#[cfg(unix)]
impl Mmap {
    fn map(f: &std::fs::File, len: usize) -> Option<Mmap> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return None;
        }
        // SAFETY: len > 0, fd is a valid open file; a MAP_FAILED return
        // is checked below.
        let ptr = unsafe {
            mm::mmap(
                std::ptr::null_mut(),
                len,
                mm::PROT_READ,
                mm::MAP_SHARED,
                f.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return None;
        }
        Some(Mmap { ptr, len })
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: the region [ptr, ptr+len) stays mapped until drop.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

#[cfg(unix)]
impl Drop for Mmap {
    fn drop(&mut self) {
        // SAFETY: ptr/len are exactly what mmap returned.
        unsafe {
            mm::munmap(self.ptr, self.len);
        }
    }
}

/// A validated, mapped snapshot: the buffer plus parsed header. The
/// section accessors reinterpret the mapped bytes in place.
#[derive(Debug)]
pub(crate) struct MappedSnapshot {
    buf: MapBuf,
    header: Header,
}

impl MappedSnapshot {
    pub(crate) fn meta(&self) -> SnapshotMeta {
        self.header.meta()
    }

    pub(crate) fn file_len(&self) -> usize {
        self.buf.bytes().len()
    }

    pub(crate) fn is_mmap(&self) -> bool {
        self.buf.is_mmap()
    }

    pub(crate) fn node_bytes(&self) -> &[u8] {
        let off = self.header.nodes_off as usize;
        let len = self.header.node_count as usize * RECORD_BYTES;
        &self.buf.bytes()[off..off + len]
    }

    pub(crate) fn entry_bytes(&self) -> &[u8] {
        let off = self.header.entries_off as usize;
        let len = self.header.entry_count as usize * RECORD_BYTES;
        &self.buf.bytes()[off..off + len]
    }
}

/// Map `path` and validate the header: magic, version, header CRC, and
/// that both sections lie inside the file at aligned offsets. O(1) in
/// the snapshot size — section CRCs are NOT checked (see
/// [`open_verified`]).
pub(crate) fn open(path: &Path) -> Result<MappedSnapshot, SnapError> {
    let mut f = std::fs::File::open(path)?;
    let file_len = f.metadata()?.len();
    let buf = {
        #[cfg(unix)]
        {
            match Mmap::map(&f, file_len as usize) {
                Some(m) => MapBuf::Mapped(m),
                None => MapBuf::Heap(AlignedBuf::read_from(&mut f, file_len as usize)?),
            }
        }
        #[cfg(not(unix))]
        {
            MapBuf::Heap(AlignedBuf::read_from(&mut f, file_len as usize)?)
        }
    };
    let header = Header::parse(buf.bytes())?;
    let section_end = |off: u64, count: u64| -> Result<u64, SnapError> {
        let len = count
            .checked_mul(RECORD_BYTES as u64)
            .ok_or_else(|| SnapError::Malformed("section length overflows".into()))?;
        off.checked_add(len)
            .ok_or_else(|| SnapError::Malformed("section end overflows".into()))
    };
    let nodes_end = section_end(header.nodes_off, header.node_count)?;
    let entries_end = section_end(header.entries_off, header.entry_count)?;
    let need = nodes_end.max(entries_end);
    if need > file_len {
        return Err(SnapError::Truncated {
            need,
            have: file_len,
        });
    }
    if header.nodes_off % 8 != 0 || header.entries_off % 8 != 0 {
        return Err(SnapError::Malformed(
            "section offsets not 8-byte aligned".into(),
        ));
    }
    if header.nodes_off < HEADER_BYTES as u64 || nodes_end > header.entries_off {
        return Err(SnapError::Malformed(
            "sections overlap the header or each other".into(),
        ));
    }
    if header.node_count == 0 {
        return Err(SnapError::Malformed("zero nodes (no root)".into()));
    }
    Ok(MappedSnapshot { buf, header })
}

/// [`open`], plus full CRC verification of both sections — O(file size),
/// for tools and tests rather than the serving cold-start path.
pub(crate) fn open_verified(path: &Path) -> Result<MappedSnapshot, SnapError> {
    let snap = open(path)?;
    for (section, bytes, stored) in [
        ("nodes", snap.node_bytes(), snap.header.nodes_crc),
        ("entries", snap.entry_bytes(), snap.header.entries_crc),
    ] {
        let computed = crc32(bytes);
        if computed != stored {
            return Err(SnapError::SectionCrc {
                section,
                stored,
                computed,
            });
        }
    }
    Ok(snap)
}

/// Parse and fully verify a snapshot for `unclean snapshot inspect`.
pub fn inspect(path: &Path) -> Result<SnapshotInfo, SnapError> {
    let snap = open(path)?;
    let crc_ok = crc32(snap.node_bytes()) == snap.header.nodes_crc
        && crc32(snap.entry_bytes()) == snap.header.entries_crc;
    Ok(SnapshotInfo {
        version: VERSION,
        node_count: snap.header.node_count,
        entry_count: snap.header.entry_count,
        nodes_off: snap.header.nodes_off,
        entries_off: snap.header.entries_off,
        file_len: snap.file_len() as u64,
        meta: snap.meta(),
        nodes_crc: snap.header.nodes_crc,
        entries_crc: snap.header.entries_crc,
        header_crc: snap.header.header_crc,
        crc_ok,
    })
}

/// Sniff whether `path` looks like a snapshot (starts with the magic)
/// without reading the rest — how `unclean serve` decides between text
/// blocklist and binary snapshot sources.
pub fn is_snapshot(path: &Path) -> bool {
    let mut head = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut head))
        .map(|_| head == MAGIC)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // Same check value the v2 archive CRC asserts.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_roundtrip_and_crc() {
        let h = Header {
            node_count: 3,
            entry_count: 2,
            nodes_off: PAGE,
            entries_off: PAGE * 2,
            built_unix_ms: 1_754_700_000_123,
            source_generation: 41,
            nodes_crc: 0xDEAD_BEEF,
            entries_crc: 0xFEED_FACE,
            header_crc: 0,
        };
        let bytes = h.render();
        let parsed = Header::parse(&bytes).expect("parse");
        assert_eq!(parsed.node_count, 3);
        assert_eq!(parsed.entry_count, 2);
        assert_eq!(parsed.meta().source_generation, Some(41));

        // Flip one meta byte: the header CRC must catch it.
        let mut bad = bytes;
        bad[50] ^= 0x01;
        assert!(matches!(
            Header::parse(&bad),
            Err(SnapError::HeaderCrc { .. })
        ));

        // Wrong magic is a different, clearer error.
        let mut not_snap = bytes;
        not_snap[0] = b'X';
        assert!(matches!(Header::parse(&not_snap), Err(SnapError::BadMagic)));
    }

    #[test]
    fn align_up_is_page_math() {
        assert_eq!(align_up(0, PAGE), 0);
        assert_eq!(align_up(1, PAGE), PAGE);
        assert_eq!(align_up(PAGE, PAGE), PAGE);
        assert_eq!(align_up(PAGE + 1, PAGE), 2 * PAGE);
    }
}
