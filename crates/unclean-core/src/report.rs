//! Reports: tagged, classed, dated sets of IP addresses.
//!
//! §3.1: *"We call these sources reports, each of which consists of a set
//! of IP addresses describing a particular phenomenon over some period.
//! Reports differ by the class of data reported, the period covered by the
//! report, and the method used to generate that data."* Reports are either
//! **provided** (from external parties) or **observed** (generated from the
//! observed network's own traffic logs).

use crate::blocks::{BlockCounts, BlockSet};
use crate::cidr::Cidr;
use crate::error::Error;
use crate::ip::Ip;
use crate::ipset::IpSet;
use crate::time::DateRange;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of unclean phenomenon a report describes (§3.1), plus the two
/// auxiliary classes used in the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReportClass {
    /// Hosts running bot software or talking to a C&C host.
    Bots,
    /// Hosts serving phishing sites.
    Phishing,
    /// Hosts scanning the observed network.
    Scanning,
    /// Hosts spamming the observed network.
    Spamming,
    /// The control population (Table 1's `control`).
    Control,
    /// Derived/special reports (Table 2's `unclean` union and the
    /// candidate partition).
    Special,
}

impl ReportClass {
    /// Whether this class counts as *unclean* ground truth.
    pub fn is_unclean(&self) -> bool {
        matches!(
            self,
            ReportClass::Bots
                | ReportClass::Phishing
                | ReportClass::Scanning
                | ReportClass::Spamming
        )
    }
}

impl fmt::Display for ReportClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReportClass::Bots => "Bots",
            ReportClass::Phishing => "Phishing",
            ReportClass::Scanning => "Scanning",
            ReportClass::Spamming => "Spam",
            ReportClass::Control => "Control",
            ReportClass::Special => "Special",
        };
        f.write_str(s)
    }
}

/// Where a report came from (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Provenance {
    /// Collected from an external party.
    Provided,
    /// Generated from the observed network's traffic logs.
    Observed,
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Provenance::Provided => "Provided",
            Provenance::Observed => "Observed",
        })
    }
}

/// A report `R_tag`: a set of addresses describing one phenomenon over one
/// period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    tag: String,
    class: ReportClass,
    provenance: Provenance,
    period: DateRange,
    addresses: IpSet,
}

impl Report {
    /// Assemble a report.
    pub fn new(
        tag: impl Into<String>,
        class: ReportClass,
        provenance: Provenance,
        period: DateRange,
        addresses: IpSet,
    ) -> Report {
        Report {
            tag: tag.into(),
            class,
            provenance,
            period,
            addresses,
        }
    }

    /// The report tag (the subscript in the paper's `R_tag` notation).
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// The data class.
    pub fn class(&self) -> ReportClass {
        self.class
    }

    /// Provided or observed.
    pub fn provenance(&self) -> Provenance {
        self.provenance
    }

    /// Validity period.
    pub fn period(&self) -> DateRange {
        self.period
    }

    /// The address set.
    pub fn addresses(&self) -> &IpSet {
        &self.addresses
    }

    /// `|R|` — report cardinality.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// Whether the report holds no addresses.
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// §3.2's analysis filter: drop protocol-reserved addresses and
    /// addresses inside the observed network. Returns a new report with the
    /// same metadata and `-filtered` appended to the tag if anything was
    /// removed.
    pub fn filter_for_analysis(&self, observed_network: &[Cidr]) -> Report {
        let filtered = self
            .addresses
            .filter(|ip| !ip.is_reserved() && !observed_network.iter().any(|c| c.contains(ip)));
        let tag = if filtered.len() == self.addresses.len() {
            self.tag.clone()
        } else {
            format!("{}-filtered", self.tag)
        };
        Report {
            tag,
            class: self.class,
            provenance: self.provenance,
            period: self.period,
            addresses: filtered,
        }
    }

    /// Union with another report (Table 2's `R_unclean`, "the union of the
    /// four unclean reports, note that there is overlap"). The result is
    /// `Special`-classed and spans both periods.
    pub fn union(&self, other: &Report, tag: impl Into<String>) -> Report {
        let period = DateRange::new(
            self.period.start.min(other.period.start),
            self.period.end.max(other.period.end),
        );
        Report {
            tag: tag.into(),
            class: ReportClass::Special,
            provenance: Provenance::Provided,
            period,
            addresses: self.addresses.union(&other.addresses),
        }
    }

    /// `C_n(R)` as a materialized block set.
    pub fn blocks(&self, n: u8) -> BlockSet {
        BlockSet::of(&self.addresses, n)
    }

    /// Distinct-block counts for every prefix length.
    pub fn block_counts(&self) -> BlockCounts {
        BlockCounts::of(&self.addresses)
    }

    /// A random equal-metadata sub-report of `k` addresses (for building
    /// test reports like the paper's 2302-address `phish` sub-report).
    pub fn sample(
        &self,
        rng: &mut impl rand::RngCore,
        k: usize,
        tag: impl Into<String>,
    ) -> Result<Report, Error> {
        Ok(Report {
            tag: tag.into(),
            class: self.class,
            provenance: self.provenance,
            period: self.period,
            addresses: self.addresses.sample(rng, k)?,
        })
    }

    /// Membership test for one address.
    pub fn contains(&self, ip: Ip) -> bool {
        self.addresses.contains(ip)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R_{} [{} | {} | {} | {} addresses]",
            self.tag,
            self.provenance,
            self.class,
            self.period,
            self.len()
        )
    }
}

/// Union of many unclean reports into one `Special` report — Table 2's
/// `R_unclean`. Panics on an empty input slice.
pub fn union_reports(reports: &[&Report], tag: impl Into<String>) -> Report {
    assert!(!reports.is_empty(), "cannot union zero reports");
    let mut acc = reports[0].clone();
    for r in &reports[1..] {
        acc = acc.union(r, "tmp");
    }
    Report {
        tag: tag.into(),
        ..acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Day;
    use unclean_stats::SeedTree;

    fn period() -> DateRange {
        DateRange::new(
            "2006-10-01".parse().expect("ok"),
            "2006-10-14".parse().expect("ok"),
        )
    }

    fn report(tag: &str, addrs: &[&str]) -> Report {
        Report::new(
            tag,
            ReportClass::Bots,
            Provenance::Provided,
            period(),
            IpSet::from_ips(addrs.iter().map(|s| s.parse::<Ip>().expect("valid"))),
        )
    }

    #[test]
    fn accessors() {
        let r = report("bot", &["8.8.8.8", "9.9.9.9"]);
        assert_eq!(r.tag(), "bot");
        assert_eq!(r.class(), ReportClass::Bots);
        assert_eq!(r.provenance(), Provenance::Provided);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.contains("8.8.8.8".parse().expect("ok")));
        assert_eq!(r.period().len_days(), 14);
    }

    #[test]
    fn display_matches_paper_notation() {
        let r = report("bot", &["8.8.8.8"]);
        let s = r.to_string();
        assert!(s.starts_with("R_bot"), "{s}");
        assert!(s.contains("Provided"), "{s}");
        assert!(s.contains("1 addresses"), "{s}");
    }

    #[test]
    fn class_uncleanliness() {
        assert!(ReportClass::Bots.is_unclean());
        assert!(ReportClass::Phishing.is_unclean());
        assert!(ReportClass::Scanning.is_unclean());
        assert!(ReportClass::Spamming.is_unclean());
        assert!(!ReportClass::Control.is_unclean());
        assert!(!ReportClass::Special.is_unclean());
    }

    #[test]
    fn filter_removes_reserved_and_observed() {
        let r = report(
            "bot",
            &[
                "8.8.8.8",
                "10.0.0.1",
                "192.168.1.1",
                "66.35.250.150",
                "66.35.251.1",
            ],
        );
        let observed = vec!["66.35.250.0/24".parse::<Cidr>().expect("ok")];
        let f = r.filter_for_analysis(&observed);
        assert_eq!(f.len(), 2); // 8.8.8.8 and 66.35.251.1 survive
        assert_eq!(f.tag(), "bot-filtered");
        assert!(!f.contains("10.0.0.1".parse().expect("ok")));
        assert!(!f.contains("66.35.250.150".parse().expect("ok")));
        assert!(f.contains("66.35.251.1".parse().expect("ok")));
        // No-op filtering keeps the tag.
        let clean = report("bot", &["8.8.8.8"]);
        assert_eq!(clean.filter_for_analysis(&observed).tag(), "bot");
    }

    #[test]
    fn union_merges_addresses_and_periods() {
        let a = Report::new(
            "a",
            ReportClass::Bots,
            Provenance::Provided,
            DateRange::new(Day(0), Day(10)),
            IpSet::from_raw(vec![1, 2]),
        );
        let b = Report::new(
            "b",
            ReportClass::Spamming,
            Provenance::Observed,
            DateRange::new(Day(5), Day(20)),
            IpSet::from_raw(vec![2, 3]),
        );
        let u = a.union(&b, "unclean");
        assert_eq!(u.tag(), "unclean");
        assert_eq!(u.class(), ReportClass::Special);
        assert_eq!(u.len(), 3);
        assert_eq!(u.period(), DateRange::new(Day(0), Day(20)));
    }

    #[test]
    fn union_reports_many() {
        let a = report("a", &["1.1.1.1"]);
        let b = report("b", &["2.2.2.2"]);
        let c = report("c", &["1.1.1.1", "3.3.3.3"]);
        let u = union_reports(&[&a, &b, &c], "unclean");
        assert_eq!(u.len(), 3);
        assert_eq!(u.tag(), "unclean");
    }

    #[test]
    #[should_panic(expected = "zero reports")]
    fn union_reports_empty_panics() {
        let _ = union_reports(&[], "x");
    }

    #[test]
    fn blocks_and_counts_agree() {
        let r = report("bot", &["10.1.2.3", "10.1.2.4", "10.2.0.1"]);
        assert_eq!(r.blocks(24).len() as u64, r.block_counts().at(24));
        assert_eq!(r.blocks(24).len(), 2);
    }

    #[test]
    fn sample_preserves_metadata() {
        let r = report("phish", &["1.1.1.1", "2.2.2.2", "3.3.3.3"]);
        let mut rng = SeedTree::new(4).stream("s");
        let sub = r.sample(&mut rng, 2, "phish-test").expect("k <= n");
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.tag(), "phish-test");
        assert_eq!(sub.class(), ReportClass::Bots);
        assert!(sub.addresses().iter().all(|ip| r.contains(ip)));
        assert!(r.sample(&mut rng, 99, "x").is_err());
    }
}
