//! Spatial uncleanliness analysis (§4).
//!
//! The hypothesis (Eq. 3): for a report of unclean traffic and a control
//! group of equal cardinality,
//!
//! ```text
//! ∀ n ∈ [16, 32]   |C_n(R_unclean)| ≤ |C_n(R_normal)|
//! ```
//!
//! [`DensityAnalysis`] draws the control ensemble (1000 random subsets of
//! the control report, per the paper), computes per-prefix-length block
//! counts for the observed report and every trial, and evaluates the
//! hypothesis both strictly (against the ensemble minimum) and at the 95%
//! level used elsewhere in the paper.

use crate::blocks::BlockCounts;
use crate::ipset::IpSet;
use crate::report::Report;
use crate::sampling::{naive_sample_counting, Estimator, SampleTelemetry};
use serde::{Deserialize, Serialize};
use unclean_stats::{Ensemble, EnsembleBuilder, FiveNumber, SeedTree};
use unclean_telemetry::Registry;

/// An inclusive range of CIDR prefix lengths, `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixRange {
    /// Shortest prefix length (coarsest blocks).
    pub lo: u8,
    /// Longest prefix length (finest blocks).
    pub hi: u8,
}

impl PrefixRange {
    /// The paper's analysis range: "we limit our block sizes to between 16
    /// and 32 bits" (§4.1, following Collins & Reiter's finding that
    /// prefixes above 16 bits are too imprecise for filtering).
    pub const PAPER: PrefixRange = PrefixRange { lo: 16, hi: 32 };

    /// The §6 blocking range: "n ∈ [24, 32]".
    pub const BLOCKING: PrefixRange = PrefixRange { lo: 24, hi: 32 };

    /// Construct; panics on an inverted or out-of-bounds range.
    pub fn new(lo: u8, hi: u8) -> PrefixRange {
        assert!(lo <= hi && hi <= 32, "bad prefix range [{lo}, {hi}]");
        PrefixRange { lo, hi }
    }

    /// The prefix lengths as an x-axis vector.
    pub fn xs(&self) -> Vec<u32> {
        (self.lo..=self.hi).map(u32::from).collect()
    }

    /// Number of prefix lengths covered.
    pub fn len(&self) -> usize {
        (self.hi - self.lo + 1) as usize
    }

    /// Whether the range covers no lengths (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The block-count curve of one address set over a prefix range.
pub fn density_curve(set: &IpSet, range: PrefixRange) -> Vec<u64> {
    BlockCounts::of(set).over(range.lo, range.hi)
}

/// Configuration for a spatial density analysis.
#[derive(Debug, Clone, Copy)]
pub struct DensityConfig {
    /// Prefix lengths analyzed. The paper uses [16, 32].
    pub range: PrefixRange,
    /// Control ensemble size. The paper uses 1000.
    pub trials: usize,
    /// Decision threshold for the per-n comparison (0.95 in the paper).
    pub threshold: f64,
    /// How reference populations are drawn.
    pub estimator: Estimator,
    /// Ensemble worker threads (0 = one per core). Results are identical
    /// at any thread count.
    pub threads: usize,
}

impl Default for DensityConfig {
    fn default() -> DensityConfig {
        DensityConfig {
            range: PrefixRange::PAPER,
            trials: 1000,
            threshold: 0.95,
            estimator: Estimator::Empirical,
            threads: 0,
        }
    }
}

/// Result of a spatial uncleanliness test for one unclean report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DensityResult {
    /// Tag of the report analyzed.
    pub tag: String,
    /// Report cardinality (the control samples match it).
    pub cardinality: usize,
    /// Prefix lengths (x-axis).
    pub xs: Vec<u32>,
    /// Observed `|C_n(R_unclean)|` per prefix length.
    pub observed: Vec<u64>,
    /// Control-sample block counts per prefix length.
    pub control: Ensemble,
    /// Boxplot summaries of the control distribution per prefix length.
    pub control_boxes: Vec<(u32, FiveNumber)>,
    /// Per-n fraction of control trials with at least as many blocks as
    /// observed (evidence the unclean report is at least as dense).
    pub support: Vec<f64>,
    /// Per-n fraction of control trials with *strictly more* blocks than
    /// observed (evidence the unclean report is strictly denser).
    pub denser: Vec<f64>,
    /// Decision threshold used.
    pub threshold: f64,
}

impl DensityResult {
    /// Eq. 3 at the configured threshold, read as a statistical statement:
    /// the report is never *significantly sparser* than control at any
    /// prefix length (control almost never undershoots it), and it is
    /// *significantly denser* at at least one prefix length. The second
    /// clause keeps the test from passing vacuously in the long-prefix
    /// regime where both curves degenerate to all-singletons and only ties
    /// remain.
    pub fn hypothesis_holds(&self) -> bool {
        let never_sparser = self.support.iter().all(|&f| f > 1.0 - self.threshold);
        let somewhere_denser = self.denser.iter().any(|&f| f >= self.threshold);
        never_sparser && somewhere_denser
    }

    /// Strict version: the observed count never exceeds even the sparsest
    /// control trial.
    pub fn hypothesis_holds_strict(&self) -> bool {
        self.observed
            .iter()
            .zip(&self.control_boxes)
            .all(|(&obs, (_, five))| (obs as f64) <= five.min)
    }

    /// Density ratio per prefix length: control median / observed
    /// (≥ 1 means the unclean report is denser). Infinite when observed
    /// is 0 and control positive.
    pub fn density_ratio(&self) -> Vec<f64> {
        self.observed
            .iter()
            .zip(&self.control_boxes)
            .map(|(&obs, (_, five))| {
                if obs == 0 {
                    if five.median > 0.0 {
                        f64::INFINITY
                    } else {
                        1.0
                    }
                } else {
                    five.median / obs as f64
                }
            })
            .collect()
    }
}

/// The spatial uncleanliness analysis driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct DensityAnalysis {
    /// Analysis configuration.
    pub config: DensityConfig,
}

impl DensityAnalysis {
    /// A driver with the paper's defaults.
    pub fn paper() -> DensityAnalysis {
        DensityAnalysis {
            config: DensityConfig::default(),
        }
    }

    /// With a custom configuration.
    pub fn with_config(config: DensityConfig) -> DensityAnalysis {
        DensityAnalysis { config }
    }

    /// Run the analysis: compare `unclean` against `trials` random
    /// control samples of equal cardinality.
    ///
    /// `allocated_slash8s` is only consulted by the naive estimator; pass
    /// the IANA table from the netmodel crate (or an empty slice when using
    /// the empirical estimator).
    pub fn run(
        &self,
        unclean: &Report,
        control: &IpSet,
        allocated_slash8s: &[u8],
        seeds: &SeedTree,
    ) -> DensityResult {
        self.run_recorded(unclean, control, allocated_slash8s, seeds, &Registry::off())
    }

    /// [`DensityAnalysis::run`] with telemetry: the whole analysis runs
    /// under a `density` span (tagged with the report analyzed), each
    /// completed trial bumps `core.density.trials`, and sampling inside
    /// the ensemble counts `core.sampling.draws`/`core.sampling.redraws`.
    pub fn run_recorded(
        &self,
        unclean: &Report,
        control: &IpSet,
        allocated_slash8s: &[u8],
        seeds: &SeedTree,
        registry: &Registry,
    ) -> DensityResult {
        let mut span = registry.span("density");
        span.field("report", unclean.tag());
        let cfg = &self.config;
        let k = unclean.len();
        assert!(k > 0, "cannot analyze an empty report");
        let xs = cfg.range.xs();
        let observed = density_curve(unclean.addresses(), cfg.range);

        let estimator = cfg.estimator;
        let range = cfg.range;
        let sample_telemetry = SampleTelemetry::in_registry(registry);
        let ensemble = EnsembleBuilder::new(xs.clone(), cfg.trials)
            .threads(cfg.threads)
            .count_into(registry.counter("core.density.trials"))
            .run(
                &seeds.child("density").child(unclean.tag()),
                move |_idx, rng, _xs| {
                    let sample = match estimator {
                        Estimator::Empirical => {
                            let s = control
                                .sample(rng, k)
                                .expect("control is larger than any unclean report");
                            sample_telemetry.count_draws(k);
                            s
                        }
                        Estimator::Naive => {
                            naive_sample_counting(allocated_slash8s, k, rng, &sample_telemetry)
                                .expect("allocated space exceeds any report size")
                        }
                    };
                    density_curve(&sample, range)
                        .into_iter()
                        .map(|c| c as f64)
                        .collect()
                },
            );

        let support: Vec<f64> = observed
            .iter()
            .enumerate()
            .map(|(i, &obs)| {
                // Fraction of trials with count >= observed.
                1.0 - ensemble.fraction_below(i, obs as f64)
            })
            .collect();
        let denser: Vec<f64> = observed
            .iter()
            .enumerate()
            .map(|(i, &obs)| ensemble.fraction_above(i, obs as f64))
            .collect();
        let control_boxes = ensemble.five_numbers();
        DensityResult {
            tag: unclean.tag().to_string(),
            cardinality: k,
            xs,
            observed,
            control: ensemble,
            control_boxes,
            support,
            denser,
            threshold: cfg.threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Provenance, Report, ReportClass};
    use crate::time::{DateRange, Day};

    fn mk_report(tag: &str, addrs: Vec<u32>) -> Report {
        Report::new(
            tag,
            ReportClass::Bots,
            Provenance::Provided,
            DateRange::new(Day(0), Day(13)),
            IpSet::from_raw(addrs),
        )
    }

    /// A spread-out control population: hosts scattered over many /16s.
    fn scattered_control() -> IpSet {
        let mut raw = Vec::new();
        for i in 0..60_000u32 {
            // Spread over 240 /16s within 4.0.0.0/8 .. 63.x, ~4 hosts per /24.
            let net = i % 15_000;
            let host = (i / 15_000) * 61 % 256;
            raw.push((4 << 24) | (net << 8) | host);
        }
        IpSet::from_raw(raw)
    }

    /// A clustered "unclean" set: the same cardinality budget packed into
    /// a handful of /24s.
    fn clustered_report(k: usize) -> Report {
        let mut raw = Vec::new();
        let mut i = 0u32;
        'outer: for block in 0..1024u32 {
            for host in 0..200u32 {
                raw.push((9 << 24) | (block << 8) | host);
                i += 1;
                if i as usize >= k {
                    break 'outer;
                }
            }
        }
        mk_report("bot", raw)
    }

    #[test]
    fn prefix_range_helpers() {
        let r = PrefixRange::PAPER;
        assert_eq!(r.lo, 16);
        assert_eq!(r.hi, 32);
        assert_eq!(r.len(), 17);
        assert_eq!(r.xs().len(), 17);
        assert_eq!(r.xs()[0], 16);
        assert_eq!(*r.xs().last().expect("non-empty"), 32);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "bad prefix range")]
    fn prefix_range_validates() {
        let _ = PrefixRange::new(20, 16);
    }

    #[test]
    fn density_curve_matches_block_counts() {
        let s = IpSet::from_raw(vec![0x0a000001, 0x0a000002, 0x0b000001]);
        let curve = density_curve(&s, PrefixRange::new(8, 8));
        assert_eq!(curve, vec![2]);
    }

    #[test]
    fn clustered_report_supports_hypothesis() {
        let control = scattered_control();
        let unclean = clustered_report(2000);
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 50,
            ..DensityConfig::default()
        });
        let res = analysis.run(&unclean, &control, &[], &SeedTree::new(42));
        assert!(res.hypothesis_holds(), "support = {:?}", res.support);
        assert!(res.hypothesis_holds_strict());
        // Density ratio should exceed 1 at /24 (clustered ≫ scattered).
        let idx24 = res.xs.iter().position(|&x| x == 24).expect("24 in range");
        assert!(res.density_ratio()[idx24] > 2.0);
        assert_eq!(res.cardinality, 2000);
        assert_eq!(res.tag, "bot");
    }

    #[test]
    fn control_sample_against_itself_is_indistinguishable() {
        // A random subset of control tested against control should NOT
        // show (strict) spatial uncleanliness.
        let control = scattered_control();
        let mut rng = SeedTree::new(7).stream("sub");
        let sub = control.sample(&mut rng, 2000).expect("ok");
        let fake = mk_report("fake", sub.as_raw().to_vec());
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 50,
            ..DensityConfig::default()
        });
        let res = analysis.run(&fake, &control, &[], &SeedTree::new(43));
        assert!(
            !res.hypothesis_holds(),
            "a control subset must not look unclean: support = {:?}",
            res.support
        );
    }

    #[test]
    fn observed_curve_is_monotone() {
        let control = scattered_control();
        let unclean = clustered_report(500);
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 10,
            ..DensityConfig::default()
        });
        let res = analysis.run(&unclean, &control, &[], &SeedTree::new(1));
        assert!(res.observed.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*res.observed.last().expect("non-empty"), 500);
    }

    #[test]
    fn naive_estimator_runs() {
        let control = scattered_control();
        let unclean = clustered_report(300);
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 5,
            estimator: Estimator::Naive,
            ..DensityConfig::default()
        });
        let res = analysis.run(&unclean, &control, &[4, 9, 11], &SeedTree::new(2));
        // Naive sampling of 300 addrs over 3 /8s virtually never collides
        // at /24, so control counts sit near 300 at every n.
        let idx24 = res.xs.iter().position(|&x| x == 24).expect("in range");
        assert!(res.control_boxes[idx24].1.median > 290.0);
        assert!(res.hypothesis_holds());
    }

    #[test]
    #[should_panic(expected = "empty report")]
    fn empty_report_panics() {
        let control = scattered_control();
        let empty = mk_report("none", vec![]);
        DensityAnalysis::paper().run(&empty, &control, &[], &SeedTree::new(1));
    }

    #[test]
    fn recorded_run_matches_and_records() {
        let control = scattered_control();
        let unclean = clustered_report(400);
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 8,
            ..DensityConfig::default()
        });
        let registry = Registry::full();
        let recorded = analysis.run_recorded(&unclean, &control, &[], &SeedTree::new(5), &registry);
        let plain = analysis.run(&unclean, &control, &[], &SeedTree::new(5));
        assert_eq!(recorded.control, plain.control, "telemetry changes nothing");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["core.density.trials"], 8);
        assert_eq!(snap.counters["core.sampling.draws"], 8 * 400);
        assert_eq!(snap.spans["density"].count, 1);
        assert_eq!(snap.spans["density"].fields["report"], "bot");
    }

    #[test]
    fn deterministic_across_runs() {
        let control = scattered_control();
        let unclean = clustered_report(400);
        let analysis = DensityAnalysis::with_config(DensityConfig {
            trials: 8,
            ..DensityConfig::default()
        });
        let a = analysis.run(&unclean, &control, &[], &SeedTree::new(5));
        let b = analysis.run(&unclean, &control, &[], &SeedTree::new(5));
        assert_eq!(a.control, b.control);
        assert_eq!(a.support, b.support);
    }
}
