//! Temporal uncleanliness analysis (§5).
//!
//! The hypothesis (Eq. 5): given equal-cardinality past reports, there
//! exists a prefix length n ∈ [16, 32] where
//!
//! ```text
//! |C_n(R_unclean-past) ∩ C_n(R_unclean-present)| >
//! |C_n(R_normal-past)  ∩ C_n(R_unclean-present)|
//! ```
//!
//! with the decision rule that the past unclean report must beat the
//! random draw in ≥95% of 1000 trials. [`TemporalAnalysis`] computes the
//! observed intersection curve, the control ensemble, the per-n verdicts,
//! the predictive band, and the crossover the paper highlights (random
//! addresses win at short prefixes because of spatial uncleanliness —
//! the control sample covers more blocks, so coarse blocks give it many
//! imprecise successes).

use crate::blocks::shared_block_counts;
use crate::density::PrefixRange;
use crate::ipset::IpSet;
use crate::report::Report;
use serde::{Deserialize, Serialize};
use unclean_stats::{Ensemble, EnsembleBuilder, ExceedanceTest, SeedTree, Verdict};
use unclean_telemetry::Registry;

/// `|C_n(past) ∩ C_n(present)|` for each prefix length in `range` — one
/// sweep over the sorted /32s for all prefix lengths together
/// ([`shared_block_counts`]).
pub fn prediction_curve(past: &IpSet, present: &IpSet, range: PrefixRange) -> Vec<u64> {
    shared_block_counts(past, present, range.lo, range.hi)
}

/// Configuration for a temporal uncleanliness analysis.
#[derive(Debug, Clone, Copy)]
pub struct TemporalConfig {
    /// Prefix lengths analyzed (the paper: [16, 32]).
    pub range: PrefixRange,
    /// Control ensemble size (the paper: 1000).
    pub trials: usize,
    /// The "better predictor" threshold (the paper: 0.95).
    pub threshold: f64,
    /// Ensemble worker threads (0 = one per core). Results are identical
    /// at any thread count.
    pub threads: usize,
}

impl Default for TemporalConfig {
    fn default() -> TemporalConfig {
        TemporalConfig {
            range: PrefixRange::PAPER,
            trials: 1000,
            threshold: 0.95,
            threads: 0,
        }
    }
}

/// Result of testing one past report's ability to predict one present
/// report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TemporalResult {
    /// Tag of the past (predictor) report.
    pub past_tag: String,
    /// Tag of the present (predicted) report.
    pub present_tag: String,
    /// Cardinality of the past report (control samples match it).
    pub past_cardinality: usize,
    /// Prefix lengths (x-axis).
    pub xs: Vec<u32>,
    /// Observed `|C_n(past) ∩ C_n(present)|`.
    pub observed: Vec<u64>,
    /// Control intersections per prefix length.
    pub control: Ensemble,
    /// The exceedance test at the configured threshold.
    pub test: ExceedanceTest,
}

impl TemporalResult {
    /// Eq. 5: does *any* prefix length make the past unclean report a
    /// better predictor than random?
    pub fn hypothesis_holds(&self) -> bool {
        self.test.any_better()
    }

    /// The contiguous band of prefix lengths where the past report wins
    /// (the paper reports e.g. "between 20 and 25 bits" for bots).
    pub fn predictive_band(&self) -> Option<(u32, u32)> {
        self.test.better_band()
    }

    /// The shortest prefix length at which the past report wins. Below
    /// this, spatial clustering hands the advantage to the control sample.
    pub fn crossover(&self) -> Option<u32> {
        self.test.better_xs().into_iter().min()
    }

    /// Per-prefix verdicts, aligned with `xs`.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.test.verdicts
    }
}

/// The temporal uncleanliness analysis driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemporalAnalysis {
    /// Analysis configuration.
    pub config: TemporalConfig,
}

impl TemporalAnalysis {
    /// Driver with the paper's defaults (1000 trials, 95%, n ∈ [16, 32]).
    pub fn paper() -> TemporalAnalysis {
        TemporalAnalysis {
            config: TemporalConfig::default(),
        }
    }

    /// Driver with a custom configuration.
    pub fn with_config(config: TemporalConfig) -> TemporalAnalysis {
        TemporalAnalysis { config }
    }

    /// Test whether `past` predicts `present` better than random samples
    /// of `control` with `|past|` addresses.
    pub fn run(
        &self,
        past: &Report,
        present: &Report,
        control: &IpSet,
        seeds: &SeedTree,
    ) -> TemporalResult {
        self.run_recorded(past, present, control, seeds, &Registry::off())
    }

    /// [`TemporalAnalysis::run`] with telemetry: the analysis runs under a
    /// `temporal` span tagged `past→present`, and every completed ensemble
    /// trial bumps `core.temporal.trials`.
    pub fn run_recorded(
        &self,
        past: &Report,
        present: &Report,
        control: &IpSet,
        seeds: &SeedTree,
        registry: &Registry,
    ) -> TemporalResult {
        let mut span = registry.span("temporal");
        span.field("past", past.tag());
        span.field("present", present.tag());
        let cfg = &self.config;
        let k = past.len();
        assert!(k > 0, "cannot analyze an empty past report");
        assert!(
            !present.is_empty(),
            "cannot analyze an empty present report"
        );
        let xs = cfg.range.xs();
        let observed = prediction_curve(past.addresses(), present.addresses(), cfg.range);

        let range = cfg.range;
        let present_addrs = present.addresses();
        let ensemble = EnsembleBuilder::new(xs.clone(), cfg.trials)
            .threads(cfg.threads)
            .count_into(registry.counter("core.temporal.trials"))
            .run(
                &seeds
                    .child("temporal")
                    .child(past.tag())
                    .child(present.tag()),
                move |_idx, rng, _xs| {
                    let sample = control
                        .sample(rng, k)
                        .expect("control outnumbers any past report");
                    shared_block_counts(&sample, present_addrs, range.lo, range.hi)
                        .into_iter()
                        .map(|c| c as f64)
                        .collect()
                },
            );

        let observed_f: Vec<f64> = observed.iter().map(|&v| v as f64).collect();
        let test = ExceedanceTest::run(&ensemble, &observed_f, cfg.threshold);
        TemporalResult {
            past_tag: past.tag().to_string(),
            present_tag: present.tag().to_string(),
            past_cardinality: k,
            xs,
            observed,
            control: ensemble,
            test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Provenance, Report, ReportClass};
    use crate::time::{DateRange, Day};

    fn mk_report(tag: &str, addrs: Vec<u32>) -> Report {
        Report::new(
            tag,
            ReportClass::Bots,
            Provenance::Provided,
            DateRange::new(Day(0), Day(13)),
            IpSet::from_raw(addrs),
        )
    }

    fn addr(s8: u32, b2: u32, b3: u32, b4: u32) -> u32 {
        (s8 << 24) | (b2 << 16) | (b3 << 8) | b4
    }

    /// Control: 50k hosts spread across /16s in 4.0.0.0/8.
    fn control() -> IpSet {
        let mut raw = Vec::new();
        for i in 0..50_000u32 {
            raw.push(addr(4, i % 200, i / 200 % 250, i / 50_000 + 7));
        }
        IpSet::from_raw(raw)
    }

    /// "Unclean networks": /24s 9.x.y for small x, y.
    fn unclean_past() -> Report {
        let mut raw = Vec::new();
        for net in 0..20u32 {
            for host in 0..10u32 {
                raw.push(addr(9, net, net, host));
            }
        }
        mk_report("bot-test", raw)
    }

    /// Present report: different hosts in the SAME /24s plus noise blocks.
    fn unclean_present() -> Report {
        let mut raw = Vec::new();
        for net in 0..20u32 {
            for host in 100..130u32 {
                raw.push(addr(9, net, net, host));
            }
        }
        // Noise elsewhere in address space.
        for i in 0..400u32 {
            raw.push(addr(60, i % 250, (i * 7) % 250, 9));
        }
        mk_report("bot", raw)
    }

    #[test]
    fn prediction_curve_counts_shared_blocks() {
        let past = IpSet::from_raw(vec![addr(9, 1, 1, 5), addr(9, 2, 2, 5)]);
        let present = IpSet::from_raw(vec![addr(9, 1, 1, 200), addr(10, 0, 0, 1)]);
        let curve = prediction_curve(&past, &present, PrefixRange::new(24, 32));
        assert_eq!(curve[0], 1); // shares 9.1.1/24
        assert_eq!(curve[8], 0); // no exact /32 match
    }

    #[test]
    fn prediction_curve_is_self_consistent_at_32() {
        let past = IpSet::from_raw(vec![1, 2, 3]);
        let curve = prediction_curve(&past, &past, PrefixRange::new(32, 32));
        assert_eq!(curve, vec![3]);
    }

    #[test]
    fn unclean_past_predicts_unclean_present() {
        let analysis = TemporalAnalysis::with_config(TemporalConfig {
            trials: 60,
            ..TemporalConfig::default()
        });
        let res = analysis.run(
            &unclean_past(),
            &unclean_present(),
            &control(),
            &SeedTree::new(1),
        );
        assert!(res.hypothesis_holds(), "verdicts: {:?}", res.verdicts());
        let band = res.predictive_band().expect("band exists");
        assert!(band.0 >= 16 && band.1 <= 32);
        // The /24 blocks coincide exactly, so 24 must be inside the band.
        assert!(
            band.0 <= 24 && 24 <= band.1,
            "band {band:?} should include 24"
        );
        assert_eq!(res.past_tag, "bot-test");
        assert_eq!(res.present_tag, "bot");
    }

    #[test]
    fn recorded_run_matches_and_counts_trials() {
        let analysis = TemporalAnalysis::with_config(TemporalConfig {
            trials: 12,
            ..TemporalConfig::default()
        });
        let registry = Registry::full();
        let recorded = analysis.run_recorded(
            &unclean_past(),
            &unclean_present(),
            &control(),
            &SeedTree::new(1),
            &registry,
        );
        let plain = analysis.run(
            &unclean_past(),
            &unclean_present(),
            &control(),
            &SeedTree::new(1),
        );
        assert_eq!(recorded.control, plain.control, "telemetry changes nothing");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["core.temporal.trials"], 12);
        let span = &snap.spans["temporal"];
        assert_eq!(span.count, 1);
        assert_eq!(span.fields["past"], "bot-test");
        assert_eq!(span.fields["present"], "bot");
    }

    #[test]
    fn random_past_does_not_predict() {
        // A past report drawn from the control population itself must not
        // be a "better" predictor.
        let c = control();
        let mut rng = SeedTree::new(2).stream("r");
        let sample = c.sample(&mut rng, 200).expect("ok");
        let fake_past = mk_report("random", sample.as_raw().to_vec());
        let analysis = TemporalAnalysis::with_config(TemporalConfig {
            trials: 60,
            ..TemporalConfig::default()
        });
        let res = analysis.run(&fake_past, &unclean_present(), &c, &SeedTree::new(3));
        // "Better in ≥95% of trials" should fail essentially everywhere.
        let better = res.test.better_xs();
        assert!(
            better.len() <= 1,
            "random past should rarely if ever win: {better:?}"
        );
    }

    #[test]
    fn disjoint_present_is_equally_unpredictable() {
        // Present activity in blocks the past report never touched: the
        // observed intersection is 0 everywhere, so the past report can
        // never be better.
        let present = mk_report(
            "phish",
            (0..300u32).map(|i| addr(77, i % 200, i % 250, 1)).collect(),
        );
        let analysis = TemporalAnalysis::with_config(TemporalConfig {
            trials: 40,
            ..TemporalConfig::default()
        });
        let res = analysis.run(&unclean_past(), &present, &control(), &SeedTree::new(4));
        assert!(!res.hypothesis_holds());
        assert!(res.observed.iter().all(|&v| v == 0));
        assert!(res.crossover().is_none());
        assert!(res.predictive_band().is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let analysis = TemporalAnalysis::with_config(TemporalConfig {
            trials: 12,
            ..TemporalConfig::default()
        });
        let a = analysis.run(
            &unclean_past(),
            &unclean_present(),
            &control(),
            &SeedTree::new(9),
        );
        let b = analysis.run(
            &unclean_past(),
            &unclean_present(),
            &control(),
            &SeedTree::new(9),
        );
        assert_eq!(a.control, b.control);
        assert_eq!(a.test.verdicts, b.test.verdicts);
    }

    #[test]
    #[should_panic(expected = "empty past report")]
    fn empty_past_panics() {
        let empty = mk_report("none", vec![]);
        TemporalAnalysis::paper().run(&empty, &unclean_present(), &control(), &SeedTree::new(1));
    }

    #[test]
    #[should_panic(expected = "empty present report")]
    fn empty_present_panics() {
        let empty = mk_report("none", vec![]);
        TemporalAnalysis::paper().run(&unclean_past(), &empty, &control(), &SeedTree::new(1));
    }
}
