//! Control-population estimators (§4.2).
//!
//! *"Kohler et al. observe that IP addresses are not evenly distributed
//! across IPv4 space; as a consequence, a purely random model will result
//! in an artificially depressed density estimate. We test two population
//! estimates to compensate for this. The first, naive, estimate selects
//! addresses evenly from across all /8's which are listed as populated by
//! IANA. The second, empirical, estimate draws addresses from R_control."*

use crate::error::Error;
use crate::ipset::IpSet;
use rand::{Rng, RngCore};
use unclean_telemetry::{Counter, Registry};

/// How the reference population for a density comparison is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Estimator {
    /// Uniform over the IANA-allocated /8s (the paper's *naive* estimate).
    Naive,
    /// Random subsets of the control report (the paper's *empirical*
    /// estimate, used "throughout the rest of this paper").
    Empirical,
}

/// Draw `k` distinct addresses uniformly from the given /8s.
///
/// This is the naive estimator: it reproduces the paper's observation that
/// uniform selection wildly over-estimates block counts, because it ignores
/// the clustering of real hosts. Collisions are re-drawn, which is cheap
/// because `k` is always tiny compared to the sampled space.
pub fn naive_sample(
    allocated_slash8s: &[u8],
    k: usize,
    rng: &mut impl RngCore,
) -> Result<IpSet, Error> {
    naive_sample_counting(allocated_slash8s, k, rng, &SampleTelemetry::off())
}

/// Per-trial sampling counters, resolved once and reused across trials
/// (sampling runs inside the 1000-trial ensembles, so the registry map is
/// only touched at construction).
#[derive(Debug, Clone, Default)]
pub struct SampleTelemetry {
    draws: Counter,
    redraws: Counter,
}

impl SampleTelemetry {
    /// Counters bound to `registry`: `core.sampling.draws` (addresses
    /// requested) and `core.sampling.redraws` (collision re-draws in the
    /// naive estimator's rejection loop).
    pub fn in_registry(registry: &Registry) -> SampleTelemetry {
        SampleTelemetry {
            draws: registry.counter("core.sampling.draws"),
            redraws: registry.counter("core.sampling.redraws"),
        }
    }

    /// Disabled counters (what [`Default`] gives too).
    pub fn off() -> SampleTelemetry {
        SampleTelemetry::default()
    }

    /// Book `k` requested draws (for samplers without a rejection loop).
    pub fn count_draws(&self, k: usize) {
        self.draws.add(k as u64);
    }
}

/// [`naive_sample`] with telemetry: counts the `k` requested draws and
/// every collision re-draw the rejection loop performs.
pub fn naive_sample_counting(
    allocated_slash8s: &[u8],
    k: usize,
    rng: &mut impl RngCore,
    telemetry: &SampleTelemetry,
) -> Result<IpSet, Error> {
    if allocated_slash8s.is_empty() {
        return Err(Error::SampleTooLarge {
            requested: k,
            available: 0,
        });
    }
    let space = allocated_slash8s.len() as u64 * (1u64 << 24);
    if (k as u64) > space {
        return Err(Error::SampleTooLarge {
            requested: k,
            available: space as usize,
        });
    }
    telemetry.draws.add(k as u64);
    let mut attempts = 0u64;
    let mut addrs = std::collections::HashSet::with_capacity(k * 2);
    while addrs.len() < k {
        attempts += 1;
        let s8 = allocated_slash8s[rng.gen_range(0..allocated_slash8s.len())];
        let host = rng.gen_range(0u32..1 << 24);
        addrs.insert(((s8 as u32) << 24) | host);
    }
    telemetry.redraws.add(attempts - k as u64);
    Ok(IpSet::from_raw(addrs.into_iter().collect()))
}

/// Draw a `k`-address random subset of the control set (the empirical
/// estimator). Thin, intention-revealing wrapper over [`IpSet::sample`].
pub fn empirical_sample(control: &IpSet, k: usize, rng: &mut impl RngCore) -> Result<IpSet, Error> {
    control.sample(rng, k)
}

/// Sample `k` addresses under the chosen estimator.
pub fn sample(
    estimator: Estimator,
    control: &IpSet,
    allocated_slash8s: &[u8],
    k: usize,
    rng: &mut impl RngCore,
) -> Result<IpSet, Error> {
    sample_counting(
        estimator,
        control,
        allocated_slash8s,
        k,
        rng,
        &SampleTelemetry::off(),
    )
}

/// [`sample`] with telemetry: every estimator counts its draws; the naive
/// estimator additionally counts collision re-draws.
pub fn sample_counting(
    estimator: Estimator,
    control: &IpSet,
    allocated_slash8s: &[u8],
    k: usize,
    rng: &mut impl RngCore,
    telemetry: &SampleTelemetry,
) -> Result<IpSet, Error> {
    match estimator {
        Estimator::Naive => naive_sample_counting(allocated_slash8s, k, rng, telemetry),
        Estimator::Empirical => {
            telemetry.draws.add(k as u64);
            empirical_sample(control, k, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_stats::SeedTree;

    #[test]
    fn naive_sample_respects_slash8s() {
        let mut rng = SeedTree::new(1).stream("naive");
        let s = naive_sample(&[4, 9], 1000, &mut rng).expect("ok");
        assert_eq!(s.len(), 1000);
        assert!(s.iter().all(|ip| ip.slash8() == 4 || ip.slash8() == 9));
    }

    #[test]
    fn naive_sample_empty_slash8s_errors() {
        let mut rng = SeedTree::new(1).stream("naive");
        assert!(naive_sample(&[], 10, &mut rng).is_err());
    }

    #[test]
    fn naive_sample_exhaustive_space() {
        // Requesting more addresses than the space holds errors out.
        let mut rng = SeedTree::new(1).stream("naive");
        let space = 1usize << 24;
        assert!(naive_sample(&[4], space + 1, &mut rng).is_err());
    }

    #[test]
    fn naive_is_less_dense_than_clustered_empirical() {
        // The heart of Figure 2: a clustered control population yields far
        // fewer /24 blocks than uniform sampling over the same /8.
        use crate::blocks::BlockCounts;
        let mut rng = SeedTree::new(2).stream("x");
        // Clustered control: 20000 addresses packed into 40 /24s.
        let mut raw = Vec::new();
        for block in 0..40u32 {
            for host in 0..250u32 {
                raw.push((4 << 24) | (block << 8) | host);
            }
        }
        let control = IpSet::from_raw(raw);
        let k = 5000;
        let emp = empirical_sample(&control, k, &mut rng).expect("ok");
        let naive = naive_sample(&[4], k, &mut rng).expect("ok");
        let emp_blocks = BlockCounts::of(&emp).at(24);
        let naive_blocks = BlockCounts::of(&naive).at(24);
        assert!(
            naive_blocks > emp_blocks * 10,
            "naive {naive_blocks} should dwarf empirical {emp_blocks}"
        );
    }

    #[test]
    fn estimator_dispatch() {
        let mut rng = SeedTree::new(3).stream("d");
        let control = IpSet::from_raw((0..1000).map(|i| (4 << 24) | i).collect());
        let a = sample(Estimator::Empirical, &control, &[4], 10, &mut rng).expect("ok");
        assert!(a.iter().all(|ip| control.contains(ip)));
        let b = sample(Estimator::Naive, &control, &[7], 10, &mut rng).expect("ok");
        assert!(b.iter().all(|ip| ip.slash8() == 7));
    }

    #[test]
    fn telemetry_counts_draws_and_redraws() {
        let registry = unclean_telemetry::Registry::full();
        let telemetry = SampleTelemetry::in_registry(&registry);
        let mut rng = SeedTree::new(9).stream("t");
        // A tiny space (one /24 worth via narrow host range is not possible
        // here, so use one /8) still collides rarely; force collisions by
        // sampling a large fraction of a single /8.
        let k = 200_000;
        naive_sample_counting(&[4], k, &mut rng, &telemetry).expect("ok");
        let control = IpSet::from_raw((0..1000).map(|i| (4 << 24) | i).collect());
        sample_counting(
            Estimator::Empirical,
            &control,
            &[4],
            50,
            &mut rng,
            &telemetry,
        )
        .expect("ok");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["core.sampling.draws"], k as u64 + 50);
        // ~200k draws from 16.7M addresses: birthday collisions are all but
        // certain but few; the counter just has to be consistent.
        assert!(snap.counters["core.sampling.redraws"] < k as u64 / 10);
    }

    #[test]
    fn naive_sample_deterministic() {
        let a = naive_sample(&[4, 9], 100, &mut SeedTree::new(5).stream("n")).expect("ok");
        let b = naive_sample(&[4, 9], 100, &mut SeedTree::new(5).stream("n")).expect("ok");
        assert_eq!(a, b);
    }
}
