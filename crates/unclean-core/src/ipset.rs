//! Sets of IPv4 addresses.
//!
//! Every report in the paper is, at bottom, a set of IP addresses, and the
//! analyses are set algebra at scale: the control report alone holds 47
//! million addresses. [`IpSet`] stores a sorted, deduplicated `Vec<u32>`
//! (4 bytes per address — the 47M-address control fits in ~180 MB) and
//! implements union/intersection/difference as linear merges, membership as
//! binary search, and random subsetting via Floyd's algorithm.

use crate::cidr::{mask, Cidr};
use crate::error::Error;
use crate::ip::Ip;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use unclean_stats::rng::sample_indices;

/// An immutable, sorted, duplicate-free set of IPv4 addresses.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IpSet {
    addrs: Vec<u32>,
}

impl IpSet {
    /// The empty set.
    pub fn empty() -> IpSet {
        IpSet { addrs: Vec::new() }
    }

    /// Build from any iterator of addresses (sorts and deduplicates).
    pub fn from_ips<I: IntoIterator<Item = Ip>>(ips: I) -> IpSet {
        let mut addrs: Vec<u32> = ips.into_iter().map(|ip| ip.raw()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        IpSet { addrs }
    }

    /// Build from raw `u32` values (sorts and deduplicates).
    pub fn from_raw(mut addrs: Vec<u32>) -> IpSet {
        addrs.sort_unstable();
        addrs.dedup();
        IpSet { addrs }
    }

    /// Build from a vector that is already sorted and duplicate-free.
    ///
    /// Checked in debug builds; in release this is O(1).
    pub fn from_sorted(addrs: Vec<u32>) -> IpSet {
        debug_assert!(
            addrs.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending input"
        );
        IpSet { addrs }
    }

    /// Number of addresses.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Membership by binary search.
    pub fn contains(&self, ip: Ip) -> bool {
        self.addrs.binary_search(&ip.raw()).is_ok()
    }

    /// Iterate in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Ip> + '_ {
        self.addrs.iter().map(|&v| Ip(v))
    }

    /// The underlying sorted raw values.
    pub fn as_raw(&self) -> &[u32] {
        &self.addrs
    }

    /// Smallest address, if any.
    pub fn min(&self) -> Option<Ip> {
        self.addrs.first().map(|&v| Ip(v))
    }

    /// Largest address, if any.
    pub fn max(&self) -> Option<Ip> {
        self.addrs.last().map(|&v| Ip(v))
    }

    /// Set union (linear merge).
    pub fn union(&self, other: &IpSet) -> IpSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.addrs[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.addrs[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.addrs[i..]);
        out.extend_from_slice(&other.addrs[j..]);
        IpSet { addrs: out }
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &IpSet) -> IpSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() && j < other.addrs.len() {
            match self.addrs[i].cmp(&other.addrs[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.addrs[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        IpSet { addrs: out }
    }

    /// Set difference `self \ other` (linear merge).
    pub fn difference(&self, other: &IpSet) -> IpSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.addrs.len() {
            if j >= other.addrs.len() || self.addrs[i] < other.addrs[j] {
                out.push(self.addrs[i]);
                i += 1;
            } else if self.addrs[i] > other.addrs[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        IpSet { addrs: out }
    }

    /// Keep only addresses satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(Ip) -> bool) -> IpSet {
        IpSet {
            addrs: self
                .addrs
                .iter()
                .copied()
                .filter(|&v| pred(Ip(v)))
                .collect(),
        }
    }

    /// A uniform random subset of `k` distinct addresses.
    ///
    /// This is the paper's "randomly generated subsets of R_control" —
    /// used 1000 times per figure — so it must be fast at
    /// k ≈ 600k, n ≈ 47M: Floyd's algorithm gives O(k) draws and the output
    /// stays sorted because indices are emitted sorted.
    pub fn sample(&self, rng: &mut impl RngCore, k: usize) -> Result<IpSet, Error> {
        if k > self.len() {
            return Err(Error::SampleTooLarge {
                requested: k,
                available: self.len(),
            });
        }
        let idx = sample_indices(rng, self.len(), k);
        Ok(IpSet {
            addrs: idx.into_iter().map(|i| self.addrs[i]).collect(),
        })
    }

    /// Number of members inside `cidr` (two binary searches).
    pub fn count_in(&self, cidr: &Cidr) -> usize {
        let lo = self.addrs.partition_point(|&v| v < cidr.first().raw());
        let hi = self.addrs.partition_point(|&v| v <= cidr.last().raw());
        hi - lo
    }

    /// Whether any member shares the `n`-bit prefix of `ip` — the paper's
    /// CIDR inclusion relation `i ⊏ S` at a fixed prefix length (Eq. 2).
    pub fn contains_block(&self, ip: Ip, n: u8) -> bool {
        assert!(n <= 32, "prefix length {n} out of range");
        let first = ip.raw() & mask(n);
        let last = first | !mask(n);
        let lo = self.addrs.partition_point(|&v| v < first);
        lo < self.addrs.len() && self.addrs[lo] <= last
    }

    /// Members that fall inside `cidr`, as a new set.
    pub fn members_in(&self, cidr: &Cidr) -> IpSet {
        let lo = self.addrs.partition_point(|&v| v < cidr.first().raw());
        let hi = self.addrs.partition_point(|&v| v <= cidr.last().raw());
        IpSet {
            addrs: self.addrs[lo..hi].to_vec(),
        }
    }
}

impl FromIterator<Ip> for IpSet {
    fn from_iter<I: IntoIterator<Item = Ip>>(iter: I) -> IpSet {
        IpSet::from_ips(iter)
    }
}

impl<'a> IntoIterator for &'a IpSet {
    type Item = Ip;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> Ip>;

    fn into_iter(self) -> Self::IntoIter {
        self.addrs.iter().map(|&v| Ip(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_stats::SeedTree;

    fn set(vals: &[u32]) -> IpSet {
        IpSet::from_raw(vals.to_vec())
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let s = set(&[5, 1, 3, 3, 1]);
        assert_eq!(s.as_raw(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(IpSet::empty().is_empty());
    }

    #[test]
    fn from_ips_and_iter_round_trip() {
        let ips = vec![Ip(10), Ip(2), Ip(10)];
        let s = IpSet::from_ips(ips);
        let back: Vec<Ip> = s.iter().collect();
        assert_eq!(back, vec![Ip(2), Ip(10)]);
        let collected: IpSet = vec![Ip(7), Ip(7), Ip(1)].into_iter().collect();
        assert_eq!(collected.as_raw(), &[1, 7]);
    }

    #[test]
    fn membership() {
        let s = set(&[1, 5, 9]);
        assert!(s.contains(Ip(5)));
        assert!(!s.contains(Ip(4)));
        assert_eq!(s.min(), Some(Ip(1)));
        assert_eq!(s.max(), Some(Ip(9)));
        assert_eq!(IpSet::empty().min(), None);
    }

    #[test]
    fn union_intersect_difference() {
        let a = set(&[1, 2, 3, 5]);
        let b = set(&[2, 4, 5, 6]);
        assert_eq!(a.union(&b).as_raw(), &[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.intersect(&b).as_raw(), &[2, 5]);
        assert_eq!(a.difference(&b).as_raw(), &[1, 3]);
        assert_eq!(b.difference(&a).as_raw(), &[4, 6]);
    }

    #[test]
    fn operations_with_empty() {
        let a = set(&[1, 2]);
        let e = IpSet::empty();
        assert_eq!(a.union(&e), a);
        assert_eq!(e.union(&a), a);
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.difference(&e), a);
        assert_eq!(e.difference(&a), e);
    }

    #[test]
    fn filter_keeps_order() {
        let s = set(&[1, 2, 3, 4, 5]);
        let odd = s.filter(|ip| ip.raw() % 2 == 1);
        assert_eq!(odd.as_raw(), &[1, 3, 5]);
    }

    #[test]
    fn sample_is_subset_of_requested_size() {
        let s = IpSet::from_raw((0..10_000).collect());
        let mut rng = SeedTree::new(1).stream("sample");
        let sub = s.sample(&mut rng, 250).expect("k <= n");
        assert_eq!(sub.len(), 250);
        assert!(sub.iter().all(|ip| s.contains(ip)));
        // Sorted-unique invariant preserved.
        assert!(sub.as_raw().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sample_too_large_errors() {
        let s = set(&[1, 2, 3]);
        let mut rng = SeedTree::new(1).stream("sample");
        assert_eq!(
            s.sample(&mut rng, 4),
            Err(Error::SampleTooLarge {
                requested: 4,
                available: 3
            })
        );
    }

    #[test]
    fn sample_deterministic_per_seed() {
        let s = IpSet::from_raw((0..1000).collect());
        let a = s.sample(&mut SeedTree::new(9).stream("x"), 10).expect("ok");
        let b = s.sample(&mut SeedTree::new(9).stream("x"), 10).expect("ok");
        let c = s
            .sample(&mut SeedTree::new(10).stream("x"), 10)
            .expect("ok");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn count_in_and_members_in() {
        let s = IpSet::from_ips([
            "10.0.0.1".parse().expect("ip"),
            "10.0.0.200".parse().expect("ip"),
            "10.0.1.1".parse().expect("ip"),
            "11.0.0.1".parse().expect("ip"),
        ]);
        let c: Cidr = "10.0.0.0/24".parse().expect("cidr");
        assert_eq!(s.count_in(&c), 2);
        assert_eq!(s.members_in(&c).len(), 2);
        let whole: Cidr = "0.0.0.0/0".parse().expect("cidr");
        assert_eq!(s.count_in(&whole), 4);
        let none: Cidr = "12.0.0.0/8".parse().expect("cidr");
        assert_eq!(s.count_in(&none), 0);
    }

    #[test]
    fn contains_block_matches_prefix_sharing() {
        let s = IpSet::from_ips(["10.1.2.3".parse().expect("ip")]);
        assert!(s.contains_block("10.1.2.200".parse().expect("ip"), 24));
        assert!(s.contains_block("10.1.99.1".parse().expect("ip"), 16));
        assert!(!s.contains_block("10.1.3.1".parse().expect("ip"), 24));
        assert!(s.contains_block("10.1.2.3".parse().expect("ip"), 32));
        assert!(!s.contains_block("10.1.2.4".parse().expect("ip"), 32));
        // Prefix length 0: any address shares the empty prefix.
        assert!(s.contains_block(Ip(u32::MAX), 0));
        assert!(!IpSet::empty().contains_block(Ip(0), 0));
    }

    #[test]
    fn contains_block_near_address_space_edges() {
        let s = IpSet::from_raw(vec![u32::MAX]);
        assert!(s.contains_block(Ip(u32::MAX - 1), 24));
        assert!(s.contains_block(Ip(u32::MAX), 32));
        let s0 = IpSet::from_raw(vec![0]);
        assert!(s0.contains_block(Ip(200), 24));
        assert!(!s0.contains_block(Ip(300), 24));
    }
}
