//! Botnet C&C monitoring.
//!
//! The paper's bot report was "acquired through private reports from a
//! third party" who watched "IP addresses communicating on IRC channels"
//! (§1). The synthetic equivalent: a monitor with visibility into a subset
//! of the C&C channels, recording every address it sees check in. The
//! coverage is partial — real-world monitors infiltrate the botnets they
//! know about — which is why the provided bot report never contains every
//! active bot (and why §6's unknown population is as large as it is).

use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use unclean_core::{DateRange, Day, IpSet};
use unclean_netmodel::{ActivityKind, ActivityModel, ChannelDirectory, Infection};

/// Monitor configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Fraction of channels the third party has visibility into. Monitors
    /// infiltrate the botnets they know about, which are the big ones, so
    /// coverage is popularity-ranked: the top `channel_coverage` fraction
    /// of channels by membership weight are watched.
    pub channel_coverage: f64,
}

impl Default for MonitorConfig {
    fn default() -> MonitorConfig {
        MonitorConfig {
            channel_coverage: 0.35,
        }
    }
}

/// A C&C monitor with partial channel visibility.
#[derive(Debug, Clone)]
pub struct BotMonitor {
    monitored: HashSet<u16>,
}

/// Partial result of a monitor sweep over a subset of a window's days.
/// Shards merge in day order; [`MonitorSweep::finish`] canonicalizes, so
/// the merged result is independent of how the window was sharded.
#[derive(Debug, Clone, Default)]
pub struct MonitorSweep {
    raw: Vec<u32>,
}

impl MonitorSweep {
    /// Fold another shard's sightings into this one.
    pub fn merge(&mut self, other: MonitorSweep) {
        self.raw.extend(other.raw);
    }

    /// The deduplicated address set seen across the merged shards.
    pub fn finish(self) -> IpSet {
        IpSet::from_raw(self.raw)
    }
}

impl BotMonitor {
    /// Watch the most popular channels up to the configured coverage.
    pub fn new(channels: &ChannelDirectory, config: &MonitorConfig) -> BotMonitor {
        let k =
            ((channels.len() as f64 * config.channel_coverage).ceil() as usize).min(channels.len());
        let monitored = channels.by_popularity().into_iter().take(k).collect();
        BotMonitor { monitored }
    }

    /// A monitor that sees every channel (for ablations).
    pub fn omniscient(total_channels: u16) -> BotMonitor {
        BotMonitor {
            monitored: (0..total_channels).collect(),
        }
    }

    /// Whether a channel is visible to the monitor.
    pub fn watches(&self, channel: u16) -> bool {
        self.monitored.contains(&channel)
    }

    /// Number of monitored channels.
    pub fn monitored_count(&self) -> usize {
        self.monitored.len()
    }

    /// Collect the bot report for a window: every address seen checking in
    /// on a monitored channel during the window.
    pub fn collect(&self, model: &ActivityModel<'_>, window: DateRange) -> IpSet {
        let mut acc = MonitorSweep::default();
        for day in window.days() {
            acc.merge(self.sweep_day(model, day));
        }
        acc.finish()
    }

    /// One day's worth of check-ins on monitored channels — the shard unit
    /// for parallel collection.
    pub fn sweep_day(&self, model: &ActivityModel<'_>, day: Day) -> MonitorSweep {
        let mut raw = Vec::new();
        model.hostile_events_on(day, |e| {
            if let ActivityKind::C2Checkin { channel } = e.kind {
                if self.watches(channel) {
                    raw.push(e.src.raw());
                }
            }
        });
        MonitorSweep { raw }
    }

    /// [`BotMonitor::collect`] sharded by day over `pool`. Shards merge in
    /// day order, so the result is identical at any thread count.
    pub fn collect_with(
        &self,
        model: &ActivityModel<'_>,
        window: DateRange,
        pool: &Executor,
    ) -> IpSet {
        let days: Vec<Day> = window.days().collect();
        let shards = pool.run_indexed(days.len(), |i| self.sweep_day(model, days[i]));
        let mut acc = MonitorSweep::default();
        for shard in shards {
            acc.merge(shard);
        }
        acc.finish()
    }

    /// A single-channel roster snapshot ("private communication", like the
    /// paper's bot-test report): the recruited members of `channel` active
    /// on the snapshot day, regardless of monitor coverage.
    pub fn channel_snapshot(
        infections: &[Infection],
        channel: u16,
        day: unclean_core::Day,
    ) -> IpSet {
        IpSet::from_raw(
            infections
                .iter()
                .filter(|i| i.recruited && i.channel == channel && i.active_on(day))
                .map(|i| i.addr)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::Day;
    use unclean_netmodel::{CompromiseConfig, World, WorldConfig};
    use unclean_stats::SeedTree;

    fn directory(channels: u16) -> ChannelDirectory {
        let wcfg = WorldConfig {
            cascade: unclean_netmodel::CascadeConfig {
                target_hosts: 5_000,
                ..Default::default()
            },
            ..WorldConfig::default()
        };
        let world = World::generate(&wcfg, &SeedTree::new(1));
        let ccfg = CompromiseConfig {
            channels,
            ..CompromiseConfig::default()
        };
        ChannelDirectory::generate(&world, &ccfg, &SeedTree::new(1))
    }

    #[test]
    fn coverage_counts_channels() {
        let dir = directory(200);
        let m = BotMonitor::new(
            &dir,
            &MonitorConfig {
                channel_coverage: 0.5,
            },
        );
        assert_eq!(m.monitored_count(), 100);
    }

    #[test]
    fn monitor_prefers_popular_channels() {
        let dir = directory(100);
        let m = BotMonitor::new(
            &dir,
            &MonitorConfig {
                channel_coverage: 0.3,
            },
        );
        // Every monitored channel outweighs every unmonitored one.
        let min_watched = (0..100u16)
            .filter(|&c| m.watches(c))
            .map(|c| dir.weight(c))
            .fold(f64::INFINITY, f64::min);
        let max_unwatched = (0..100u16)
            .filter(|&c| !m.watches(c))
            .map(|c| dir.weight(c))
            .fold(0.0, f64::max);
        assert!(min_watched >= max_unwatched);
        // Member-weighted coverage far exceeds the channel-count fraction
        // (the point of popularity ranking).
        let total: f64 = (0..100u16).map(|c| dir.weight(c)).sum();
        let watched: f64 = (0..100u16)
            .filter(|&c| m.watches(c))
            .map(|c| dir.weight(c))
            .sum();
        assert!(watched / total > 0.5, "mass coverage {}", watched / total);
    }

    #[test]
    fn deterministic_channel_choice() {
        let dir = directory(64);
        let a = BotMonitor::new(&dir, &MonitorConfig::default());
        let b = BotMonitor::new(&dir, &MonitorConfig::default());
        for c in 0..64 {
            assert_eq!(a.watches(c), b.watches(c));
        }
    }

    #[test]
    fn omniscient_sees_all() {
        let m = BotMonitor::omniscient(32);
        assert_eq!(m.monitored_count(), 32);
        assert!((0..32).all(|c| m.watches(c)));
    }

    #[test]
    fn zero_coverage_sees_nothing() {
        let dir = directory(64);
        let m = BotMonitor::new(
            &dir,
            &MonitorConfig {
                channel_coverage: 0.0,
            },
        );
        assert_eq!(m.monitored_count(), 0);
    }

    #[test]
    fn snapshot_filters_roster() {
        let infections = vec![
            Infection {
                addr: 1,
                start: 0,
                end: 100,
                recruited: true,
                channel: 5,
            },
            Infection {
                addr: 2,
                start: 0,
                end: 100,
                recruited: true,
                channel: 6,
            },
            Infection {
                addr: 3,
                start: 0,
                end: 10,
                recruited: true,
                channel: 5,
            },
            Infection {
                addr: 4,
                start: 0,
                end: 100,
                recruited: false,
                channel: 5,
            },
        ];
        let snap = BotMonitor::channel_snapshot(&infections, 5, Day(50));
        assert_eq!(
            snap.as_raw(),
            &[1],
            "active recruited channel-5 members only"
        );
    }
}
