//! # unclean-detect
//!
//! Report generators for the uncleanliness reproduction: the detectors and
//! monitors whose outputs are the paper's Table 1 reports.
//!
//! * [`scan`] — behavioural scan detection: the deployed hourly fan-out
//!   detector (with the paper's documented slow-scan blind spot) plus a
//!   TRW sequential-hypothesis-testing baseline;
//! * [`spam`] — behavioural SMTP-burst detection;
//! * [`botmonitor`] — partial-visibility C&C channel monitoring (the
//!   "provided" bot report) and single-channel roster snapshots (the
//!   bot-test report);
//! * [`phishlist`] — the provided phishing list;
//! * [`builder`] — the full pipeline: scenario → flows → detectors →
//!   the paper's report inventory, candidate collection, and Figure 1's
//!   daily scanner series;
//! * [`live`] — the ingest daemon's analysis half: window-scoped
//!   rescoring of a spooled archive image into a scored blocklist, with
//!   day-grouped workers so multi-segment WAL days stay bit-identical to
//!   a sequential scan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod botmonitor;
pub mod builder;
pub mod live;
pub mod phishlist;
pub mod scan;
pub mod spam;

pub use botmonitor::{BotMonitor, MonitorConfig, MonitorSweep};
pub use builder::{
    build_candidates, build_candidates_with, build_reports, build_reports_with, daily_scanners,
    daily_scanners_with, PipelineConfig, ReportSet,
};
pub use live::{archive_candidates, rescore_window, LiveScanConfig, WindowScan};
pub use phishlist::phish_report;
pub use scan::{FanoutConfig, HourlyFanoutDetector, TrwConfig, TrwDetector};
pub use spam::{SpamConfig, SpamDetector};
