//! The full report pipeline: scenario → Table 1 and Table 2.
//!
//! [`build_reports`] reproduces the paper's report inventory from a
//! generated scenario: the provided bot and phishing reports, the observed
//! scan and spam reports (produced by actually running the behavioural
//! detectors over the generated border flows), the control report, the
//! bot-test snapshot, and the `R_unclean` union. [`build_candidates`]
//! streams the blocking window's traffic from the bot-test /24s through
//! the candidate collector for the §6 analysis, and [`daily_scanners`]
//! produces Figure 1's per-day scanner series.

use crate::botmonitor::{BotMonitor, MonitorConfig};
use crate::phishlist::phish_report;
use crate::scan::{FanoutConfig, HourlyFanoutDetector};
use crate::spam::{SpamConfig, SpamDetector};
use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use unclean_core::{
    union_reports, BlockSet, Candidate, DateRange, Day, IpSet, Provenance, Report, ReportClass,
};
use unclean_flowgen::record::EPOCH_UNIX_SECS;
use unclean_flowgen::{
    CandidateCollector, FlowGenerator, GeneratorConfig, IndexedArchive, IndexedArchiveWriter,
};
use unclean_netmodel::{control_report_with, Scenario};
use unclean_telemetry::Registry;

/// Pipeline configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Scan-detector settings.
    pub fanout: FanoutConfig,
    /// Spam-detector settings.
    pub spam: SpamConfig,
    /// Bot-monitor settings.
    pub monitor: MonitorConfig,
    /// Flow-generator settings.
    pub generator: GeneratorConfig,
    /// Feed benign traffic through the detectors too (slower, but proves
    /// the false-positive behaviour; the detectors' thresholds sit far
    /// above benign fan-out either way).
    pub detect_over_benign: bool,
    /// Worker threads for the day-sharded sweeps (0 = one per core).
    /// Results are identical at any thread count, so this is a pure
    /// throughput knob and is deliberately not serialized with the rest
    /// of the configuration.
    #[serde(skip)]
    pub threads: usize,
}

impl PipelineConfig {
    /// The paper-shaped default, including benign traffic in detection.
    pub fn paper() -> PipelineConfig {
        PipelineConfig {
            detect_over_benign: true,
            ..PipelineConfig::default()
        }
    }
}

/// Days per detector-sweep replay chunk. A chunk is served by one
/// detector pair whose window state is flushed (cleared, capacity kept)
/// at every day boundary, so its size trades scratch reuse against
/// replay parallelism. It must depend only on the data — never on the
/// worker count — to keep the sweep byte-identical at any `--threads`.
const SWEEP_CHUNK_DAYS: usize = 2;

/// Exporter boot anchor for a one-day spool: the day's own midnight, so
/// every flow sits well inside the ~49.7-day SysUptime horizon and the
/// archive round trip is lossless.
fn day_boot(day: Day) -> u32 {
    (i64::from(EPOCH_UNIX_SECS) + i64::from(day.0) * 86_400).max(0) as u32
}

/// Stream every flow of a freshly written one-day spool to `sink`,
/// threading entry sequences across segments exactly like the
/// sequential reader. Decoding is zero-copy over the compressed bytes:
/// no `Vec<Flow>` is ever built.
fn replay_day_spool(spool: &[u8], mut sink: impl FnMut(&unclean_flowgen::Flow)) {
    let archive = IndexedArchive::open(spool)
        .expect("fresh spool has a valid index")
        .expect("fresh spool is v2");
    let mut entry = None;
    for i in 0..archive.segments().len() {
        let mut cursor = unclean_flowgen::SegmentCursor::new(
            archive.segment_bytes(i),
            archive.boot_unix_secs(),
            entry,
        );
        cursor
            .for_each_flow(&mut sink)
            .expect("fresh spool replays cleanly");
        entry = Some(archive.segments()[i].end_seq);
    }
}

/// The paper's report inventory (Tables 1 and 2).
#[derive(Debug, Clone)]
pub struct ReportSet {
    /// `R_bot`: provided bot addresses for the unclean window.
    pub bot: Report,
    /// `R_phish`: the full provided phishing list (May–November).
    pub phish: Report,
    /// The phishing sub-report for the unclean window (Figure 4(ii)'s
    /// small present-day set).
    pub phish_window: Report,
    /// `R_phish-test`: early-window phishing history (Figure 5's
    /// predictor).
    pub phish_test: Report,
    /// `R_scan`: detector-observed scanners in the unclean window.
    pub scan: Report,
    /// `R_spam`: detector-observed spammers in the unclean window.
    pub spam: Report,
    /// `R_control`: payload-bearing visitors during the control week.
    pub control: Report,
    /// `R_bot-test`: the five-month-old single-botnet snapshot.
    pub bot_test: Report,
    /// `R_unclean`: the union of bot, phish, scan and spam (Table 2).
    pub unclean: Report,
}

impl ReportSet {
    /// The four unclean reports in the paper's order.
    pub fn unclean_reports(&self) -> [&Report; 4] {
        [&self.bot, &self.phish, &self.scan, &self.spam]
    }
}

/// Run the full pipeline over a scenario.
pub fn build_reports(scenario: &Scenario, cfg: &PipelineConfig) -> ReportSet {
    build_reports_with(scenario, cfg, &Registry::off())
}

/// [`build_reports`] with telemetry: the detector sweep, provided-report
/// assembly, and §3.2 filter each run under a `pipeline/...` span; flow
/// generation counts onto `flowgen.*`; detector ingest and hits count
/// onto `detect.*`; and every final report's cardinality lands in a
/// `pipeline.reports.<tag>` counter.
pub fn build_reports_with(
    scenario: &Scenario,
    cfg: &PipelineConfig,
    registry: &Registry,
) -> ReportSet {
    let pipeline_span = registry.span("pipeline");
    let dates = scenario.dates;
    let model = scenario.activity();
    let mut generator = FlowGenerator::new(
        &scenario.observed,
        cfg.generator.clone(),
        scenario.seeds.child("flowgen"),
    );
    generator.attach_telemetry(registry);

    // Observed reports: the out-of-core sweep. Stage 1 spools each day's
    // border flows straight through the v2 varint encoder — one worker
    // per day, flows streaming into the compressed spool as they are
    // generated, so no day's expanded flows are ever materialized.
    // Stage 2 replays the spools through the detectors in fixed-size day
    // chunks: one detector pair per chunk walks its days' segments with a
    // zero-copy cursor, flushing window state at every day boundary
    // (clearing state, keeping capacity — the shard's reused scratch).
    // Chunk boundaries depend only on the day list, never the worker
    // count; flows never cross a day boundary and the detectors' merge
    // is a pure union over flushed shards, so the result is bit-for-bit
    // identical to the sequential sweep at any thread count.
    let pool = Executor::new(cfg.threads);
    let flows_ingested = registry.counter("detect.flows_ingested");
    let mut scan_det = HourlyFanoutDetector::new(cfg.fanout.clone());
    let mut spam_det = SpamDetector::new(cfg.spam.clone());
    {
        let mut detect_span = pipeline_span.child("detect");
        detect_span.field("days", dates.unclean_window.len_days());
        detect_span.field("threads", pool.threads() as u64);
        let days: Vec<Day> = dates.unclean_window.days().collect();
        let spools = pool.run_indexed(days.len(), |i| {
            let mut writer = IndexedArchiveWriter::new(Vec::new(), day_boot(days[i]));
            generator.flows_on(&model, days[i], cfg.detect_over_benign, |f| {
                flows_ingested.inc();
                writer.push(&f).expect("in-memory spool");
            });
            let (bytes, _) = writer.finish().expect("in-memory spool");
            bytes
        });
        detect_span.field(
            "spool_bytes",
            spools.iter().map(|s| s.len() as u64).sum::<u64>(),
        );
        let chunks: Vec<&[Vec<u8>]> = spools.chunks(SWEEP_CHUNK_DAYS).collect();
        let shards = pool.run_indexed(chunks.len(), |c| {
            let mut scan_shard = HourlyFanoutDetector::new(cfg.fanout.clone());
            let mut spam_shard = SpamDetector::new(cfg.spam.clone());
            for spool in chunks[c] {
                replay_day_spool(spool, |f| {
                    scan_shard.observe(f);
                    spam_shard.observe(f);
                });
                scan_shard.flush_window_state();
                spam_shard.flush_window_state();
            }
            (scan_shard, spam_shard)
        });
        for (scan_shard, spam_shard) in shards {
            scan_det.merge(scan_shard);
            spam_det.merge(spam_shard);
        }
    }
    registry
        .counter("detect.scan.hits")
        .add(scan_det.detected_count() as u64);
    registry
        .counter("detect.spam.hits")
        .add(spam_det.detected_count() as u64);
    let scan = Report::new(
        "scan",
        ReportClass::Scanning,
        Provenance::Observed,
        dates.unclean_window,
        scan_det.detected(),
    );
    let spam = Report::new(
        "spam",
        ReportClass::Spamming,
        Provenance::Observed,
        dates.unclean_window,
        spam_det.detected(),
    );

    // Provided reports.
    let provided_span = pipeline_span.child("provided");
    let monitor = BotMonitor::new(&scenario.channels, &cfg.monitor);
    let bot = Report::new(
        "bot",
        ReportClass::Bots,
        Provenance::Provided,
        dates.unclean_window,
        monitor.collect_with(&model, dates.unclean_window, &pool),
    );
    let phish = phish_report(&scenario.phish_sites, dates.phish_span, "phish");
    let phish_window = phish_report(&scenario.phish_sites, dates.unclean_window, "phish-oct");
    let phish_test = phish_report(
        &scenario.phish_sites,
        DateRange::new(dates.phish_span.start, dates.phish_span.start + 30),
        "phish-test",
    );
    let bot_test = Report::new(
        "bot-test",
        ReportClass::Bots,
        Provenance::Provided,
        DateRange::single(dates.bot_test_day),
        scenario.bot_test_addrs(),
    );

    // The observed control report.
    let control = control_report_with(&model, dates.control_week, &pool);
    drop(provided_span);

    // Filter everything the way §3.2 requires (reserved + observed-network
    // addresses). Synthetic sources can't produce those, but the pipeline
    // runs the filter anyway — it is part of the method.
    let filter_span = pipeline_span.child("filter");
    let observed_blocks = scenario.observed.blocks().to_vec();
    let filter = |r: Report| r.filter_for_analysis(&observed_blocks);
    let bot = filter(bot);
    let phish = filter(phish);
    let phish_window = filter(phish_window);
    let phish_test = filter(phish_test);
    let scan = filter(scan);
    let spam = filter(spam);
    let bot_test = filter(bot_test);
    let control = filter(control);
    drop(filter_span);

    let unclean = union_reports(&[&bot, &phish, &scan, &spam], "unclean");
    let reports = ReportSet {
        bot,
        phish,
        phish_window,
        phish_test,
        scan,
        spam,
        control,
        bot_test,
        unclean,
    };
    for r in [
        &reports.bot,
        &reports.phish,
        &reports.scan,
        &reports.spam,
        &reports.control,
        &reports.bot_test,
        &reports.unclean,
    ] {
        registry
            .counter(&format!("pipeline.reports.{}", r.tag()))
            .add(r.len() as u64);
    }
    reports
}

/// Stream the blocking window's traffic from `C_n(bot_test)` through the
/// candidate collector (§6.1's `R_candidate`; the paper uses n = 24).
pub fn build_candidates(
    scenario: &Scenario,
    bot_test: &Report,
    prefix_len: u8,
    cfg: &PipelineConfig,
) -> Vec<Candidate> {
    build_candidates_with(scenario, bot_test, prefix_len, cfg, &Registry::off())
}

/// [`build_candidates`] with telemetry: runs under a
/// `pipeline/candidates` span, counts collector ingest onto
/// `collector.*`, and books the partition sizes as
/// `detect.candidates.total` and `detect.candidates.payload_bearing`
/// (the §6.1 "legitimate user" half — candidates a naive blocker would
/// falsely block).
///
/// The §6 scan is archive-shaped, the way the paper's authors replayed
/// their SiLK spool: the window's candidate traffic is spooled once
/// (serially — generation order defines the canonical stream) into an
/// in-memory v2 indexed archive, then replayed one executor worker per
/// day-segment with per-segment collectors merged in day order. Evidence
/// merging is order-insensitive and the v2 codec round-trips flows
/// exactly, so the candidate list is byte-identical to the direct
/// sequential scan at any `--threads` value.
pub fn build_candidates_with(
    scenario: &Scenario,
    bot_test: &Report,
    prefix_len: u8,
    cfg: &PipelineConfig,
    registry: &Registry,
) -> Vec<Candidate> {
    let mut span = registry.span("pipeline/candidates");
    let blocks = BlockSet::of_recorded(bot_test.addresses(), prefix_len, registry);
    let model = scenario.activity();
    let mut generator = FlowGenerator::new(
        &scenario.observed,
        cfg.generator.clone(),
        scenario.seeds.child("flowgen"),
    );
    generator.attach_telemetry(registry);
    let window = scenario.dates.unclean_window;
    // Anchor the exporter clock at the window start: every spooled flow
    // sits well inside the ~49.7-day SysUptime horizon, so the archive
    // round trip is lossless.
    let boot = (i64::from(EPOCH_UNIX_SECS) + i64::from(window.start.0) * 86_400).max(0) as u32;
    let mut writer = IndexedArchiveWriter::new(Vec::new(), boot);
    for day in window.days() {
        model.hostile_events_on_filtered(
            day,
            |ip| blocks.contains(ip),
            |e| generator.expand(&e, |f| writer.push(&f).expect("in-memory spool")),
        );
        // Benign traffic from those same /24s (the innocents at risk).
        model.benign_events_on_filtered(
            day,
            |prefix24| blocks.contains(unclean_core::Ip(prefix24 << 8)),
            |e| generator.expand(&e, |f| writer.push(&f).expect("in-memory spool")),
        );
    }
    let (spool, _) = writer.finish().expect("in-memory spool");
    // The spool is now the only copy of the window's candidate traffic:
    // drop the generator and activity model (and their RNG/campaign
    // state) before the replay so the scan stage holds nothing but the
    // compressed bytes and the per-source evidence being accumulated.
    drop(generator);
    drop(model);
    let archive = IndexedArchive::open(&spool)
        .expect("fresh spool has a valid index")
        .expect("fresh spool is v2");
    span.field("spool_segments", archive.segments().len() as u64);
    span.field("spool_bytes", spool.len() as u64);
    let pool = Executor::new(cfg.threads);
    let replay = archive
        .replay_with(&pool, None, false, |_, cursor| {
            let mut shard = CandidateCollector::new(blocks.clone());
            cursor.for_each_flow(|f| shard.observe(f))?;
            Ok(shard)
        })
        .expect("fresh spool replays cleanly");
    let mut collector = CandidateCollector::new(blocks.clone());
    collector.attach_telemetry(registry);
    for output in &replay.outputs {
        collector.merge(output.output.as_ref().expect("strict replay delivers"));
    }
    replay.telemetry.record(registry);
    let candidates = collector.candidates();
    registry
        .counter("detect.candidates.total")
        .add(candidates.len() as u64);
    registry
        .counter("detect.candidates.payload_bearing")
        .add(candidates.iter().filter(|c| c.payload_bearing).count() as u64);
    candidates
}

/// Figure 1's daily scanner series: for each day in `span`, the set of
/// sources the scan detector flags that day.
///
/// Hostile flows only by default: the detector's threshold sits an order
/// of magnitude above any benign client's fan-out (a property asserted by
/// the pipeline tests), so including benign traffic changes nothing but
/// the runtime.
pub fn daily_scanners(
    scenario: &Scenario,
    span: DateRange,
    include_benign: bool,
    cfg: &PipelineConfig,
) -> Vec<(Day, IpSet)> {
    daily_scanners_with(scenario, span, include_benign, cfg, &Registry::off())
}

/// [`daily_scanners`] with telemetry: the sweep runs under a
/// `pipeline/daily_scan` span (tagged with the day count) and per-day
/// detections accumulate into `detect.scan.daily_hits`.
pub fn daily_scanners_with(
    scenario: &Scenario,
    span: DateRange,
    include_benign: bool,
    cfg: &PipelineConfig,
    registry: &Registry,
) -> Vec<(Day, IpSet)> {
    let mut sweep_span = registry.span("pipeline/daily_scan");
    sweep_span.field("days", span.len_days());
    let daily_hits = registry.counter("detect.scan.daily_hits");
    let model = scenario.activity();
    let mut generator = FlowGenerator::new(
        &scenario.observed,
        cfg.generator.clone(),
        scenario.seeds.child("flowgen"),
    );
    generator.attach_telemetry(registry);
    // Each day gets a fresh detector, so the series is embarrassingly
    // parallel; results come back in day order regardless of thread count.
    let days: Vec<Day> = span.days().collect();
    Executor::new(cfg.threads).run_indexed(days.len(), |i| {
        let mut det = HourlyFanoutDetector::new(cfg.fanout.clone());
        generator.flows_on(&model, days[i], include_benign, |f| det.observe(&f));
        let detected = det.detected();
        daily_hits.add(detected.len() as u64);
        (days[i], detected)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_netmodel::ScenarioConfig;

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::at_scale(0.001, 11))
    }

    #[test]
    fn pipeline_produces_paper_shaped_inventory() {
        let s = scenario();
        let reports = build_reports(&s, &PipelineConfig::paper());

        // Every report non-empty with the right metadata.
        assert_eq!(reports.bot.class(), ReportClass::Bots);
        assert_eq!(reports.bot.provenance(), Provenance::Provided);
        assert_eq!(reports.scan.provenance(), Provenance::Observed);
        assert_eq!(reports.spam.provenance(), Provenance::Observed);
        assert_eq!(reports.control.class(), ReportClass::Control);
        for r in reports.unclean_reports() {
            assert!(!r.is_empty(), "{} should be non-empty", r.tag());
        }
        assert!(!reports.bot_test.is_empty());
        assert!(!reports.control.is_empty());

        // Size ordering matches Table 1:
        // control ≫ bot > spam > scan > phish ≫ bot-test.
        assert!(reports.control.len() > reports.bot.len() * 10);
        assert!(reports.bot.len() > reports.spam.len());
        assert!(reports.spam.len() > reports.scan.len());
        assert!(reports.bot.len() > reports.phish.len());
        assert!(reports.bot_test.len() <= 186);

        // The union covers each constituent.
        for r in reports.unclean_reports() {
            assert!(r.addresses().intersect(reports.unclean.addresses()).len() == r.len());
        }
    }

    #[test]
    fn report_sizes_track_targets() {
        let s = scenario();
        let reports = build_reports(&s, &PipelineConfig::paper());
        let bot_target = s.config.bot_target as f64;
        let ratio = reports.bot.len() as f64 / bot_target;
        assert!((0.4..2.0).contains(&ratio), "bot size ratio {ratio}");
        // Paper ratios: scan/bot ≈ 0.24, spam/bot ≈ 0.64 — hold loosely.
        let scan_ratio = reports.scan.len() as f64 / reports.bot.len() as f64;
        let spam_ratio = reports.spam.len() as f64 / reports.bot.len() as f64;
        assert!((0.1..0.5).contains(&scan_ratio), "scan/bot {scan_ratio}");
        assert!((0.35..1.0).contains(&spam_ratio), "spam/bot {spam_ratio}");
    }

    #[test]
    fn candidates_come_from_bot_test_blocks() {
        let s = scenario();
        let reports = build_reports(&s, &PipelineConfig::paper());
        let candidates = build_candidates(&s, &reports.bot_test, 24, &PipelineConfig::paper());
        assert!(!candidates.is_empty(), "unclean /24s keep emitting traffic");
        let blocks = BlockSet::of(reports.bot_test.addresses(), 24);
        for c in &candidates {
            assert!(blocks.contains(c.ip));
        }
        // Sparseness (§6.2): candidates ≪ the spanned address space.
        assert!((candidates.len() as u64) < blocks.address_span() / 10);
    }

    #[test]
    fn daily_scanner_series_shows_campaign() {
        let s = scenario();
        let cfg = PipelineConfig::paper();
        // Sample the series rather than the full 120 days to keep the test
        // quick: pre-campaign, peak, and post-decay days.
        let pre = daily_scanners(
            &s,
            DateRange::single(s.dates.fig1_span.start + 5),
            false,
            &cfg,
        );
        let peak = daily_scanners(&s, DateRange::single(s.dates.fig1_report_day), false, &cfg);
        let post = daily_scanners(
            &s,
            DateRange::single(s.dates.fig1_report_day + 40),
            false,
            &cfg,
        );
        let n = |v: &Vec<(Day, IpSet)>| v[0].1.len();
        assert!(
            n(&peak) > n(&pre),
            "campaign peak ({}) should exceed the pre-campaign baseline ({})",
            n(&peak),
            n(&pre)
        );
        assert!(
            n(&peak) > n(&post),
            "scanning should collapse after the report ({} vs {})",
            n(&peak),
            n(&post)
        );
    }

    #[test]
    fn benign_traffic_never_triggers_detectors() {
        let s = scenario();
        let cfg = PipelineConfig::paper();
        let model = s.activity();
        let generator =
            FlowGenerator::new(&s.observed, cfg.generator.clone(), s.seeds.child("flowgen"));
        let mut scan_det = HourlyFanoutDetector::new(cfg.fanout.clone());
        let mut spam_det = SpamDetector::new(cfg.spam.clone());
        let day = s.dates.unclean_window.start;
        model.benign_events_on(day, |e| {
            generator.expand(&e, |f| {
                scan_det.observe(&f);
                spam_det.observe(&f);
            })
        });
        assert_eq!(
            scan_det.detected_count(),
            0,
            "no benign scan false positives"
        );
        assert_eq!(
            spam_det.detected_count(),
            0,
            "no benign spam false positives"
        );
    }

    #[test]
    fn instrumented_pipeline_matches_and_records() {
        let s = scenario();
        let cfg = PipelineConfig::paper();
        let registry = Registry::full();
        let recorded = build_reports_with(&s, &cfg, &registry);
        let plain = build_reports(&s, &cfg);
        assert_eq!(recorded.bot, plain.bot, "telemetry changes nothing");
        assert_eq!(recorded.unclean, plain.unclean);
        let candidates = build_candidates_with(&s, &recorded.bot_test, 24, &cfg, &registry);
        let snap = registry.snapshot();
        assert!(snap.counters["detect.flows_ingested"] > 0);
        assert_eq!(
            snap.counters["detect.scan.hits"],
            recorded.scan.len() as u64
        );
        assert_eq!(
            snap.counters["detect.spam.hits"],
            recorded.spam.len() as u64
        );
        assert_eq!(
            snap.counters["pipeline.reports.unclean"],
            recorded.unclean.len() as u64
        );
        assert_eq!(
            snap.counters["detect.candidates.total"],
            candidates.len() as u64
        );
        assert!(
            snap.counters["detect.candidates.payload_bearing"]
                <= snap.counters["detect.candidates.total"]
        );
        assert_eq!(snap.spans["pipeline"].count, 1);
        assert_eq!(snap.spans["pipeline/detect"].count, 1);
        assert_eq!(snap.spans["pipeline/provided"].count, 1);
        assert_eq!(snap.spans["pipeline/filter"].count, 1);
        assert_eq!(snap.spans["pipeline/candidates"].count, 1);
        assert!(snap.counters["flowgen.flows_generated"] > 0);
    }

    #[test]
    fn deterministic_pipeline() {
        let s = scenario();
        let a = build_reports(&s, &PipelineConfig::paper());
        let b = build_reports(&s, &PipelineConfig::paper());
        assert_eq!(a.bot, b.bot);
        assert_eq!(a.scan, b.scan);
        assert_eq!(a.spam, b.spam);
        assert_eq!(a.control, b.control);
    }
}
