//! The phishing report list.
//!
//! The paper's phishing data is a *provided* list in the style of
//! CastleCops PIRT or a spam-trap feed (§3.1): sites get reported by users
//! and accumulate on a public list with some delay and some misses. The
//! netmodel already simulates the reporting process per site; this module
//! materializes the list over a window as a [`Report`].

use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, IpSet, Provenance, Report, ReportClass};
use unclean_netmodel::PhishSite;

/// Phish-list configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhishListConfig {}

/// Build the provided phishing report for a window: every address whose
/// site was reported during the window.
pub fn phish_report(sites: &[PhishSite], window: DateRange, tag: &str) -> Report {
    let raw: Vec<u32> = sites
        .iter()
        .filter(|s| s.reported_in(&window))
        .map(|s| s.addr)
        .collect();
    Report::new(
        tag,
        ReportClass::Phishing,
        Provenance::Provided,
        window,
        IpSet::from_raw(raw),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::Day;

    fn site(addr: u32, reported: Option<i32>) -> PhishSite {
        PhishSite {
            addr,
            start: 0,
            end: 200,
            reported,
        }
    }

    #[test]
    fn report_collects_window_reports() {
        let sites = vec![
            site(10, Some(5)),
            site(11, Some(50)),
            site(12, None),
            site(10, Some(7)), // same address reported twice → dedup
        ];
        let r = phish_report(&sites, DateRange::new(Day(0), Day(20)), "phish");
        assert_eq!(r.len(), 1);
        assert!(r.contains(unclean_core::Ip(10)));
        assert_eq!(r.class(), ReportClass::Phishing);
        assert_eq!(r.provenance(), Provenance::Provided);
        assert_eq!(r.tag(), "phish");
    }

    #[test]
    fn empty_window_empty_report() {
        let sites = vec![site(10, Some(100))];
        let r = phish_report(&sites, DateRange::new(Day(0), Day(20)), "phish");
        assert!(r.is_empty());
    }
}
