//! Window-scoped rescoring over a live archive — the ingest daemon's
//! analysis half.
//!
//! The offline pipeline ([`crate::build_reports`]) starts from a
//! generated scenario; a live collector starts from *bytes*: the WAL
//! spooler's sealed prefix, assembled into a v2 indexed archive image.
//! [`rescore_window`] replays a day window of such an image through the
//! behavioural detectors, scores the implicated networks with the §7
//! multidimensional scorer, and returns deploy-ready scored blocklist
//! entries — the payload the rescore loop hands to `unclean-serve`.
//!
//! Unlike the offline per-day shards, a WAL archive can hold *several*
//! segments for the same day (the spooler seals on every checkpoint, not
//! just at day boundaries). The detectors carry hourly-window state, so
//! splitting one day across workers would split fan-out windows and lose
//! detections. The sweep therefore shards **by whole days, not by
//! segment**: each worker takes a fixed-size chunk of days, walks their
//! segments sequentially with a single reused detector pair, flushes
//! window state at every day boundary, and the chunks merge in day
//! order — bit-identical to a sequential scan at any thread count.

use crate::scan::{FanoutConfig, HourlyFanoutDetector};
use crate::spam::{SpamConfig, SpamDetector};
use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use unclean_core::{
    BlockSet, Candidate, Cidr, DateRange, Day, NetworkScore, Provenance, Report, ReportClass,
    ScoreWeights, UncleanlinessScorer,
};
use unclean_flowgen::{
    ArchiveTelemetry, CandidateCollector, IndexedArchive, IndexedError, SegmentCursor,
};
use unclean_telemetry::{Registry, TraceEvent, TraceKind};

/// Settings for a live window rescore.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LiveScanConfig {
    /// Scan-detector settings.
    pub fanout: FanoutConfig,
    /// Spam-detector settings.
    pub spam: SpamConfig,
    /// Network granularity for scoring and the emitted blocklist.
    pub prefix_len: u8,
    /// Class weights for the combined score.
    pub weights: ScoreWeights,
    /// Drop networks scoring below this from the emitted blocklist.
    pub min_score: f64,
    /// Worker threads for the day-sharded sweep (0 = one per core).
    /// A pure throughput knob — results are thread-count invariant.
    #[serde(skip)]
    pub threads: usize,
}

impl Default for LiveScanConfig {
    fn default() -> LiveScanConfig {
        LiveScanConfig {
            fanout: FanoutConfig::default(),
            spam: SpamConfig::default(),
            prefix_len: 24,
            weights: ScoreWeights::default(),
            min_score: 0.0,
            threads: 0,
        }
    }
}

/// The outcome of one window rescore.
#[derive(Debug, Clone)]
pub struct WindowScan {
    /// The day span actually covered (None for an empty window).
    pub window: Option<DateRange>,
    /// Flows replayed.
    pub flows: u64,
    /// Replay loss/duplication accounting summed over the window.
    pub telemetry: ArchiveTelemetry,
    /// Detector-observed scanners in the window.
    pub scan: Report,
    /// Detector-observed spammers in the window.
    pub spam: Report,
    /// Every implicated network, ranked most-unclean first.
    pub scores: Vec<NetworkScore>,
    /// `(network, score)` entries at or above the configured floor —
    /// ready for `render_scored` and the serving trie.
    pub blocklist: Vec<(Cidr, f64)>,
}

/// One day's worth of work for a rescore worker: the day plus each
/// selected segment's index and entry sequence (the previous
/// *file-adjacent* segment's `end_seq`, the same continuity rule the
/// indexed readers use).
type DayGroup = (Day, Vec<(usize, Option<u32>)>);

/// Whole-day groups per rescore replay chunk — see the matching
/// `SWEEP_CHUNK_DAYS` in the offline builder for the contract: data-
/// defined boundaries, one reused detector pair per chunk, flushed at
/// every day boundary.
const RESCORE_CHUNK_DAYS: usize = 2;

/// Selected segment indexes grouped into runs of equal day.
fn day_groups(archive: &IndexedArchive<'_>, range: Option<DateRange>) -> Vec<DayGroup> {
    let selected = archive.index().select(range);
    let mut groups: Vec<DayGroup> = Vec::new();
    for (k, &i) in selected.iter().enumerate() {
        let entry = if k > 0 && selected[k - 1] == i - 1 {
            Some(archive.segments()[i - 1].end_seq)
        } else {
            None
        };
        let day = archive.segments()[i].day;
        match groups.last_mut() {
            Some((d, run)) if *d == day => run.push((i, entry)),
            _ => groups.push((day, vec![(i, entry)])),
        }
    }
    groups
}

/// Replay the days of `range` (the whole archive when `None`) through
/// the scan and spam detectors, score every implicated network, and
/// assemble the scored blocklist. Runs under a `live/rescore` span;
/// replay accounting lands on the `archive.*` counters and detections on
/// `detect.scan.hits` / `detect.spam.hits`.
pub fn rescore_window(
    data: &[u8],
    range: Option<DateRange>,
    cfg: &LiveScanConfig,
    registry: &Registry,
) -> Result<WindowScan, IndexedError> {
    let t0 = std::time::Instant::now();
    let mut span = registry.span("live/rescore");
    let archive = match IndexedArchive::open(data)? {
        Some(archive) => archive,
        None if data.is_empty() => {
            // A spool with nothing sealed yet: an empty, well-formed scan.
            return Ok(empty_scan(cfg));
        }
        None => {
            return Err(IndexedError::Corrupt(
                "live rescore needs a v2 indexed archive".to_string(),
            ));
        }
    };
    let groups = day_groups(&archive, range);
    span.field("days", groups.len() as u64);
    let pool = Executor::new(cfg.threads);
    span.field("threads", pool.threads() as u64);
    // Fixed-size chunks of whole days: one detector pair per chunk,
    // window state flushed (cleared, capacity kept) at every day
    // boundary. Chunk boundaries depend only on the day list, so the
    // sweep stays bit-identical at any thread count while each shard
    // reuses its detector scratch across days.
    let chunks: Vec<&[DayGroup]> = groups.chunks(RESCORE_CHUNK_DAYS).collect();
    let shards = pool.run_indexed(chunks.len(), |c| {
        let mut scan_shard = HourlyFanoutDetector::new(cfg.fanout.clone());
        let mut spam_shard = SpamDetector::new(cfg.spam.clone());
        let mut telemetry = ArchiveTelemetry::default();
        let mut flows = 0u64;
        for (_, segments) in chunks[c] {
            for &(i, entry) in segments {
                archive.verify_segment(i)?;
                let mut cursor =
                    SegmentCursor::new(archive.segment_bytes(i), archive.boot_unix_secs(), entry);
                cursor.for_each_flow(|f| {
                    flows += 1;
                    scan_shard.observe(f);
                    spam_shard.observe(f);
                })?;
                telemetry.accumulate(&cursor.telemetry());
            }
            scan_shard.flush_window_state();
            spam_shard.flush_window_state();
        }
        Ok::<_, IndexedError>((scan_shard, spam_shard, telemetry, flows))
    });

    let mut scan_det = HourlyFanoutDetector::new(cfg.fanout.clone());
    let mut spam_det = SpamDetector::new(cfg.spam.clone());
    let mut telemetry = ArchiveTelemetry::default();
    let mut flows = 0u64;
    for shard in shards {
        let (scan_shard, spam_shard, shard_telemetry, shard_flows) = shard?;
        scan_det.merge(scan_shard);
        spam_det.merge(spam_shard);
        telemetry.accumulate(&shard_telemetry);
        flows += shard_flows;
    }
    telemetry.record(registry);
    registry
        .counter("detect.scan.hits")
        .add(scan_det.detected_count() as u64);
    registry
        .counter("detect.spam.hits")
        .add(spam_det.detected_count() as u64);

    let window = match (groups.first(), groups.last()) {
        (Some((first, _)), Some((last, _))) => Some(DateRange::new(*first, *last)),
        _ => None,
    };
    let report_range = window.unwrap_or(DateRange::single(Day(0)));
    let scan = Report::new(
        "live-scan",
        ReportClass::Scanning,
        Provenance::Observed,
        report_range,
        scan_det.detected(),
    );
    let spam = Report::new(
        "live-spam",
        ReportClass::Spamming,
        Provenance::Observed,
        report_range,
        spam_det.detected(),
    );
    let scorer = UncleanlinessScorer {
        prefix_len: cfg.prefix_len,
        weights: cfg.weights,
    };
    let scores = scorer.score(&[&scan, &spam]);
    let blocklist: Vec<(Cidr, f64)> = scores
        .iter()
        .filter(|ns| ns.score >= cfg.min_score)
        .map(|ns| (ns.network, ns.score))
        .collect();
    span.field("flows", flows);
    span.field("networks", blocklist.len() as u64);
    registry.trace_event(
        TraceEvent::now(TraceKind::Rescore)
            .dur_ns(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .field("days", groups.len())
            .field("flows", flows)
            .field("networks", blocklist.len()),
    );
    Ok(WindowScan {
        window,
        flows,
        telemetry,
        scan,
        spam,
        scores,
        blocklist,
    })
}

fn empty_scan(_cfg: &LiveScanConfig) -> WindowScan {
    let range = DateRange::single(Day(0));
    WindowScan {
        window: None,
        flows: 0,
        telemetry: ArchiveTelemetry::default(),
        scan: Report::new(
            "live-scan",
            ReportClass::Scanning,
            Provenance::Observed,
            range,
            unclean_core::IpSet::empty(),
        ),
        spam: Report::new(
            "live-spam",
            ReportClass::Spamming,
            Provenance::Observed,
            range,
            unclean_core::IpSet::empty(),
        ),
        scores: Vec::new(),
        blocklist: Vec::new(),
    }
}

/// The §6.1 candidate sweep over an archive image: stream the window's
/// flows sourced from `blocks` through the candidate collector, one
/// worker per segment (evidence merging is order-insensitive, so unlike
/// the detector sweep this needs no day grouping). The archive-image
/// counterpart of [`crate::build_candidates_with`] for spooled traffic.
pub fn archive_candidates(
    data: &[u8],
    blocks: &BlockSet,
    range: Option<DateRange>,
    threads: usize,
    registry: &Registry,
) -> Result<Vec<Candidate>, IndexedError> {
    let mut span = registry.span("live/candidates");
    let archive = match IndexedArchive::open(data)? {
        Some(archive) => archive,
        None => return Ok(Vec::new()),
    };
    let pool = Executor::new(threads);
    let replay = archive.replay_with(&pool, range, false, |_, cursor| {
        let mut shard = CandidateCollector::new(blocks.clone());
        cursor.for_each_flow(|f| shard.observe(f))?;
        Ok(shard)
    })?;
    let mut collector = CandidateCollector::new(blocks.clone());
    collector.attach_telemetry(registry);
    for output in &replay.outputs {
        collector.merge(output.output.as_ref().expect("strict replay delivers"));
    }
    replay.telemetry.record(registry);
    let candidates = collector.candidates();
    span.field("candidates", candidates.len() as u64);
    Ok(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::Ip;
    use unclean_flowgen::record::{proto, tcp_flags, EPOCH_UNIX_SECS};
    use unclean_flowgen::{Flow, WalSpool};

    /// A hostile SYN sweep from one source: enough distinct destinations
    /// inside one hour to trip the fan-out detector.
    fn sweep(spool: &mut WalSpool, src: u32, day: u32, dst_base: u32, n: u32) {
        for i in 0..n {
            spool
                .push(&Flow {
                    src: Ip(src),
                    dst: Ip(0x1e00_0000 + dst_base + i),
                    src_port: 40_000,
                    dst_port: 445,
                    proto: proto::TCP,
                    packets: 1,
                    octets: 40,
                    flags: tcp_flags::SYN,
                    start_secs: i64::from(day) * 86_400 + i64::from(i % 3_600),
                    duration_secs: 0,
                })
                .expect("push");
        }
    }

    fn spool_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("unclean-live-scan")
            .join(format!("{name}-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Two days, several seals per day — the WAL shape the offline
    /// replay never produces.
    fn two_day_image(name: &str) -> Vec<u8> {
        let dir = spool_dir(name);
        let mut spool = WalSpool::create(&dir, EPOCH_UNIX_SECS).expect("create");
        for day in 0..2u32 {
            // Split one source's sweep across two sealed segments — 40
            // distinct destinations each, both below the 64-fan-out
            // threshold alone: only a day-scoped scan reassembles the
            // hourly window that crosses the seal.
            sweep(&mut spool, 0x0901_0001, day, 0, 40);
            spool.seal().expect("seal");
            sweep(&mut spool, 0x0901_0001, day, 40, 40);
            sweep(&mut spool, 0x0905_0001 + day, day, 0, 90);
            spool.seal().expect("seal");
        }
        assert!(spool.sealed_segments().len() >= 4, "multi-segment days");
        spool.sealed_image().expect("image")
    }

    #[test]
    fn rescore_detects_and_scores_networks() {
        let image = two_day_image("detects");
        let cfg = LiveScanConfig::default();
        let scan = rescore_window(&image, None, &cfg, &Registry::off()).expect("rescore");
        assert_eq!(scan.window, Some(DateRange::new(Day(0), Day(1))));
        assert_eq!(scan.flows, 2 * (40 + 40 + 90));
        assert_eq!(scan.telemetry.lost_flows, 0);
        assert!(!scan.scan.is_empty(), "sweeps detected");
        assert!(!scan.blocklist.is_empty());
        // 9.1.0.0/24 hosts the split sweep; it must still be implicated.
        let networks: Vec<String> = scan.blocklist.iter().map(|(c, _)| c.to_string()).collect();
        assert!(networks.contains(&"9.1.0.0/24".to_string()), "{networks:?}");
        for (_, score) in &scan.blocklist {
            assert!(*score > 0.0);
        }
    }

    #[test]
    fn rescore_is_thread_count_invariant() {
        let image = two_day_image("threads");
        let at = |threads: usize| {
            let cfg = LiveScanConfig {
                threads,
                ..LiveScanConfig::default()
            };
            rescore_window(&image, None, &cfg, &Registry::off()).expect("rescore")
        };
        let a = at(1);
        let b = at(8);
        assert_eq!(a.scan, b.scan);
        assert_eq!(a.spam, b.spam);
        assert_eq!(a.scores, b.scores);
        assert_eq!(a.blocklist, b.blocklist);
        assert_eq!(a.telemetry, b.telemetry);
    }

    #[test]
    fn day_range_scopes_the_window() {
        let image = two_day_image("window");
        let cfg = LiveScanConfig::default();
        let day0 = rescore_window(
            &image,
            Some(DateRange::single(Day(0))),
            &cfg,
            &Registry::off(),
        )
        .expect("rescore");
        assert_eq!(day0.window, Some(DateRange::single(Day(0))));
        assert_eq!(day0.flows, 40 + 40 + 90);
        let all = rescore_window(&image, None, &cfg, &Registry::off()).expect("rescore");
        assert!(all.flows > day0.flows);
    }

    #[test]
    fn empty_input_is_an_empty_scan() {
        let cfg = LiveScanConfig::default();
        let scan = rescore_window(&[], None, &cfg, &Registry::off()).expect("empty");
        assert_eq!(scan.window, None);
        assert_eq!(scan.flows, 0);
        assert!(scan.blocklist.is_empty());
    }

    #[test]
    fn min_score_floor_trims_the_blocklist() {
        let image = two_day_image("floor");
        let base = rescore_window(&image, None, &LiveScanConfig::default(), &Registry::off())
            .expect("rescore");
        let strict_cfg = LiveScanConfig {
            min_score: f64::MAX,
            ..LiveScanConfig::default()
        };
        let strict = rescore_window(&image, None, &strict_cfg, &Registry::off()).expect("rescore");
        assert!(!base.blocklist.is_empty());
        assert!(strict.blocklist.is_empty(), "floor trims everything");
        assert_eq!(strict.scores, base.scores, "scores themselves unchanged");
    }

    #[test]
    fn archive_candidates_match_direct_collection() {
        let image = two_day_image("candidates");
        let archive = IndexedArchive::open(&image).expect("parse").expect("v2");
        let (flows, _) = archive.read_day_range(None).expect("read");
        let srcs: unclean_core::IpSet = flows.iter().map(|f| f.src).collect();
        let blocks = BlockSet::of(&srcs, 24);
        let mut direct = CandidateCollector::new(blocks.clone());
        for f in &flows {
            direct.observe(f);
        }
        let expected = direct.candidates();
        for threads in [1, 8] {
            let got = archive_candidates(&image, &blocks, None, threads, &Registry::off())
                .expect("candidates");
            assert_eq!(got, expected);
        }
        assert!(!expected.is_empty());
    }
}
