//! Behavioral spam detection.
//!
//! The paper's spam report comes from "a behavioral spam detection
//! technique" (under review at the time, so unspecified). We implement the
//! natural flow-level behavioural detector: a source is a spammer once its
//! SMTP delivery volume toward the observed network within a single day
//! exceeds what any legitimate mail relay of its size would send — high
//! daily message counts to the MX hosts. Benign clients send a handful of
//! messages; bots deliver bursts of dozens.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use unclean_core::{Ip, IpSet};
use unclean_flowgen::Flow;

/// Configuration for the SMTP-volume detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpamConfig {
    /// Payload-bearing deliveries to port 25 within one day that trigger
    /// detection.
    pub daily_message_threshold: u32,
}

impl Default for SpamConfig {
    fn default() -> SpamConfig {
        SpamConfig {
            daily_message_threshold: 8,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SpamState {
    day: i32,
    messages: u32,
}

/// Streaming SMTP-burst detector.
#[derive(Debug, Clone)]
pub struct SpamDetector {
    config: SpamConfig,
    state: HashMap<u32, SpamState>,
    detected: HashSet<u32>,
}

impl SpamDetector {
    /// A detector with the given configuration.
    pub fn new(config: SpamConfig) -> SpamDetector {
        assert!(config.daily_message_threshold > 0);
        SpamDetector {
            config,
            state: HashMap::new(),
            detected: HashSet::new(),
        }
    }

    /// Feed one flow.
    pub fn observe(&mut self, flow: &Flow) {
        if self.detected.contains(&flow.src.raw()) {
            return;
        }
        // Only payload-bearing SMTP counts as a delivery.
        if flow.dst_port != 25 || !flow.payload_bearing() {
            return;
        }
        let day = flow.day().0;
        let st = self.state.entry(flow.src.raw()).or_default();
        if st.day != day {
            st.day = day;
            st.messages = 0;
        }
        st.messages += 1;
        if st.messages >= self.config.daily_message_threshold {
            self.detected.insert(flow.src.raw());
            self.state.remove(&flow.src.raw());
        }
    }

    /// Drop per-day tracking state (between days); detections are kept.
    pub fn flush_window_state(&mut self) {
        self.state.clear();
    }

    /// Fold another detector's detections into this one. Used to combine
    /// per-day shards of the pipeline: message counts are scoped to a
    /// single day, so a shard that has completed its window
    /// (`flush_window_state`) carries no cross-shard day state and the
    /// union of per-shard detections equals the sequential sweep.
    pub fn merge(&mut self, other: SpamDetector) {
        debug_assert!(
            other.state.is_empty(),
            "merge requires flushed window state"
        );
        for src in other.detected {
            self.detected.insert(src);
            self.state.remove(&src);
        }
    }

    /// Sources flagged as spammers.
    pub fn detected(&self) -> IpSet {
        IpSet::from_raw(self.detected.iter().copied().collect())
    }

    /// Whether a source has been flagged.
    pub fn is_detected(&self, ip: Ip) -> bool {
        self.detected.contains(&ip.raw())
    }

    /// Number of flagged sources.
    pub fn detected_count(&self) -> usize {
        self.detected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_flowgen::record::{proto, tcp_flags};

    fn smtp(src: &str, day: i32, nonce: i64) -> Flow {
        Flow {
            src: src.parse().expect("ok"),
            dst: "30.0.0.10".parse().expect("ok"),
            src_port: 40_000,
            dst_port: 25,
            proto: proto::TCP,
            packets: 15,
            octets: 15 * 40 + 4_000,
            flags: tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH | tcp_flags::FIN,
            start_secs: day as i64 * 86_400 + nonce * 60,
            duration_secs: 5,
        }
    }

    #[test]
    fn burst_triggers_detection() {
        let mut d = SpamDetector::new(SpamConfig::default());
        for i in 0..8 {
            d.observe(&smtp("9.3.3.3", 273, i));
        }
        assert!(d.is_detected("9.3.3.3".parse().expect("ok")));
        assert_eq!(d.detected_count(), 1);
    }

    #[test]
    fn light_mail_is_ignored() {
        let mut d = SpamDetector::new(SpamConfig::default());
        // Three messages a day for five days: never crosses the daily bar.
        for day in 273..278 {
            for i in 0..3 {
                d.observe(&smtp("9.3.3.4", day, i));
            }
        }
        assert_eq!(d.detected_count(), 0);
    }

    #[test]
    fn daily_counter_resets() {
        let mut d = SpamDetector::new(SpamConfig {
            daily_message_threshold: 10,
        });
        for i in 0..9 {
            d.observe(&smtp("9.3.3.5", 273, i));
        }
        for i in 0..9 {
            d.observe(&smtp("9.3.3.5", 274, i));
        }
        assert!(
            !d.is_detected("9.3.3.5".parse().expect("ok")),
            "9+9 across days ≠ 10 in one day"
        );
    }

    #[test]
    fn non_smtp_traffic_is_ignored() {
        let mut d = SpamDetector::new(SpamConfig {
            daily_message_threshold: 2,
        });
        let mut f = smtp("9.3.3.6", 273, 0);
        f.dst_port = 80;
        for _ in 0..10 {
            d.observe(&f);
        }
        assert_eq!(d.detected_count(), 0);
    }

    #[test]
    fn syn_only_smtp_probes_are_not_deliveries() {
        // Port-25 scanning must not register as spamming.
        let mut d = SpamDetector::new(SpamConfig {
            daily_message_threshold: 2,
        });
        let f = Flow {
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            ..smtp("9.3.3.7", 273, 0)
        };
        for _ in 0..10 {
            d.observe(&f);
        }
        assert_eq!(d.detected_count(), 0);
    }

    #[test]
    fn flush_keeps_detections() {
        let mut d = SpamDetector::new(SpamConfig::default());
        for i in 0..8 {
            d.observe(&smtp("9.3.3.8", 273, i));
        }
        d.flush_window_state();
        assert!(d.is_detected("9.3.3.8".parse().expect("ok")));
        assert_eq!(d.detected().len(), 1);
    }
}
