//! Behavioral scan detection.
//!
//! Two detectors, mirroring the literature the paper draws on:
//!
//! * [`HourlyFanoutDetector`] — the deployed detector of Gates et al.
//!   (paper refs \[6, 7\]): flags a source once it contacts enough distinct
//!   destinations *within one hour* without exchanging payload. The paper
//!   notes its blind spot explicitly (§6.2): "the scan detection mechanism
//!   is calibrated to identify scans that take place over an hour, while
//!   scans observed in this dataset would often contact less than 30
//!   addresses per day" — the threshold here is chosen to preserve exactly
//!   that blind spot.
//! * [`TrwDetector`] — Threshold Random Walk sequential hypothesis testing
//!   (Jung et al., paper ref \[11\]), as a baseline/ablation: walks a
//!   likelihood ratio on connection outcomes (payload-bearing = success,
//!   SYN-only = failure) and flags when the ratio crosses the detection
//!   threshold.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use unclean_core::{Ip, IpSet};
use unclean_flowgen::Flow;

/// Configuration for the hourly fan-out detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FanoutConfig {
    /// Distinct no-payload destinations within one hour that trigger
    /// detection. Benign clients touch a handful of servers; fast sweeps
    /// touch hundreds; slow scanners stay below 30 per *day* and are
    /// missed — by design.
    pub hourly_threshold: usize,
}

impl Default for FanoutConfig {
    fn default() -> FanoutConfig {
        FanoutConfig {
            hourly_threshold: 64,
        }
    }
}

#[derive(Debug, Clone, Default)]
struct FanoutState {
    hour: i64,
    dsts: HashSet<u32>,
}

/// The hourly fan-out scan detector. Feed flows in any order within a day;
/// state is per (source, hour).
#[derive(Debug, Clone)]
pub struct HourlyFanoutDetector {
    config: FanoutConfig,
    state: HashMap<u32, FanoutState>,
    detected: HashSet<u32>,
}

impl HourlyFanoutDetector {
    /// A detector with the given configuration.
    pub fn new(config: FanoutConfig) -> HourlyFanoutDetector {
        assert!(config.hourly_threshold > 0);
        HourlyFanoutDetector {
            config,
            state: HashMap::new(),
            detected: HashSet::new(),
        }
    }

    /// Feed one flow.
    pub fn observe(&mut self, flow: &Flow) {
        if self.detected.contains(&flow.src.raw()) {
            return;
        }
        // Payload-bearing traffic is not scanning.
        if flow.payload_bearing() {
            return;
        }
        let abs_hour = flow.start_secs.div_euclid(3600);
        let st = self.state.entry(flow.src.raw()).or_default();
        if st.hour != abs_hour {
            st.hour = abs_hour;
            st.dsts.clear();
        }
        st.dsts.insert(flow.dst.raw());
        if st.dsts.len() >= self.config.hourly_threshold {
            self.detected.insert(flow.src.raw());
            self.state.remove(&flow.src.raw());
        }
    }

    /// Drop per-hour tracking state (call between days to bound memory);
    /// detections are kept.
    pub fn flush_window_state(&mut self) {
        self.state.clear();
    }

    /// Fold another detector's detections into this one. Used to combine
    /// per-day shards of the pipeline: because detection state is scoped
    /// to a single hour and every shard covers whole days, a shard that
    /// has completed its window (`flush_window_state`) carries no
    /// cross-shard hour state, so the union of per-shard detections
    /// equals the sequential sweep.
    pub fn merge(&mut self, other: HourlyFanoutDetector) {
        debug_assert!(
            other.state.is_empty(),
            "merge requires flushed window state"
        );
        for src in other.detected {
            self.detected.insert(src);
            self.state.remove(&src);
        }
    }

    /// Sources flagged as scanners so far.
    pub fn detected(&self) -> IpSet {
        IpSet::from_raw(self.detected.iter().copied().collect())
    }

    /// Whether a source has been flagged.
    pub fn is_detected(&self, ip: Ip) -> bool {
        self.detected.contains(&ip.raw())
    }

    /// Number of flagged sources.
    pub fn detected_count(&self) -> usize {
        self.detected.len()
    }
}

/// Configuration for the TRW detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrwConfig {
    /// P(connection succeeds | benign host).
    pub theta0: f64,
    /// P(connection succeeds | scanner).
    pub theta1: f64,
    /// Upper likelihood threshold η₁ (flag as scanner when crossed).
    pub eta1: f64,
    /// Lower likelihood threshold η₀ (declare benign when crossed).
    pub eta0: f64,
}

impl Default for TrwConfig {
    fn default() -> TrwConfig {
        // The parameters of Jung et al. (2004): θ₀ = 0.8, θ₁ = 0.2, with
        // thresholds from α = 0.01, β = 0.99-style odds.
        TrwConfig {
            theta0: 0.8,
            theta1: 0.2,
            eta1: 100.0,
            eta0: 0.01,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TrwState {
    Walking(f64),
    Scanner,
    Benign,
}

/// Threshold Random Walk scan detection over flow outcomes.
#[derive(Debug, Clone)]
pub struct TrwDetector {
    config: TrwConfig,
    state: HashMap<u32, TrwState>,
}

impl TrwDetector {
    /// A detector with the given configuration.
    pub fn new(config: TrwConfig) -> TrwDetector {
        assert!(
            config.theta1 < config.theta0,
            "scanners succeed less than benign hosts"
        );
        assert!(config.eta0 < 1.0 && 1.0 < config.eta1);
        TrwDetector {
            config,
            state: HashMap::new(),
        }
    }

    /// Feed one flow; success = payload-bearing, failure = anything else.
    pub fn observe(&mut self, flow: &Flow) {
        let entry = self
            .state
            .entry(flow.src.raw())
            .or_insert(TrwState::Walking(1.0));
        let TrwState::Walking(lambda) = entry else {
            return;
        };
        let c = &self.config;
        let ratio = if flow.payload_bearing() {
            c.theta1 / c.theta0
        } else {
            (1.0 - c.theta1) / (1.0 - c.theta0)
        };
        let next = *lambda * ratio;
        *entry = if next >= c.eta1 {
            TrwState::Scanner
        } else if next <= c.eta0 {
            TrwState::Benign
        } else {
            TrwState::Walking(next)
        };
    }

    /// Sources currently flagged as scanners.
    pub fn detected(&self) -> IpSet {
        IpSet::from_raw(
            self.state
                .iter()
                .filter(|(_, s)| matches!(s, TrwState::Scanner))
                .map(|(&a, _)| a)
                .collect(),
        )
    }

    /// Sources adjudicated benign (walk hit the lower threshold).
    pub fn cleared_count(&self) -> usize {
        self.state
            .values()
            .filter(|s| matches!(s, TrwState::Benign))
            .count()
    }

    /// Whether a source has been flagged.
    pub fn is_detected(&self, ip: Ip) -> bool {
        matches!(self.state.get(&ip.raw()), Some(TrwState::Scanner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_flowgen::record::{proto, tcp_flags};

    fn probe(src: &str, dst_low: u32, hour: i64) -> Flow {
        Flow {
            src: src.parse().expect("ok"),
            dst: Ip(0x1e00_0000 + dst_low),
            src_port: 40_000,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: hour * 3600 + (dst_low as i64 % 3000),
            duration_secs: 0,
        }
    }

    fn benign_flow(src: &str, dst_low: u32, hour: i64) -> Flow {
        Flow {
            dst_port: 80,
            packets: 10,
            octets: 10 * 40 + 1000,
            flags: tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH,
            ..probe(src, dst_low, hour)
        }
    }

    #[test]
    fn fanout_detects_fast_sweeps() {
        let mut d = HourlyFanoutDetector::new(FanoutConfig::default());
        for i in 0..100 {
            d.observe(&probe("9.1.1.1", i, 10));
        }
        assert!(d.is_detected("9.1.1.1".parse().expect("ok")));
        assert_eq!(d.detected_count(), 1);
        assert_eq!(d.detected().len(), 1);
    }

    #[test]
    fn fanout_misses_slow_scans() {
        // 25 distinct targets spread across 24 hours — under threshold in
        // every hour. The paper's §6.2 blind spot.
        let mut d = HourlyFanoutDetector::new(FanoutConfig::default());
        for i in 0..25 {
            d.observe(&probe("9.1.1.2", i, 10 + i as i64));
        }
        assert!(!d.is_detected("9.1.1.2".parse().expect("ok")));
    }

    #[test]
    fn fanout_ignores_benign_fanout() {
        // Even a chatty benign client (many payload flows) is never flagged.
        let mut d = HourlyFanoutDetector::new(FanoutConfig::default());
        for i in 0..200 {
            d.observe(&benign_flow("9.1.1.3", i, 10));
        }
        assert_eq!(d.detected_count(), 0);
    }

    #[test]
    fn fanout_hour_window_resets() {
        let mut d = HourlyFanoutDetector::new(FanoutConfig {
            hourly_threshold: 50,
        });
        // 40 targets in hour 10, 40 different ones in hour 11: no single
        // hour crosses 50.
        for i in 0..40 {
            d.observe(&probe("9.1.1.4", i, 10));
        }
        for i in 40..80 {
            d.observe(&probe("9.1.1.4", i, 11));
        }
        assert!(!d.is_detected("9.1.1.4".parse().expect("ok")));
    }

    #[test]
    fn fanout_repeat_dsts_do_not_count_twice() {
        let mut d = HourlyFanoutDetector::new(FanoutConfig {
            hourly_threshold: 10,
        });
        for _ in 0..100 {
            d.observe(&probe("9.1.1.5", 1, 10));
        }
        assert!(!d.is_detected("9.1.1.5".parse().expect("ok")));
    }

    #[test]
    fn fanout_flush_keeps_detections() {
        let mut d = HourlyFanoutDetector::new(FanoutConfig {
            hourly_threshold: 10,
        });
        for i in 0..20 {
            d.observe(&probe("9.1.1.6", i, 10));
        }
        d.flush_window_state();
        assert!(d.is_detected("9.1.1.6".parse().expect("ok")));
    }

    #[test]
    fn trw_flags_scanners_quickly() {
        let mut d = TrwDetector::new(TrwConfig::default());
        for i in 0..10 {
            d.observe(&probe("9.2.2.2", i, 5));
        }
        assert!(d.is_detected("9.2.2.2".parse().expect("ok")));
    }

    #[test]
    fn trw_clears_benign_hosts() {
        let mut d = TrwDetector::new(TrwConfig::default());
        for i in 0..10 {
            d.observe(&benign_flow("9.2.2.3", i, 5));
        }
        assert!(!d.is_detected("9.2.2.3".parse().expect("ok")));
        assert_eq!(d.cleared_count(), 1);
    }

    #[test]
    fn trw_mixed_traffic_walks_both_ways() {
        let mut d = TrwDetector::new(TrwConfig::default());
        let src = "9.2.2.4";
        // Alternating success/failure: the walk drifts with the failure
        // bias ((1-θ1)/(1-θ0) = 4 vs θ1/θ0 = 1/4 — exactly balanced), so
        // the host is neither flagged nor cleared after few events.
        for i in 0..6 {
            d.observe(&probe(src, i, 5));
            d.observe(&benign_flow(src, i, 5));
        }
        assert!(!d.is_detected(src.parse().expect("ok")));
        assert_eq!(d.cleared_count(), 0);
    }

    #[test]
    fn trw_detected_is_terminal() {
        let mut d = TrwDetector::new(TrwConfig::default());
        let src = "9.2.2.5";
        for i in 0..10 {
            d.observe(&probe(src, i, 5));
        }
        assert!(d.is_detected(src.parse().expect("ok")));
        // Later successes do not un-flag.
        for i in 0..50 {
            d.observe(&benign_flow(src, i, 6));
        }
        assert!(d.is_detected(src.parse().expect("ok")));
    }

    #[test]
    #[should_panic(expected = "succeed less")]
    fn trw_rejects_inverted_thetas() {
        let _ = TrwDetector::new(TrwConfig {
            theta0: 0.2,
            theta1: 0.8,
            ..TrwConfig::default()
        });
    }
}
