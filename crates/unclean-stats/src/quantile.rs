//! Interpolated quantile estimation.
//!
//! Uses the "linear interpolation of the empirical CDF" definition (type 7
//! in the Hyndman–Fan taxonomy, the R default), which is what the paper's
//! boxplots imply and what most plotting software computes.

use serde::{Deserialize, Serialize};

/// A probability in `[0, 1]` naming a quantile.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Quantile(f64);

impl Quantile {
    /// Construct a quantile, returning `None` outside `[0, 1]` or for NaN.
    pub fn new(p: f64) -> Option<Quantile> {
        (p.is_finite() && (0.0..=1.0).contains(&p)).then_some(Quantile(p))
    }

    /// The probability value.
    pub fn p(&self) -> f64 {
        self.0
    }

    /// The median.
    pub const MEDIAN: Quantile = Quantile(0.5);
    /// Lower quartile.
    pub const Q1: Quantile = Quantile(0.25);
    /// Upper quartile.
    pub const Q3: Quantile = Quantile(0.75);
    /// The paper's 95% decision threshold (§5.2).
    pub const P95: Quantile = Quantile(0.95);
}

/// Interpolated quantile of an **already sorted, non-empty** slice.
///
/// `p` is clamped to `[0, 1]`. For an empty slice this returns NaN — callers
/// holding possibly-empty data should check first (the public types in this
/// crate all do).
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let p = p.clamp(0.0, 1.0);
    let h = p * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Convenience: copy, sort, and take a quantile of unsorted data.
/// Returns `None` for empty input or input containing NaN.
pub fn quantile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
    Some(quantile_sorted(&sorted, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_bounds() {
        assert!(Quantile::new(-0.1).is_none());
        assert!(Quantile::new(1.1).is_none());
        assert!(Quantile::new(f64::NAN).is_none());
        assert_eq!(Quantile::new(0.5).map(|q| q.p()), Some(0.5));
        assert_eq!(Quantile::MEDIAN.p(), 0.5);
        assert_eq!(Quantile::P95.p(), 0.95);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [1.0, 5.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.5), Some(2.5));
    }

    #[test]
    fn type7_matches_r_reference() {
        // R: quantile(c(10,20,30,40,50), 0.4, type=7) == 26
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert!((quantile(&v, 0.4).expect("some") - 26.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(quantile(&[], 0.5).is_none());
        assert!(quantile(&[f64::NAN], 0.5).is_none());
        assert!(quantile_sorted(&[], 0.5).is_nan());
    }

    #[test]
    fn clamps_out_of_range_p() {
        let v = [1.0, 2.0, 3.0];
        assert_eq!(quantile_sorted(&v, -3.0), 1.0);
        assert_eq!(quantile_sorted(&v, 7.0), 3.0);
    }

    #[test]
    fn monotone_in_p() {
        let v: Vec<f64> = (0..100).map(|i| (i * 7 % 100) as f64).collect();
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = quantile_sorted(&sorted, i as f64 / 20.0);
            assert!(q >= last);
            last = q;
        }
    }
}
