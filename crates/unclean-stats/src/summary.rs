//! Single-pass summary statistics and five-number (boxplot) summaries.
//!
//! The paper renders control distributions as boxplots (Figures 2–5). A
//! [`FiveNumber`] is exactly the data a boxplot draws: minimum, lower
//! quartile, median, upper quartile, maximum. [`Summary`] additionally
//! carries mean and variance, computed with Welford's algorithm so large
//! ensembles do not lose precision.

use crate::quantile::quantile_sorted;
use serde::{Deserialize, Serialize};

/// Mean/variance/extent of a sample, accumulated in one numerically stable
/// pass (Welford's online algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// An empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Accumulate one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = v - self.mean;
        self.m2 += delta * delta2;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// The five numbers a boxplot draws, plus the sample size and mean for
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Sample size.
    pub count: usize,
    /// Minimum (lower whisker extent; we do not clip outliers).
    pub min: f64,
    /// Lower quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Upper quartile (75th percentile).
    pub q3: f64,
    /// Maximum (upper whisker extent).
    pub max: f64,
    /// Arithmetic mean, carried along for tables.
    pub mean: f64,
}

impl FiveNumber {
    /// Compute a five-number summary. The input is copied and sorted; NaN
    /// values are rejected.
    ///
    /// Returns `None` for an empty sample or a sample containing NaN.
    pub fn of(values: &[f64]) -> Option<FiveNumber> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(FiveNumber {
            count: sorted.len(),
            min: sorted[0],
            q1: quantile_sorted(&sorted, 0.25),
            median: quantile_sorted(&sorted, 0.5),
            q3: quantile_sorted(&sorted, 0.75),
            max: *sorted.last().expect("non-empty"),
            mean,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Whether `v` lies strictly below every observation in the sample.
    pub fn all_above(&self, v: f64) -> bool {
        v < self.min
    }

    /// Whether `v` lies strictly above every observation in the sample.
    pub fn all_below(&self, v: f64) -> bool {
        v > self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_identity() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn summary_matches_naive_mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = Summary::of(&data);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance of this classic data set is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let whole = Summary::of(&data);
        let mut left = Summary::of(&data[..337]);
        let right = Summary::of(&data[337..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_noop() {
        let mut s = Summary::of(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn five_number_of_empty_is_none() {
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn five_number_rejects_nan() {
        assert!(FiveNumber::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn five_number_of_singleton() {
        let f = FiveNumber::of(&[42.0]).expect("non-empty");
        assert_eq!(f.min, 42.0);
        assert_eq!(f.q1, 42.0);
        assert_eq!(f.median, 42.0);
        assert_eq!(f.q3, 42.0);
        assert_eq!(f.max, 42.0);
        assert_eq!(f.mean, 42.0);
        assert_eq!(f.iqr(), 0.0);
    }

    #[test]
    fn five_number_known_quartiles() {
        // 1..=9: median 5, quartiles at interpolated positions.
        let data: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let f = FiveNumber::of(&data).expect("non-empty");
        assert_eq!(f.median, 5.0);
        assert_eq!(f.min, 1.0);
        assert_eq!(f.max, 9.0);
        assert_eq!(f.q1, 3.0);
        assert_eq!(f.q3, 7.0);
    }

    #[test]
    fn five_number_order_independent() {
        let a = FiveNumber::of(&[3.0, 1.0, 2.0]).expect("some");
        let b = FiveNumber::of(&[1.0, 2.0, 3.0]).expect("some");
        assert_eq!(a, b);
    }

    #[test]
    fn all_above_below() {
        let f = FiveNumber::of(&[10.0, 20.0, 30.0]).expect("some");
        assert!(f.all_above(9.0));
        assert!(!f.all_above(10.0));
        assert!(f.all_below(31.0));
        assert!(!f.all_below(30.0));
    }
}
