//! Fixed-width histograms for diagnostics.
//!
//! Used by the synthetic-population diagnostics (per-/24 host-count
//! distributions, infection-duration distributions) and by the experiment
//! binaries when dumping distribution sanity checks alongside figures.

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with values outside the range
/// accumulated into underflow/overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// A histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// Panics if `bins == 0` or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() || v < self.lo {
            self.underflow += 1;
        } else if v >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((v - self.lo) / w) as usize;
            // Floating point can land exactly on the upper edge.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Record many observations.
    pub fn extend(&mut self, vs: impl IntoIterator<Item = f64>) {
        for v in vs {
            self.record(v);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(lo, hi)` edges of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Render as an ASCII bar chart (for experiment binary diagnostics).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let (lo, hi) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * width) / max as usize);
            out.push_str(&format!("[{lo:>10.2}, {hi:>10.2})  {c:>8}  {bar}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_receive_correct_values() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.extend([0.0, 1.9, 2.0, 5.5, 9.999]);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.extend([-0.5, 0.5, 1.0, 2.0, f64::NAN]);
        assert_eq!(h.underflow(), 2); // -0.5 and NaN
        assert_eq!(h.overflow(), 2); // 1.0 (half-open) and 2.0
        assert_eq!(h.counts(), &[0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn bin_edges_partition_range() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 2.5));
        assert_eq!(h.bin_edges(3), (7.5, 10.0));
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn render_is_stable() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.extend([0.5, 0.6, 1.5]);
        let s = h.render(10);
        assert!(
            s.contains("##########"),
            "fullest bin renders at full width:\n{s}"
        );
        assert_eq!(s.lines().count(), 2);
    }
}
