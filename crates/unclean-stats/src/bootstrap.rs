//! Bootstrap confidence intervals.
//!
//! The paper reports point observations against trial distributions; when
//! *we* report derived ratios (precision at /24, density ratios, overlap
//! lifts) it is honest to attach uncertainty. With no closed forms for
//! ratios of clustered counts, the percentile bootstrap is the right tool:
//! resample the observations with replacement, recompute the statistic,
//! take quantiles of the resampled distribution.

use crate::quantile::quantile_sorted;
use crate::rng::SeedTree;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval from a percentile bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate (the statistic on the un-resampled data).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether a value lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap of an arbitrary statistic of a sample.
///
/// `statistic` receives a resampled view of `data` (same length, drawn
/// with replacement) and must return a finite value. Deterministic for a
/// fixed seed tree. Panics on an empty sample, a nonsensical confidence
/// level, or zero resamples.
pub fn bootstrap_ci<T: Copy>(
    data: &[T],
    statistic: impl Fn(&[T]) -> f64,
    resamples: usize,
    level: f64,
    seeds: &SeedTree,
) -> ConfidenceInterval {
    assert!(!data.is_empty(), "cannot bootstrap an empty sample");
    assert!(resamples > 0, "need at least one resample");
    assert!(
        (0.5..1.0).contains(&level),
        "confidence level {level} out of (0.5, 1.0)"
    );
    let estimate = statistic(data);
    assert!(estimate.is_finite(), "statistic must be finite on the data");

    let mut stats = Vec::with_capacity(resamples);
    let mut buf: Vec<T> = Vec::with_capacity(data.len());
    for r in 0..resamples {
        let mut rng = seeds.stream_idx(r as u64);
        buf.clear();
        for _ in 0..data.len() {
            buf.push(data[rng.gen_range(0..data.len())]);
        }
        let v = statistic(&buf);
        assert!(v.is_finite(), "statistic must be finite on resamples");
        stats.push(v);
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let alpha = (1.0 - level) / 2.0;
    ConfidenceInterval {
        estimate,
        lo: quantile_sorted(&stats, alpha),
        hi: quantile_sorted(&stats, 1.0 - alpha),
        level,
    }
}

/// Convenience: bootstrap CI of a mean.
pub fn bootstrap_mean_ci(
    data: &[f64],
    resamples: usize,
    level: f64,
    seeds: &SeedTree,
) -> ConfidenceInterval {
    bootstrap_ci(
        data,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        seeds,
    )
}

/// Convenience: bootstrap CI of a proportion over boolean outcomes.
pub fn bootstrap_proportion_ci(
    outcomes: &[bool],
    resamples: usize,
    level: f64,
    seeds: &SeedTree,
) -> ConfidenceInterval {
    bootstrap_ci(
        outcomes,
        |s| s.iter().filter(|&&b| b).count() as f64 / s.len() as f64,
        resamples,
        level,
        seeds,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_ci_covers_the_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let ci = bootstrap_mean_ci(&data, 500, 0.95, &SeedTree::new(1));
        assert!((ci.estimate - 4.5).abs() < 1e-9);
        assert!(ci.contains(4.5));
        assert!(ci.lo < ci.estimate && ci.estimate < ci.hi);
        assert!(ci.width() < 1.0, "200 observations pin the mean tightly");
    }

    #[test]
    fn proportion_ci() {
        let outcomes: Vec<bool> = (0..300).map(|i| i % 10 < 9).collect();
        let ci = bootstrap_proportion_ci(&outcomes, 400, 0.95, &SeedTree::new(2));
        assert!((ci.estimate - 0.9).abs() < 1e-9);
        assert!(ci.contains(0.9));
        assert!(ci.lo > 0.8 && ci.hi < 1.0);
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let data = vec![7.0; 50];
        let ci = bootstrap_mean_ci(&data, 100, 0.95, &SeedTree::new(3));
        assert_eq!(ci.lo, 7.0);
        assert_eq!(ci.hi, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn wider_level_widens_interval() {
        let data: Vec<f64> = (0..60).map(|i| ((i * 37) % 100) as f64).collect();
        let seeds = SeedTree::new(4);
        let ci90 = bootstrap_mean_ci(&data, 400, 0.90, &seeds);
        let ci99 = bootstrap_mean_ci(&data, 400, 0.99, &seeds);
        assert!(ci99.width() > ci90.width());
    }

    #[test]
    fn deterministic() {
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&data, 200, 0.95, &SeedTree::new(5));
        let b = bootstrap_mean_ci(&data, 200, 0.95, &SeedTree::new(5));
        assert_eq!(a, b);
    }

    #[test]
    fn custom_statistic_median() {
        let data: Vec<f64> = (1..=99).map(f64::from).collect();
        let ci = bootstrap_ci(
            &data,
            |s| {
                let mut v = s.to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                v[v.len() / 2]
            },
            300,
            0.95,
            &SeedTree::new(6),
        );
        assert!(ci.contains(50.0));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_rejected() {
        let _ = bootstrap_mean_ci(&[], 10, 0.95, &SeedTree::new(1));
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_rejected() {
        let _ = bootstrap_mean_ci(&[1.0], 10, 1.5, &SeedTree::new(1));
    }
}
