//! Exceedance-fraction hypothesis tests.
//!
//! §5.2 of the paper: *"We consider `bot-test` to be a better predictor than
//! `control` if the cardinality of its intersection with the corresponding
//! unclean report is higher than the intersection with randomly selected
//! addresses in 95% of the observed cases."* This module encodes that
//! decision rule, per x-axis position, against an [`Ensemble`].

use crate::ensemble::Ensemble;
use serde::{Deserialize, Serialize};

/// Fraction of `samples` that `observed` strictly exceeds.
pub fn exceedance_fraction(observed: f64, samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| observed > s).count() as f64 / samples.len() as f64
}

/// Per-x verdict of an exceedance test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Observed beats the control draw in at least the threshold fraction
    /// of trials ("better predictor" in the paper's language).
    Better,
    /// Control beats the observed value in at least the threshold fraction
    /// of trials.
    Worse,
    /// Neither dominates at the threshold.
    Indistinguishable,
}

/// Result of testing an observed curve against an ensemble at a confidence
/// threshold (the paper uses 0.95).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExceedanceTest {
    /// x-axis (CIDR prefix lengths in the paper's analyses).
    pub xs: Vec<u32>,
    /// Observed y per x.
    pub observed: Vec<f64>,
    /// Fraction of trials the observation exceeds, per x.
    pub exceed_fraction: Vec<f64>,
    /// Fraction of trials exceeding the observation, per x.
    pub deceed_fraction: Vec<f64>,
    /// The decision threshold used.
    pub threshold: f64,
    /// Per-x verdicts.
    pub verdicts: Vec<Verdict>,
}

impl ExceedanceTest {
    /// Run the test: `observed[i]` against `ensemble.samples_at(i)`.
    ///
    /// Panics if `observed` does not match the ensemble's x-axis length or
    /// the threshold is outside `(0.5, 1.0]` (a threshold at or below 0.5
    /// would let both verdicts hold at once).
    pub fn run(ensemble: &Ensemble, observed: &[f64], threshold: f64) -> ExceedanceTest {
        assert_eq!(
            observed.len(),
            ensemble.xs().len(),
            "observed curve and ensemble must share an x-axis"
        );
        assert!(
            threshold > 0.5 && threshold <= 1.0,
            "threshold must be in (0.5, 1.0], got {threshold}"
        );
        let mut exceed = Vec::with_capacity(observed.len());
        let mut deceed = Vec::with_capacity(observed.len());
        let mut verdicts = Vec::with_capacity(observed.len());
        for (i, &obs) in observed.iter().enumerate() {
            let ex = exceedance_fraction(obs, ensemble.samples_at(i));
            let de = ensemble.fraction_above(i, obs);
            exceed.push(ex);
            deceed.push(de);
            verdicts.push(if ex >= threshold {
                Verdict::Better
            } else if de >= threshold {
                Verdict::Worse
            } else {
                Verdict::Indistinguishable
            });
        }
        ExceedanceTest {
            xs: ensemble.xs().to_vec(),
            observed: observed.to_vec(),
            exceed_fraction: exceed,
            deceed_fraction: deceed,
            threshold,
            verdicts,
        }
    }

    /// The x-values where the observation is `Better`.
    pub fn better_xs(&self) -> Vec<u32> {
        self.xs
            .iter()
            .zip(&self.verdicts)
            .filter(|(_, v)| **v == Verdict::Better)
            .map(|(&x, _)| x)
            .collect()
    }

    /// The maximal contiguous run of x-values verdicted `Better`, as an
    /// inclusive `(lo, hi)` range. The paper reports predictive bands this
    /// way ("between 20 and 25 bits").
    pub fn better_band(&self) -> Option<(u32, u32)> {
        let mut best: Option<(u32, u32)> = None;
        let mut cur: Option<(u32, u32)> = None;
        for (&x, v) in self.xs.iter().zip(&self.verdicts) {
            if *v == Verdict::Better {
                cur = Some(match cur {
                    Some((lo, _)) => (lo, x),
                    None => (x, x),
                });
                let c = cur.expect("just set");
                best = Some(match best {
                    Some(b) if b.1 - b.0 >= c.1 - c.0 => b,
                    _ => c,
                });
            } else {
                cur = None;
            }
        }
        best
    }

    /// True if any x position is verdicted `Better` — the paper's Eq. 5
    /// existential ("∃ n ∈ [16, 32] s.t. ...").
    pub fn any_better(&self) -> bool {
        self.verdicts.contains(&Verdict::Better)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::Ensemble;

    fn fixed_ensemble() -> Ensemble {
        // Two x positions; samples 0..10 at each.
        let samples: Vec<f64> = (0..10).map(|i| i as f64).collect();
        Ensemble::from_parts(vec![20, 21], vec![samples.clone(), samples])
    }

    #[test]
    fn exceedance_fraction_basics() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(exceedance_fraction(5.0, &s), 1.0);
        assert_eq!(exceedance_fraction(0.0, &s), 0.0);
        assert_eq!(exceedance_fraction(2.5, &s), 0.5);
        // Strict: ties do not count as exceedance.
        assert_eq!(exceedance_fraction(2.0, &s), 0.25);
        assert_eq!(exceedance_fraction(1.0, &[]), 0.0);
    }

    #[test]
    fn verdicts_at_95() {
        let e = fixed_ensemble();
        // Observed 100 beats all 10 samples; observed -1 loses to all.
        let t = ExceedanceTest::run(&e, &[100.0, -1.0], 0.95);
        assert_eq!(t.verdicts, vec![Verdict::Better, Verdict::Worse]);
        assert!(t.any_better());
        assert_eq!(t.better_xs(), vec![20]);
    }

    #[test]
    fn middle_values_are_indistinguishable() {
        let e = fixed_ensemble();
        let t = ExceedanceTest::run(&e, &[5.0, 5.0], 0.95);
        assert!(t.verdicts.iter().all(|v| *v == Verdict::Indistinguishable));
        assert!(!t.any_better());
        assert!(t.better_band().is_none());
    }

    #[test]
    fn better_band_finds_longest_run() {
        let samples: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let e = Ensemble::from_parts(vec![16, 17, 18, 19, 20, 21], vec![samples.clone(); 6]);
        // Better at 17, and at 19-21 (longest run).
        let obs = [0.0, 99.0, 0.0, 99.0, 99.0, 99.0];
        let t = ExceedanceTest::run(&e, &obs, 0.95);
        assert_eq!(t.better_band(), Some((19, 21)));
        assert_eq!(t.better_xs(), vec![17, 19, 20, 21]);
    }

    #[test]
    #[should_panic(expected = "share an x-axis")]
    fn mismatched_lengths_rejected() {
        let e = fixed_ensemble();
        let _ = ExceedanceTest::run(&e, &[1.0], 0.95);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_must_be_meaningful() {
        let e = fixed_ensemble();
        let _ = ExceedanceTest::run(&e, &[1.0, 1.0], 0.4);
    }
}
