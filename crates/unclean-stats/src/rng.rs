//! Deterministic seeded RNG streams.
//!
//! Every experiment in this repository is driven from a single master seed.
//! [`SeedTree`] fans that seed out into independent named streams so that
//! adding a new consumer of randomness never perturbs the draws seen by
//! existing consumers — the classic "seed hygiene" problem in simulation
//! studies. Streams are ChaCha8: fast, splittable by construction, and with
//! a stable algorithm across library versions (unlike `StdRng`, whose
//! algorithm is explicitly allowed to change).

use rand_chacha::rand_core::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A hierarchical, deterministic seed derivation tree.
///
/// ```
/// use unclean_stats::SeedTree;
///
/// let root = SeedTree::new(42);
/// let mut a = root.stream("population");
/// let mut b = root.stream("compromise");
/// // Independent streams: same master seed, different labels.
/// use rand::RngCore;
/// assert_ne!(a.next_u64(), b.next_u64());
/// // Deterministic: rebuilding yields identical draws.
/// let mut a2 = SeedTree::new(42).stream("population");
/// assert_eq!(SeedTree::new(42).stream("population").next_u64(), a2.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    state: u64,
}

impl SeedTree {
    /// Root of the tree, from a user-facing master seed.
    pub fn new(master: u64) -> SeedTree {
        SeedTree {
            state: splitmix64(master ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Derive a labelled child tree. Labels are hashed with FNV-1a so the
    /// derivation is stable across platforms and compiler versions.
    pub fn child(&self, label: &str) -> SeedTree {
        SeedTree {
            state: splitmix64(self.state ^ fnv1a(label.as_bytes())),
        }
    }

    /// Derive an indexed child tree (for per-trial streams).
    pub fn child_idx(&self, index: u64) -> SeedTree {
        SeedTree {
            state: splitmix64(
                self.state
                    .wrapping_add(0x632b_e593_04b4_b0c7)
                    .wrapping_mul(index | 1)
                    ^ index,
            ),
        }
    }

    /// Materialize a labelled RNG stream.
    pub fn stream(&self, label: &str) -> ChaCha8Rng {
        self.child(label).rng()
    }

    /// Materialize an indexed RNG stream (e.g. one per ensemble trial).
    pub fn stream_idx(&self, index: u64) -> ChaCha8Rng {
        self.child_idx(index).rng()
    }

    /// Materialize this node as an RNG.
    pub fn rng(&self) -> ChaCha8Rng {
        let mut seed = [0u8; 32];
        let mut s = self.state;
        for chunk in seed.chunks_exact_mut(8) {
            s = splitmix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// The raw 64-bit state (useful for logging which seed produced a run).
    pub fn raw(&self) -> u64 {
        self.state
    }
}

/// SplitMix64 — the standard seed-expansion permutation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over bytes — stable label hashing.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Draw `k` distinct indices from `0..n` (uniform, without replacement),
/// returned in ascending order.
///
/// Uses Floyd's algorithm: O(k) expected insertions, no O(n) allocation, so
/// sampling 600k indices out of 47M is cheap. Panics if `k > n`.
pub fn sample_indices(rng: &mut impl RngCore, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    use std::collections::HashSet;
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k * 2);
    // Floyd's algorithm: for j in n-k..n, pick t in [0, j]; insert t or j.
    for j in (n - k)..n {
        let t = (rng.next_u64() % (j as u64 + 1)) as usize;
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut out: Vec<usize> = chosen.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let t1 = SeedTree::new(7);
        let t2 = SeedTree::new(7);
        assert_eq!(t1.stream("x").next_u64(), t2.stream("x").next_u64());
        assert_eq!(t1.stream_idx(3).next_u64(), t2.stream_idx(3).next_u64());
    }

    #[test]
    fn streams_differ_by_label_and_index() {
        let t = SeedTree::new(7);
        assert_ne!(t.stream("x").next_u64(), t.stream("y").next_u64());
        assert_ne!(t.stream_idx(0).next_u64(), t.stream_idx(1).next_u64());
        assert_ne!(
            SeedTree::new(7).rng().next_u64(),
            SeedTree::new(8).rng().next_u64()
        );
    }

    #[test]
    fn children_nest() {
        let t = SeedTree::new(1);
        let a = t.child("a").child("b");
        let b = t.child("a").child("b");
        assert_eq!(a.raw(), b.raw());
        assert_ne!(a.raw(), t.child("b").child("a").raw());
    }

    #[test]
    fn sample_indices_basic_properties() {
        let mut rng = SeedTree::new(3).stream("s");
        let s = sample_indices(&mut rng, 1000, 100);
        assert_eq!(s.len(), 100);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(s.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = SeedTree::new(3).stream("s");
        let s = sample_indices(&mut rng, 50, 50);
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_empty() {
        let mut rng = SeedTree::new(3).stream("s");
        assert!(sample_indices(&mut rng, 10, 0).is_empty());
        assert!(sample_indices(&mut rng, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversample() {
        let mut rng = SeedTree::new(3).stream("s");
        let _ = sample_indices(&mut rng, 5, 6);
    }

    #[test]
    fn sample_indices_never_allocates_the_population() {
        // Floyd's algorithm touches O(k) memory. Draw a tiny sample from a
        // population so large (2^50) that any O(n) scratch — a shuffle
        // buffer, a bitmap, even one bit per element — would exhaust
        // memory; completing at all proves the scratch scales with k.
        let mut rng = SeedTree::new(5).stream("huge");
        let n = 1usize << 50;
        let s = sample_indices(&mut rng, n, 64);
        assert_eq!(s.len(), 64);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        // Chi-square-ish sanity: each decile of [0, 1000) should receive
        // roughly k/10 picks over many trials.
        let t = SeedTree::new(11);
        let mut counts = [0usize; 10];
        for trial in 0..200 {
            let mut rng = t.stream_idx(trial);
            for i in sample_indices(&mut rng, 1000, 50) {
                counts[i / 100] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 200 * 50);
        for &c in &counts {
            let expected = total as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "decile count {c} too far from {expected}"
            );
        }
    }
}
