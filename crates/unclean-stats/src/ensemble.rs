//! Trial ensembles over a shared x-axis.
//!
//! The paper's reference distributions come from repeating an analysis over
//! 1000 randomly drawn control subsets and summarizing, per x-value (CIDR
//! prefix length), the distribution of the resulting y-values (block counts
//! or intersection counts). [`Ensemble`] holds that per-x sample matrix;
//! [`EnsembleBuilder::run`] executes the trials across threads with one
//! deterministic RNG stream per trial, so parallel and serial execution
//! produce identical results.

use crate::rng::SeedTree;
use crate::summary::FiveNumber;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use unclean_telemetry::Counter;

/// A completed ensemble: for each x-axis position, the y-values produced by
/// every trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ensemble {
    xs: Vec<u32>,
    /// `samples[i]` holds one y-value per trial, for x = `xs[i]`.
    samples: Vec<Vec<f64>>,
}

impl Ensemble {
    /// Construct from raw parts. `samples` must be one vector per x, all of
    /// equal length (one entry per trial).
    pub fn from_parts(xs: Vec<u32>, samples: Vec<Vec<f64>>) -> Ensemble {
        assert_eq!(xs.len(), samples.len(), "one sample vector per x");
        if let Some(first) = samples.first() {
            assert!(
                samples.iter().all(|s| s.len() == first.len()),
                "ragged ensemble: all x positions must have the same trial count"
            );
        }
        Ensemble { xs, samples }
    }

    /// The shared x-axis.
    pub fn xs(&self) -> &[u32] {
        &self.xs
    }

    /// Number of trials.
    pub fn trials(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// The raw trial values at x-index `i`.
    pub fn samples_at(&self, i: usize) -> &[f64] {
        &self.samples[i]
    }

    /// The raw trial values for an x-axis *value* (not index).
    pub fn samples_for(&self, x: u32) -> Option<&[f64]> {
        self.xs
            .iter()
            .position(|&v| v == x)
            .map(|i| self.samples[i].as_slice())
    }

    /// Boxplot summaries per x position, in x order.
    pub fn five_numbers(&self) -> Vec<(u32, FiveNumber)> {
        self.xs
            .iter()
            .zip(&self.samples)
            .map(|(&x, s)| {
                (
                    x,
                    FiveNumber::of(s).expect("ensembles are non-empty and finite"),
                )
            })
            .collect()
    }

    /// Fraction of trials at x-index `i` with y strictly less than `v`.
    pub fn fraction_below(&self, i: usize, v: f64) -> f64 {
        let s = &self.samples[i];
        if s.is_empty() {
            return 0.0;
        }
        s.iter().filter(|&&y| y < v).count() as f64 / s.len() as f64
    }

    /// Fraction of trials at x-index `i` with y strictly greater than `v`.
    pub fn fraction_above(&self, i: usize, v: f64) -> f64 {
        let s = &self.samples[i];
        if s.is_empty() {
            return 0.0;
        }
        s.iter().filter(|&&y| y > v).count() as f64 / s.len() as f64
    }
}

/// Runs N trials, each producing a curve over a fixed x-axis.
#[derive(Debug, Clone)]
pub struct EnsembleBuilder {
    xs: Vec<u32>,
    trials: usize,
    threads: usize,
    progress: Counter,
}

impl EnsembleBuilder {
    /// An ensemble over the given x-axis with `trials` repetitions.
    /// Defaults to one worker per available core.
    pub fn new(xs: Vec<u32>, trials: usize) -> EnsembleBuilder {
        EnsembleBuilder {
            xs,
            trials,
            threads: 0,
            progress: Counter::disabled(),
        }
    }

    /// Set the worker thread count (1 = serial, 0 = one per core).
    pub fn threads(mut self, n: usize) -> EnsembleBuilder {
        self.threads = n;
        self
    }

    /// Bump `counter` once per completed trial, from whichever worker
    /// thread finished it (counters are lock-free and thread-safe).
    pub fn count_into(mut self, counter: Counter) -> EnsembleBuilder {
        self.progress = counter;
        self
    }

    /// Execute the ensemble on the shared work-stealing executor.
    ///
    /// `trial` receives the trial index, a ChaCha8 RNG derived from
    /// `seeds.stream_idx(index)`, and the x-axis; it must return one y per
    /// x. Trials are distributed over the pool's workers; determinism is
    /// preserved because each trial's randomness depends only on its index
    /// and results come back in trial order regardless of scheduling.
    pub fn run<F>(&self, seeds: &SeedTree, trial: F) -> Ensemble
    where
        F: Fn(usize, &mut ChaCha8Rng, &[u32]) -> Vec<f64> + Sync,
    {
        let pool = crossbeam::executor::Executor::new(self.threads);
        let rows: Vec<Vec<f64>> = pool.run_indexed(self.trials, |idx| {
            let mut rng = seeds.stream_idx(idx as u64);
            let ys = trial(idx, &mut rng, &self.xs);
            assert_eq!(
                ys.len(),
                self.xs.len(),
                "trial {idx} returned {} y-values for {} x positions",
                ys.len(),
                self.xs.len()
            );
            self.progress.inc();
            ys
        });
        // Transpose rows (per-trial) into columns (per-x).
        let mut samples = vec![Vec::with_capacity(self.trials); self.xs.len()];
        for row in &rows {
            for (col, &y) in samples.iter_mut().zip(row) {
                col.push(y);
            }
        }
        Ensemble::from_parts(self.xs.clone(), samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_trial(idx: usize, _rng: &mut ChaCha8Rng, xs: &[u32]) -> Vec<f64> {
        xs.iter().map(|&x| (x as f64) * 10.0 + idx as f64).collect()
    }

    #[test]
    fn ensemble_shape() {
        let e = EnsembleBuilder::new(vec![16, 17, 18], 5).run(&SeedTree::new(1), toy_trial);
        assert_eq!(e.xs(), &[16, 17, 18]);
        assert_eq!(e.trials(), 5);
        assert_eq!(e.samples_at(0), &[160.0, 161.0, 162.0, 163.0, 164.0]);
        assert_eq!(
            e.samples_for(18).expect("x exists"),
            &[180.0, 181.0, 182.0, 183.0, 184.0]
        );
        assert!(e.samples_for(99).is_none());
    }

    #[test]
    fn parallel_equals_serial() {
        let seeds = SeedTree::new(99);
        let trial = |_idx: usize, rng: &mut ChaCha8Rng, xs: &[u32]| {
            use rand::Rng;
            xs.iter()
                .map(|&x| x as f64 + rng.gen_range(0.0..1.0))
                .collect::<Vec<_>>()
        };
        let serial = EnsembleBuilder::new(vec![1, 2, 3, 4], 17)
            .threads(1)
            .run(&seeds, trial);
        let parallel = EnsembleBuilder::new(vec![1, 2, 3, 4], 17)
            .threads(8)
            .run(&seeds, trial);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn five_numbers_per_x() {
        let e = EnsembleBuilder::new(vec![16, 17], 9).run(&SeedTree::new(1), toy_trial);
        let fives = e.five_numbers();
        assert_eq!(fives.len(), 2);
        let (x, f) = fives[0];
        assert_eq!(x, 16);
        assert_eq!(f.min, 160.0);
        assert_eq!(f.max, 168.0);
        assert_eq!(f.median, 164.0);
    }

    #[test]
    fn fraction_below_and_above() {
        let e = Ensemble::from_parts(vec![1], vec![vec![1.0, 2.0, 3.0, 4.0]]);
        assert_eq!(e.fraction_below(0, 2.5), 0.5);
        assert_eq!(e.fraction_above(0, 2.5), 0.5);
        assert_eq!(e.fraction_below(0, 0.0), 0.0);
        assert_eq!(e.fraction_above(0, 0.0), 1.0);
        // Strict comparison: equal values count in neither direction.
        assert_eq!(e.fraction_below(0, 3.0), 0.5);
        assert_eq!(e.fraction_above(0, 3.0), 0.25);
    }

    #[test]
    fn count_into_counts_every_trial_across_threads() {
        let counter = Counter::standalone();
        let e = EnsembleBuilder::new(vec![1, 2], 23)
            .threads(8)
            .count_into(counter.clone())
            .run(&SeedTree::new(4), toy_trial);
        assert_eq!(e.trials(), 23);
        assert_eq!(counter.get(), 23, "one bump per completed trial");
    }

    #[test]
    fn zero_trials() {
        let e = EnsembleBuilder::new(vec![1, 2], 0).run(&SeedTree::new(1), toy_trial);
        assert_eq!(e.trials(), 0);
        assert_eq!(e.fraction_below(0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged ensemble")]
    fn ragged_rejected() {
        let _ = Ensemble::from_parts(vec![1, 2], vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
