//! ROC curves for the §6 blocking study.
//!
//! The paper evaluates predictive blocking with "ROC analysis: we compare
//! true positive rates and false positive rates against an operating
//! characteristic of the prefix length". Each prefix length n ∈ [24, 32]
//! yields one operating point; this module holds those points, derives
//! rates, and computes trapezoidal AUC.

use serde::{Deserialize, Serialize};

/// One operating point: raw true/false positive counts at a given operating
/// characteristic (prefix length in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Operating characteristic (the paper's prefix length n).
    pub characteristic: u32,
    /// True positives blocked at this operating point.
    pub true_positives: u64,
    /// False positives blocked at this operating point.
    pub false_positives: u64,
    /// Total real positives available (|hostile|).
    pub positives: u64,
    /// Total real negatives available (|innocent|).
    pub negatives: u64,
}

impl RocPoint {
    /// True positive rate; 0 when no positives exist.
    pub fn tpr(&self) -> f64 {
        if self.positives == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.positives as f64
        }
    }

    /// False positive rate; 0 when no negatives exist.
    pub fn fpr(&self) -> f64 {
        if self.negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.negatives as f64
        }
    }

    /// Precision over blocked addresses (the paper's "90% of the incoming
    /// addresses are correctly identified as hostile" at n = 24).
    pub fn precision(&self) -> f64 {
        let blocked = self.true_positives + self.false_positives;
        if blocked == 0 {
            0.0
        } else {
            self.true_positives as f64 / blocked as f64
        }
    }
}

/// An ROC curve: operating points ordered by characteristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Build a curve; points are sorted by operating characteristic.
    pub fn new(mut points: Vec<RocPoint>) -> RocCurve {
        points.sort_by_key(|p| p.characteristic);
        RocCurve { points }
    }

    /// The operating points in characteristic order.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the (FPR, TPR) curve via [`auc`].
    pub fn auc(&self) -> f64 {
        let pairs: Vec<(f64, f64)> = self.points.iter().map(|p| (p.fpr(), p.tpr())).collect();
        auc(&pairs)
    }

    /// The operating point whose precision first reaches `target`, scanning
    /// from the smallest characteristic upward.
    pub fn first_reaching_precision(&self, target: f64) -> Option<&RocPoint> {
        self.points.iter().find(|p| p.precision() >= target)
    }
}

/// Trapezoidal area under a set of (fpr, tpr) pairs.
///
/// The pairs are sorted by FPR and the curve is anchored at (0,0) and (1,1),
/// the standard convention for sparse operating-point sets.
pub fn auc(pairs: &[(f64, f64)]) -> f64 {
    let mut pts: Vec<(f64, f64)> = pairs.to_vec();
    pts.push((0.0, 0.0));
    pts.push((1.0, 1.0));
    pts.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let mut area = 0.0;
    for w in pts.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(c: u32, tp: u64, fp: u64, p: u64, n: u64) -> RocPoint {
        RocPoint {
            characteristic: c,
            true_positives: tp,
            false_positives: fp,
            positives: p,
            negatives: n,
        }
    }

    #[test]
    fn rates_and_precision() {
        let p = point(24, 287, 35, 287, 35);
        assert!((p.tpr() - 1.0).abs() < 1e-12);
        assert!((p.fpr() - 1.0).abs() < 1e-12);
        // The paper's Table 3 row at n=24: 287 / 322 ≈ 0.89.
        assert!((p.precision() - 287.0 / 322.0).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators() {
        let p = point(32, 0, 0, 0, 0);
        assert_eq!(p.tpr(), 0.0);
        assert_eq!(p.fpr(), 0.0);
        assert_eq!(p.precision(), 0.0);
    }

    #[test]
    fn perfect_classifier_auc_is_one() {
        // A point at (0, 1): TPR 1 with FPR 0.
        assert!((auc(&[(0.0, 1.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chance_diagonal_auc_is_half() {
        assert!((auc(&[(0.5, 0.5)]) - 0.5).abs() < 1e-12);
        assert!((auc(&[]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_sorts_points() {
        let c = RocCurve::new(vec![point(26, 81, 1, 300, 40), point(24, 287, 35, 300, 40)]);
        assert_eq!(c.points()[0].characteristic, 24);
        assert_eq!(c.points()[1].characteristic, 26);
    }

    #[test]
    fn first_reaching_precision_scans_upward() {
        let c = RocCurve::new(vec![
            point(24, 287, 35, 300, 40), // precision ~0.89
            point(26, 81, 1, 300, 40),   // precision ~0.99
        ]);
        let hit = c.first_reaching_precision(0.95).expect("26 qualifies");
        assert_eq!(hit.characteristic, 26);
        assert!(c.first_reaching_precision(0.999).is_none());
    }

    #[test]
    fn auc_of_good_blocker_beats_chance() {
        let c = RocCurve::new(vec![
            point(24, 90, 5, 100, 100),
            point(26, 60, 1, 100, 100),
            point(28, 20, 0, 100, 100),
        ]);
        assert!(c.auc() > 0.8, "auc = {}", c.auc());
    }
}
