//! Rank statistics: Spearman correlation.
//!
//! Used to validate the multidimensional uncleanliness score against the
//! simulation's latent hygiene: the score should *rank* networks the way
//! (inverse) hygiene does, and a rank correlation is the right measure
//! because neither quantity is on a meaningful linear scale.

/// Midranks of a sample (ties share the average of their positions,
/// 1-based).
pub fn midranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the midrank.
        let mid = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = mid;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation ρ ∈ [−1, 1] between two paired samples.
///
/// Computed as the Pearson correlation of midranks (exact under ties).
/// Panics on length mismatch or fewer than two observations; returns 0
/// when either sample is constant (correlation undefined).
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples must match in length");
    assert!(a.len() >= 2, "need at least two observations");
    let ra = midranks(a);
    let rb = midranks(b);
    pearson(&ra, &rb)
}

/// Pearson correlation of two equal-length samples; 0 if either is
/// constant.
fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midranks_simple() {
        assert_eq!(midranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn midranks_with_ties() {
        // 5 appears twice at positions 2 and 3 → midrank 2.5.
        assert_eq!(midranks(&[1.0, 5.0, 5.0, 9.0]), vec![1.0, 2.5, 2.5, 4.0]);
        // All equal: everyone gets the central rank.
        assert_eq!(midranks(&[7.0, 7.0, 7.0]), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn perfect_monotone_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 100.0, 1000.0, 10000.0]; // nonlinear but monotone
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_inverse_is_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_is_near_zero() {
        // A deterministic "shuffled" pairing with no monotone trend.
        let a: Vec<f64> = (0..100).map(f64::from).collect();
        let b: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        let rho = spearman(&a, &b);
        assert!(rho.abs() < 0.2, "rho {rho}");
    }

    #[test]
    fn constant_sample_yields_zero() {
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn known_textbook_value() {
        // Classic example: ranks differ by one swap.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 2.0, 3.0, 5.0, 4.0];
        // ρ = 1 − 6·Σd²/(n(n²−1)) = 1 − 6·2/120 = 0.9.
        assert!((spearman(&a, &b) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "match in length")]
    fn mismatched_lengths_rejected() {
        let _ = spearman(&[1.0], &[1.0, 2.0]);
    }
}
