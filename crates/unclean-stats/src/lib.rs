//! # unclean-stats
//!
//! Statistics substrate for the reproduction of *Using Uncleanliness to
//! Predict Future Botnet Addresses* (Collins et al., IMC 2007).
//!
//! The paper's analyses are distribution comparisons: an observed curve
//! (block counts per CIDR prefix length, or prediction intersections per
//! prefix length) is compared against the distribution of the same curve
//! computed over 1000 randomly drawn control subsets. The Rust statistics
//! ecosystem has no canonical crate for the handful of primitives this
//! needs, so this crate provides them:
//!
//! * [`summary`] — five-number summaries (the boxplots of Figures 2–5),
//!   means and variances computed in a numerically stable single pass.
//! * [`quantile`] — interpolated quantile estimation on sorted samples.
//! * [`ensemble`] — "run N seeded trials, each producing a curve over a
//!   shared x-axis, and summarize the per-x distribution", with scoped
//!   parallelism via crossbeam.
//! * [`hypothesis`] — exceedance-fraction tests: the paper declares a
//!   predictor *better* when it beats the control draw in at least 95% of
//!   trials (§5.2).
//! * [`bootstrap`] — percentile-bootstrap confidence intervals for the
//!   derived ratios the experiment reports quote.
//! * [`histogram`] — fixed-width binning for diagnostics.
//! * [`rank`] — Spearman rank correlation (score-vs-ground-truth checks).
//! * [`roc`] — ROC points and area-under-curve for the §6 blocking study.
//! * [`rng`] — deterministic fan-out of a master seed into independent,
//!   version-stable ChaCha8 streams.
//!
//! Everything here is deterministic given a seed; nothing reads clocks or
//! global state, so experiment outputs are reproducible bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod ensemble;
pub mod histogram;
pub mod hypothesis;
pub mod quantile;
pub mod rank;
pub mod rng;
pub mod roc;
pub mod summary;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, bootstrap_proportion_ci, ConfidenceInterval};
pub use ensemble::{Ensemble, EnsembleBuilder};
pub use histogram::Histogram;
pub use hypothesis::{exceedance_fraction, ExceedanceTest, Verdict};
pub use quantile::{quantile_sorted, Quantile};
pub use rank::{midranks, spearman};
pub use rng::SeedTree;
pub use roc::{auc, RocCurve, RocPoint};
pub use summary::{FiveNumber, Summary};
